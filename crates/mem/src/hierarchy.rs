//! The full memory hierarchy facade: L1i / L1d → unified L2 → unified L3 →
//! DRAM, returning access latencies per the paper's Table II.

use crate::cache::{Cache, CacheConfig};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Configuration of every level (paper Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3.
    pub l3: CacheConfig,
    /// Flat DRAM access latency in cycles.
    pub dram_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig { size_bytes: 64 << 10, ways: 8, line_bytes: 64, hit_latency: 4 },
            l1d: CacheConfig { size_bytes: 64 << 10, ways: 8, line_bytes: 64, hit_latency: 4 },
            l2: CacheConfig { size_bytes: 256 << 10, ways: 16, line_bytes: 64, hit_latency: 12 },
            l3: CacheConfig { size_bytes: 8 << 20, ways: 16, line_bytes: 64, hit_latency: 42 },
            dram_latency: 240,
        }
    }
}

/// The assembled hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram_latency: u64,
    dram_accesses: u64,
}

impl MemoryHierarchy {
    /// Builds all levels from `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            dram_latency: config.dram_latency,
            dram_accesses: 0,
        }
    }

    /// Instruction fetch from `pc`; returns the access latency in cycles.
    #[inline]
    pub fn fetch(&mut self, pc: u64) -> u64 {
        if self.l1i.access(pc) {
            return self.l1i.config().hit_latency;
        }
        self.beyond_l1(pc, self.l1i.config().hit_latency)
    }

    /// Data load from `addr`; returns the access latency in cycles.
    #[inline]
    pub fn load(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            return self.l1d.config().hit_latency;
        }
        self.beyond_l1(addr, self.l1d.config().hit_latency)
    }

    /// Data store to `addr` (write-allocate); returns the latency in cycles.
    #[inline]
    pub fn store(&mut self, addr: u64) -> u64 {
        self.load(addr)
    }

    /// Hints the host to pull the L1d/L2/L3 metadata sets `addr` maps to
    /// into its own caches. Set mapping is static, so the hint can be
    /// issued any number of records ahead of the access that will probe
    /// them — the trace knows future effective addresses, and the
    /// lower-level meta arrays (the L3's runs to a megabyte) otherwise
    /// serve each probe a dependent host-memory stall. Purely a
    /// performance hint: no simulated state changes.
    #[inline]
    pub fn prefetch_data(&self, addr: u64) {
        self.l1d.prefetch(addr);
        self.l2.prefetch(addr);
        self.l3.prefetch(addr);
    }

    fn beyond_l1(&mut self, addr: u64, l1_latency: u64) -> u64 {
        if self.l2.access(addr) {
            return l1_latency + self.l2.config().hit_latency;
        }
        if self.l3.access(addr) {
            return l1_latency + self.l2.config().hit_latency + self.l3.config().hit_latency;
        }
        self.dram_accesses += 1;
        l1_latency + self.l2.config().hit_latency + self.l3.config().hit_latency + self.dram_latency
    }

    /// Per-level statistics: (l1i, l1d, l2, l3).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats(), self.l3.stats())
    }

    /// Number of accesses that reached DRAM.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1i.size_bytes, 64 << 10);
        assert_eq!(c.l1i.ways, 8);
        assert_eq!(c.l1i.hit_latency, 4);
        assert_eq!(c.l2.size_bytes, 256 << 10);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.hit_latency, 12);
        assert_eq!(c.l3.size_bytes, 8 << 20);
        assert_eq!(c.l3.hit_latency, 42);
        assert_eq!(c.dram_latency, 240);
    }

    #[test]
    fn latency_ladder() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        // Cold: L1 + L2 + L3 + DRAM.
        assert_eq!(mem.load(0x10_0000), 4 + 12 + 42 + 240);
        // Warm: L1 hit.
        assert_eq!(mem.load(0x10_0000), 4);
        assert_eq!(mem.dram_accesses(), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.load(0);
        // Evict line 0 from L1d set 0 by filling its 8 ways; L1d has 128
        // sets, so addresses stride by 128*64 bytes stay in set 0.
        for i in 1..=8u64 {
            mem.load(i * 128 * 64);
        }
        let lat = mem.load(0);
        assert_eq!(lat, 4 + 12, "line must still sit in the larger L2");
    }

    #[test]
    fn ifetch_and_data_use_separate_l1s() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.fetch(0x40_0000);
        // Data access to the same address misses L1d but hits unified L2,
        // because the fetch filled L2 inclusively.
        assert_eq!(mem.load(0x40_0000), 4 + 12);
        assert_eq!(mem.fetch(0x40_0000), 4);
    }

    #[test]
    fn store_allocates() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.store(0x9000);
        assert_eq!(mem.load(0x9000), 4);
    }
}
