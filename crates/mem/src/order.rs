//! A whole per-set LRU stack packed into one `u64` of way-index nibbles.
//!
//! [`PackedLru`](crate::PackedLru) stores per-way ages as bytes; touching
//! a way still sweeps every age in the set with a read-modify-write.
//! For structures with at most 16 ways the entire recency *permutation*
//! fits in a single 64-bit word — one 4-bit nibble per stack position,
//! nibble 0 holding the MRU way index and nibble `ways - 1` the LRU —
//! so a touch is a dozen ALU instructions on one register and a victim
//! lookup is a shift. The hot simulated structures (caches, L1 TLBs,
//! BTB) keep one order word per set next to a read-only tag array: on a
//! hit nothing but the order word is written, which keeps the tag lines
//! clean in the host cache.
//!
//! Semantics are bit-identical to [`LruStack`](crate::LruStack) driven
//! by the same touches; a proptest below pins the full permutation at
//! every step.

/// Nibble-replicating multiplier for the SWAR nibble search.
const NIBBLE_LSB: u64 = 0x1111_1111_1111_1111;
/// High bit of every nibble, for the SWAR zero-nibble detect.
const NIBBLE_MSB: u64 = 0x8888_8888_8888_8888;
/// Identity permutation: way `i` sits at stack position `i`.
const ORDER_INIT: u64 = 0xFEDC_BA98_7654_3210;

/// The low `4 * ways` bits — the nibbles a `ways`-way order word uses.
#[inline]
pub const fn order_mask(ways: usize) -> u64 {
    if ways >= 16 {
        u64::MAX
    } else {
        (1u64 << (4 * ways)) - 1
    }
}

/// The initial order word for a `ways`-way set: way 0 MRU … way
/// `ways - 1` LRU, matching [`LruStack::new`](crate::LruStack::new).
#[inline]
pub const fn order_init(ways: usize) -> u64 {
    ORDER_INIT & order_mask(ways)
}

/// Moves `way` to the front (MRU) of a packed LRU-order word.
///
/// Finds `way`'s nibble with a SWAR zero-nibble search, deletes it, and
/// prepends it — pure ALU work on one word, no per-way sweep. The
/// zero-nibble detect `(x - 1·) & !x & 8·` flags exactly the zero
/// nibbles of `x`: a borrow out of a zero nibble cannot fabricate a
/// flag in the nibble above, because that nibble's result only gains
/// the high bit if the nibble is 0 or ≥ 9, and ≥ 9 is masked off by
/// `!x`. An order word is a permutation, so exactly one in-range nibble
/// matches. `mask` must be `order_mask(ways)` for the word's geometry.
///
/// Debug builds panic if `way` is not present in the order word.
#[inline]
pub fn order_touch(order: u64, way: usize, mask: u64) -> u64 {
    let x = order ^ (way as u64 * NIBBLE_LSB);
    let found = x.wrapping_sub(NIBBLE_LSB) & !x & NIBBLE_MSB & mask;
    debug_assert!(found != 0, "way {way} absent from order word {order:#x}");
    let pos = (found.trailing_zeros() >> 2) as usize;
    let keep = (1u64 << (4 * pos)) - 1;
    let removed = (order & keep) | ((order >> 4) & !keep);
    ((removed << 4) | way as u64) & mask
}

/// The LRU way of a packed order word: the nibble at position `ways - 1`.
#[inline]
pub const fn order_lru(order: u64, ways: usize) -> usize {
    ((order >> (4 * (ways - 1))) & 0xF) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruStack;
    use proptest::prelude::*;

    #[test]
    fn primitives() {
        // 4-way identity: 0x3210, LRU = way 3.
        let mask = order_mask(4);
        let order = order_init(4);
        assert_eq!(order, 0x3210);
        assert_eq!(order_lru(order, 4), 3);
        // Touch way 1: becomes MRU, ways below its old position shift back.
        let order = order_touch(order, 1, mask);
        assert_eq!(order, 0x3201);
        assert_eq!(order_lru(order, 4), 3);
        // Touch the LRU way: rotation.
        let order = order_touch(order, 3, mask);
        assert_eq!(order, 0x2013);
        // Touching the MRU way is the identity.
        assert_eq!(order_touch(order, 3, mask), order);
        // Full 16-way word round-trips too.
        let m16 = order_mask(16);
        let o16 = order_touch(order_init(16), 15, m16);
        assert_eq!(o16, 0xEDCB_A987_6543_210F);
        assert_eq!(order_lru(o16, 16), 14);
    }

    proptest! {
        /// Driven by the same touch sequence, the packed word holds the
        /// exact MRU→LRU permutation of the reference `LruStack` at
        /// every step, for every supported associativity.
        #[test]
        fn matches_lru_stack_permutation(
            ways in 1usize..17,
            touches in proptest::collection::vec(0usize..16, 0..128),
        ) {
            let mask = order_mask(ways);
            let mut order = order_init(ways);
            let mut stack = LruStack::new(ways);
            for t in touches {
                let way = t % ways;
                order = order_touch(order, way, mask);
                stack.touch(way);
                let packed: Vec<usize> =
                    (0..ways).map(|p| ((order >> (4 * p)) & 0xF) as usize).collect();
                let reference: Vec<usize> = stack.iter().collect();
                prop_assert_eq!(&packed, &reference, "permutation diverged");
                prop_assert_eq!(order_lru(order, ways), stack.lru());
            }
        }
    }
}
