//! Cache hierarchy and DRAM latency model for the CHiRP reproduction.
//!
//! Implements the memory side of the paper's Table II configuration:
//! 64 KB 8-way L1 instruction and data caches (4-cycle), a 256 KB 16-way
//! unified L2 (12-cycle), an 8 MB 16-way unified L3 (42-cycle) and a flat
//! 240-cycle DRAM. The model is latency-approximate: each access returns the
//! cycle cost determined by the first level that hits, and lines are filled
//! inclusively on the way back down.
//!
//! ```
//! use chirp_mem::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let cold = mem.load(0x1000);
//! let warm = mem.load(0x1000);
//! assert!(cold > warm, "second access must hit closer to the core");
//! ```

pub mod cache;
pub mod hierarchy;
pub mod lru;
pub mod order;
pub mod packed_lru;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{HierarchyConfig, MemoryHierarchy};
pub use lru::LruStack;
pub use order::{order_init, order_lru, order_mask, order_touch};
pub use packed_lru::PackedLru;
pub use stats::CacheStats;
