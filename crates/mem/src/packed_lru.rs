//! Flat true-LRU age tracking for many sets in one allocation.
//!
//! [`LruStack`](crate::LruStack) keeps one heap-allocated order vector per
//! set, so a set-associative structure with S sets pays S pointer chases
//! just to touch recency state. [`PackedLru`] stores the same information
//! as one contiguous `Vec<u8>` of per-way *ages* (0 = MRU, `ways-1` = LRU)
//! for all sets, so the hot `touch`/`lru` operations stay inside a single
//! cache line per set and the whole structure is one allocation.
//!
//! The recency semantics are bit-identical to a per-set `LruStack`: an
//! entry's age equals its stack position, `touch` moves it to age 0 and
//! increments exactly the entries that were younger, and the initial order
//! is way 0 MRU … way `ways-1` LRU. A proptest below drives both
//! structures with the same touch sequence and asserts the full
//! permutation matches at every step.

use serde::{Deserialize, Serialize};

/// Per-set true-LRU ages for `sets × ways` entries in one flat array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedLru {
    /// `ages[set * ways + way]` is the stack position of `way` in `set`:
    /// 0 = MRU, `ways - 1` = LRU. Each set's slice is a permutation of
    /// `0..ways`.
    ages: Vec<u8>,
    ways: usize,
}

impl PackedLru {
    /// Creates ages for `sets` sets of `ways` ways, each initially ordered
    /// way 0 MRU … way `ways-1` LRU (matching [`crate::LruStack::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`, `ways == 0` or `ways > 255`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "sets must be positive");
        assert!(ways > 0 && ways <= 255, "ways must be in 1..=255");
        let mut ages = Vec::with_capacity(sets * ways);
        for _ in 0..sets {
            ages.extend(0..ways as u8);
        }
        PackedLru { ages, ways }
    }

    /// Number of ways per set.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets tracked.
    #[inline]
    pub fn sets(&self) -> usize {
        self.ages.len() / self.ways
    }

    #[inline]
    fn set_slice(&self, set: usize) -> &[u8] {
        &self.ages[set * self.ways..(set + 1) * self.ways]
    }

    /// Marks `way` most recently used in `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    #[inline]
    pub fn touch(&mut self, set: usize, way: usize) {
        let base = set * self.ways;
        let slice = &mut self.ages[base..base + self.ways];
        let old = slice[way];
        for age in slice.iter_mut() {
            // Entries younger than the touched one age by a step; the rest
            // (older, or the touched way itself) keep their relative order.
            *age += u8::from(*age < old);
        }
        slice[way] = 0;
    }

    /// The least recently used way in `set`.
    #[inline]
    pub fn lru(&self, set: usize) -> usize {
        let oldest = self.ways as u8 - 1;
        self.set_slice(set)
            .iter()
            .position(|&a| a == oldest)
            .expect("ages form a permutation by construction")
    }

    /// The most recently used way in `set`.
    #[inline]
    pub fn mru(&self, set: usize) -> usize {
        self.set_slice(set)
            .iter()
            .position(|&a| a == 0)
            .expect("ages form a permutation by construction")
    }

    /// Stack position of `way` in `set` (0 = MRU).
    #[inline]
    pub fn position(&self, set: usize, way: usize) -> usize {
        self.set_slice(set)[way] as usize
    }

    /// Iterates `set`'s ways from MRU to LRU.
    pub fn iter(&self, set: usize) -> impl Iterator<Item = usize> + '_ {
        let slice = self.set_slice(set);
        (0..self.ways as u8)
            .map(move |age| slice.iter().position(|&a| a == age).expect("ages form a permutation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruStack;
    use proptest::prelude::*;

    #[test]
    fn initial_order_matches_lru_stack() {
        let p = PackedLru::new(3, 4);
        for set in 0..3 {
            assert_eq!(p.mru(set), 0);
            assert_eq!(p.lru(set), 3);
            assert_eq!(p.iter(set).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn touch_is_per_set() {
        let mut p = PackedLru::new(2, 4);
        p.touch(0, 2);
        assert_eq!(p.mru(0), 2);
        assert_eq!(p.lru(0), 3);
        assert_eq!(p.mru(1), 0, "set 1 untouched");
        p.touch(0, 3);
        assert_eq!(p.mru(0), 3);
        assert_eq!(p.lru(0), 1);
    }

    #[test]
    fn position_tracks_age() {
        let mut p = PackedLru::new(1, 3);
        p.touch(0, 1);
        assert_eq!(p.position(0, 1), 0);
        assert_eq!(p.position(0, 0), 1);
        assert_eq!(p.position(0, 2), 2);
    }

    #[test]
    #[should_panic(expected = "ways must be in 1..=255")]
    fn zero_ways_rejected() {
        let _ = PackedLru::new(1, 0);
    }

    proptest! {
        /// The equivalence that lets policies swap `Vec<LruStack>` for
        /// `PackedLru` without changing a single victim choice: driven by
        /// the same touch sequence, the full MRU→LRU permutation matches
        /// the reference `LruStack` at every step.
        #[test]
        fn matches_lru_stack_permutation(
            sets in 1usize..5,
            ways in 1usize..10,
            touches in proptest::collection::vec((0usize..5, 0usize..10), 0..128),
        ) {
            let mut packed = PackedLru::new(sets, ways);
            let mut stacks: Vec<LruStack> = (0..sets).map(|_| LruStack::new(ways)).collect();
            for (set, way) in touches {
                let (set, way) = (set % sets, way % ways);
                packed.touch(set, way);
                stacks[set].touch(way);
                for (s, stack) in stacks.iter().enumerate() {
                    prop_assert_eq!(
                        packed.iter(s).collect::<Vec<_>>(),
                        stack.iter().collect::<Vec<_>>(),
                        "set {} diverged", s
                    );
                    prop_assert_eq!(packed.lru(s), stack.lru());
                    prop_assert_eq!(packed.mru(s), stack.mru());
                }
            }
        }

        #[test]
        fn ages_stay_a_permutation(
            ways in 1usize..16,
            touches in proptest::collection::vec(0usize..16, 0..64),
        ) {
            let mut p = PackedLru::new(2, ways);
            for t in touches {
                p.touch(1, t % ways);
            }
            for set in 0..2 {
                let mut seen: Vec<usize> = (0..ways).map(|w| p.position(set, w)).collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..ways).collect::<Vec<_>>());
            }
        }
    }
}
