//! A set-associative, true-LRU cache model.

use crate::lru::LruStack;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero ways/line, capacity not
    /// divisible into sets, or a non-power-of-two set count).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        sets as usize
    }
}

#[derive(Debug, Clone)]
struct CacheSet {
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: LruStack,
}

impl CacheSet {
    fn new(ways: usize) -> Self {
        CacheSet { tags: vec![0; ways], valid: vec![false; ways], lru: LruStack::new(ways) }
    }
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    line_shift: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds the cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            sets: (0..sets).map(|_| CacheSet::new(config.ways)).collect(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            config,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `addr`, filling the line on a miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        for way in 0..set.tags.len() {
            if set.valid[way] && set.tags[way] == tag {
                set.lru.touch(way);
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Prefer an invalid way, else evict LRU.
        let victim = (0..set.tags.len()).find(|&w| !set.valid[w]).unwrap_or_else(|| set.lru.lru());
        set.tags[victim] = tag;
        set.valid[victim] = true;
        set.lru.touch(victim);
        false
    }

    /// True if the line holding `addr` is currently resident (no side
    /// effects — does not update recency or stats).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &self.sets[set_idx];
        (0..set.tags.len()).any(|w| set.valid[w] && set.tags[w] == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, hit_latency: 1 })
    }

    #[test]
    fn config_sets() {
        let c = CacheConfig { size_bytes: 64 * 1024, ways: 8, line_bytes: 64, hit_latency: 4 };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3f), "same line must hit");
        assert!(!c.access(0x40), "next line is a different set/line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set 0 holds lines with (line & 1) == 0: addresses 0x000, 0x080, 0x100.
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch to protect
        c.access(0x100); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(64);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ =
            Cache::new(CacheConfig { size_bytes: 3 * 64, ways: 1, line_bytes: 64, hit_latency: 1 });
    }

    proptest! {
        #[test]
        fn no_duplicate_resident_lines(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
            let mut c = tiny();
            for a in &addrs {
                c.access(*a);
            }
            // Re-access of anything resident must hit, and each line maps to
            // exactly one way (access again and confirm stats consistency).
            let before = c.stats();
            prop_assert_eq!(before.accesses() as usize, addrs.len());
        }

        #[test]
        fn working_set_within_capacity_always_hits_after_warmup(start in 0u64..4u64) {
            let mut c = tiny();
            // 4 lines fit exactly (2 sets x 2 ways).
            let lines: Vec<u64> = (0..4).map(|i| (start + i) * 64).collect();
            for &l in &lines { c.access(l); }
            for &l in &lines {
                prop_assert!(c.access(l), "line {l:#x} must hit after warmup");
            }
        }
    }
}
