//! A set-associative, true-LRU cache model.

use crate::order::{order_init, order_lru, order_mask, order_touch};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero ways/line, capacity not
    /// divisible into sets, or a non-power-of-two set count).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        sets as usize
    }
}

/// One set-associative LRU cache level.
///
/// Tags live in a flat `sets * ways` array of `tag << 1 | 1` words (0
/// when invalid — the valid bit keeps an invalid slot from ever matching
/// a key). Recency lives beside them as one packed order word per set
/// (see [`order_touch`]): a probe reads the tag run (one or two host
/// cache lines), and the LRU update is ~a dozen ALU ops on a single
/// word instead of a per-way age sweep — tags are read-only on hits, so
/// their lines stay clean in the host cache. Fills prefer the lowest
/// free way; the eviction victim is the back of the order word, which is
/// exact true LRU by construction. A proptest below pins the whole
/// scheme against a reference `LruStack` model, and a per-set MRU memo
/// (`mru`) collapses the dominant repeated-line case to a single
/// compare.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets * ways` tag words (`tag << 1 | 1`, 0 when invalid).
    meta: Vec<u64>,
    /// Per set, two adjacent words — deliberately interleaved so every
    /// probe's non-tag state shares one host cache line:
    ///
    /// `[2 * set]`: the MRU memo — the line address most recently
    /// accessed in the set (hit or fill), `u64::MAX` before the first
    /// one. Refreshed on every non-memoized access, so a match proves
    /// the line is resident AND already MRU in its set — the whole probe
    /// (tag scan + the no-op touch of an already-MRU way) collapses to
    /// one compare with zero change to simulated state beyond the hit
    /// counter. Caches live on temporal locality, so for the upper
    /// levels this is the dominant path: sequential fetches share a
    /// line, loop bodies re-enter theirs.
    ///
    /// `[2 * set + 1]`: the packed LRU-order word.
    set_state: Vec<u64>,
    line_shift: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds the cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]) or
    /// more than 16 ways (the packed order word holds one nibble per way).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(config.ways <= 16, "packed LRU order supports at most 16 ways");
        let mut set_state = Vec::with_capacity(sets * 2);
        for _ in 0..sets {
            set_state.push(u64::MAX);
            set_state.push(order_init(config.ways));
        }
        Cache {
            meta: vec![0; sets * config.ways],
            set_state,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            config,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The lookup key for `addr`: `(set index, tag << 1 | 1)`.
    #[inline]
    fn key(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        (set_idx, tag << 1 | 1)
    }

    /// Looks up `addr`, filling the line on a miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        if line == self.set_state[2 * set_idx] {
            // Most recently accessed line of its set: resident and MRU,
            // so the probe and the (no-op) touch can be skipped. Line
            // addresses are at most 58 bits, so the u64::MAX sentinel
            // cannot collide.
            self.stats.hits += 1;
            return true;
        }
        self.set_state[2 * set_idx] = line;
        let tag = line >> self.set_mask.count_ones();
        let key = tag << 1 | 1;
        // Dispatch on the associativity so the scan compiles with a
        // compile-time trip count (fully unrolled, no loop bookkeeping)
        // for the geometries the model actually uses.
        match self.config.ways {
            4 => self.probe_sized::<4>(set_idx, key),
            8 => self.probe_sized::<8>(set_idx, key),
            16 => self.probe_sized::<16>(set_idx, key),
            ways => self.probe_dyn(set_idx, key, ways),
        }
    }

    /// [`access`](Self::access) probe body with the associativity as a
    /// compile-time constant.
    #[inline]
    fn probe_sized<const W: usize>(&mut self, set_idx: usize, key: u64) -> bool {
        let base = set_idx * W;
        let tags: &mut [u64; W] =
            (&mut self.meta[base..base + W]).try_into().expect("slice spans W ways");
        let mask = order_mask(W);
        let order_at = 2 * set_idx + 1;
        // Branch-free probe. Which way hits (or which way a miss fills)
        // is data-dependent and effectively random for the lower levels,
        // so an early-exit scan eats a branch mispredict on most
        // non-memoized hits; folding the scan into conditional moves and
        // sharing one exit path between hit, free-fill and eviction
        // trades those flushes for a short dependency chain. The reversed
        // loop makes the LOWEST matching slot win the free-way fold; the
        // hit way is unique if present (tags are distinct and `key`
        // carries the valid bit, so it never equals an invalid 0).
        let mut hit_way = usize::MAX;
        let mut free_way = usize::MAX;
        for way in (0..W).rev() {
            let tag = tags[way];
            if tag == key {
                hit_way = way;
            }
            if tag == 0 {
                free_way = way;
            }
        }
        let hit = hit_way != usize::MAX;
        let order = self.set_state[order_at];
        // Way priority: hit way, else lowest free way, else the back of
        // the order word — the exact LRU way.
        let mut way = order_lru(order, W);
        if free_way != usize::MAX {
            way = free_way;
        }
        if hit {
            way = hit_way;
        }
        // On a hit `tags[way]` already equals `key`, so the
        // unconditional store is idempotent, and hit and fill want the
        // same recency touch.
        tags[way] = key;
        self.set_state[order_at] = order_touch(order, way, mask);
        self.stats.hits += u64::from(hit);
        self.stats.misses += u64::from(!hit);
        hit
    }

    /// [`access`](Self::access) fallback for associativities without a
    /// monomorphized instantiation. Identical logic, runtime trip count.
    fn probe_dyn(&mut self, set_idx: usize, key: u64, ways: usize) -> bool {
        let base = set_idx * ways;
        let tags = &mut self.meta[base..base + ways];
        let mask = order_mask(ways);
        let mut free = usize::MAX;
        let mut hit = usize::MAX;
        for (way, &tag) in tags.iter().enumerate() {
            if tag == key {
                hit = way;
                break;
            }
            if tag == 0 {
                free = free.min(way);
            }
        }
        let order_at = 2 * set_idx + 1;
        if hit != usize::MAX {
            self.set_state[order_at] = order_touch(self.set_state[order_at], hit, mask);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let order = self.set_state[order_at];
        let way = if free != usize::MAX { free } else { order_lru(order, ways) };
        tags[way] = key;
        self.set_state[order_at] = order_touch(order, way, mask);
        false
    }

    /// Hints the host to pull the set `addr` maps to into its own cache.
    /// Purely a performance hint — no simulated state changes.
    #[inline]
    pub fn prefetch(&self, addr: u64) {
        let (set_idx, _) = self.key(addr);
        let base = set_idx * self.config.ways;
        let bytes = self.config.ways * 8;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = self.meta.as_ptr().add(base).cast::<i8>();
            let mut off = 0;
            while off < bytes {
                _mm_prefetch(p.add(off), _MM_HINT_T0);
                off += 64;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (base, bytes);
    }

    /// True if the line holding `addr` is currently resident (no side
    /// effects — does not update recency or stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, key) = self.key(addr);
        let base = set_idx * self.config.ways;
        self.meta[base..base + self.config.ways].contains(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruStack;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, hit_latency: 1 })
    }

    #[test]
    fn config_sets() {
        let c = CacheConfig { size_bytes: 64 * 1024, ways: 8, line_bytes: 64, hit_latency: 4 };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3f), "same line must hit");
        assert!(!c.access(0x40), "next line is a different set/line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set 0 holds lines with (line & 1) == 0: addresses 0x000, 0x080, 0x100.
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch to protect
        c.access(0x100); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(64);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ =
            Cache::new(CacheConfig { size_bytes: 3 * 64, ways: 1, line_bytes: 64, hit_latency: 1 });
    }

    proptest! {
        #[test]
        fn no_duplicate_resident_lines(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
            let mut c = tiny();
            for a in &addrs {
                c.access(*a);
            }
            // Re-access of anything resident must hit, and each line maps to
            // exactly one way (access again and confirm stats consistency).
            let before = c.stats();
            prop_assert_eq!(before.accesses() as usize, addrs.len());
        }

        #[test]
        fn working_set_within_capacity_always_hits_after_warmup(start in 0u64..4u64) {
            let mut c = tiny();
            // 4 lines fit exactly (2 sets x 2 ways).
            let lines: Vec<u64> = (0..4).map(|i| (start + i) * 64).collect();
            for &l in &lines { c.access(l); }
            for &l in &lines {
                prop_assert!(c.access(l), "line {l:#x} must hit after warmup");
            }
        }

        /// The packed-order layout (and the per-set MRU memo riding on
        /// it) must replace lines in the exact order a reference model
        /// with a per-set LRU stack would — hit/miss sequences identical.
        #[test]
        fn matches_lru_stack_reference_model(
            addrs in proptest::collection::vec(0u64..2048, 1..300),
        ) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 4 * 2 * 64, ways: 2, line_bytes: 64, hit_latency: 1,
            });
            // Reference: per-set tag vectors + LruStack recency.
            let sets = 4usize;
            let ways = 2usize;
            let mut tags: Vec<Vec<Option<u64>>> = vec![vec![None; ways]; sets];
            let mut lru: Vec<LruStack> = (0..sets).map(|_| LruStack::new(ways)).collect();
            for &a in &addrs {
                let line = a >> 6;
                let set = (line & 3) as usize;
                let tag = line >> 2;
                let expect_hit = match tags[set].iter().position(|&t| t == Some(tag)) {
                    Some(way) => {
                        lru[set].touch(way);
                        true
                    }
                    None => {
                        let way = tags[set]
                            .iter()
                            .position(|t| t.is_none())
                            .unwrap_or_else(|| lru[set].lru());
                        tags[set][way] = Some(tag);
                        lru[set].touch(way);
                        false
                    }
                };
                prop_assert_eq!(c.access(a), expect_hit, "addr {:#x} diverged", a);
            }
        }

        /// Same pinning for an 8-way geometry, exercising the
        /// monomorphized probe path used by the real L1 configuration.
        #[test]
        fn matches_reference_model_8way(
            addrs in proptest::collection::vec(0u64..8192, 1..400),
        ) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 2 * 8 * 64, ways: 8, line_bytes: 64, hit_latency: 1,
            });
            let sets = 2usize;
            let ways = 8usize;
            let mut tags: Vec<Vec<Option<u64>>> = vec![vec![None; ways]; sets];
            let mut lru: Vec<LruStack> = (0..sets).map(|_| LruStack::new(ways)).collect();
            for &a in &addrs {
                let line = a >> 6;
                let set = (line & 1) as usize;
                let tag = line >> 1;
                let expect_hit = match tags[set].iter().position(|&t| t == Some(tag)) {
                    Some(way) => {
                        lru[set].touch(way);
                        true
                    }
                    None => {
                        let way = tags[set]
                            .iter()
                            .position(|t| t.is_none())
                            .unwrap_or_else(|| lru[set].lru());
                        tags[set][way] = Some(tag);
                        lru[set].touch(way);
                        false
                    }
                };
                prop_assert_eq!(c.access(a), expect_hit, "addr {:#x} diverged", a);
            }
        }

        /// And for the 16-way geometry used by the simulated L2/L3 —
        /// the full-width order word with no unused nibbles.
        #[test]
        fn matches_reference_model_16way(
            addrs in proptest::collection::vec(0u64..16384, 1..500),
        ) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 2 * 16 * 64, ways: 16, line_bytes: 64, hit_latency: 1,
            });
            let sets = 2usize;
            let ways = 16usize;
            let mut tags: Vec<Vec<Option<u64>>> = vec![vec![None; ways]; sets];
            let mut lru: Vec<LruStack> = (0..sets).map(|_| LruStack::new(ways)).collect();
            for &a in &addrs {
                let line = a >> 6;
                let set = (line & 1) as usize;
                let tag = line >> 1;
                let expect_hit = match tags[set].iter().position(|&t| t == Some(tag)) {
                    Some(way) => {
                        lru[set].touch(way);
                        true
                    }
                    None => {
                        let way = tags[set]
                            .iter()
                            .position(|t| t.is_none())
                            .unwrap_or_else(|| lru[set].lru());
                        tags[set][way] = Some(tag);
                        lru[set].touch(way);
                        false
                    }
                };
                prop_assert_eq!(c.access(a), expect_hit, "addr {:#x} diverged", a);
            }
        }
    }
}
