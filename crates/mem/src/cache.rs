//! A set-associative, true-LRU cache model.

use crate::packed_lru::PackedLru;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero ways/line, capacity not
    /// divisible into sets, or a non-power-of-two set count).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        sets as usize
    }
}

/// One set-associative LRU cache level.
///
/// Tag and valid bit share one word per line (`tag << 1 | valid`,
/// row-major by set), so a whole-set probe — the common case for the
/// lower levels, whose miss ratios approach 1.0 on the paper's
/// workloads — reads half the cache lines a split tag/valid layout
/// would, and one pass yields both the matching way and the first free
/// way. Invalid lines hold 0, which can never equal a lookup key
/// because the key always has the valid bit set.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets * ways` entries of `tag << 1 | 1`, or 0 when invalid.
    meta: Vec<u64>,
    lru: PackedLru,
    line_shift: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds the cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            meta: vec![0; sets * config.ways],
            lru: PackedLru::new(sets, config.ways),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            config,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The lookup key for `addr`: `(set index, tag << 1 | 1)`.
    #[inline]
    fn key(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        debug_assert!(tag < 1 << 63, "tag must leave room for the valid bit");
        (set_idx, tag << 1 | 1)
    }

    /// Looks up `addr`, filling the line on a miss. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let (set_idx, key) = self.key(addr);
        let ways = self.config.ways;
        let base = set_idx * ways;
        let set = &mut self.meta[base..base + ways];
        // One pass finds both the matching way (hit) and the first free
        // way (preferred victim on a miss; invalid entries are 0).
        let mut free = usize::MAX;
        for (way, &entry) in set.iter().enumerate() {
            if entry == key {
                self.lru.touch(set_idx, way);
                self.stats.hits += 1;
                return true;
            }
            if entry == 0 && free == usize::MAX {
                free = way;
            }
        }
        self.stats.misses += 1;
        let victim = if free != usize::MAX { free } else { self.lru.lru(set_idx) };
        set[victim] = key;
        self.lru.touch(set_idx, victim);
        false
    }

    /// Hints the host to pull the set `addr` maps to into its own cache.
    ///
    /// The lower levels' metadata arrays run to megabytes, so a miss
    /// ladder (L1 → L2 → L3) is a chain of dependent host-memory
    /// stalls; prefetching the next level's set while the current one
    /// is probed overlaps them. Purely a performance hint — no
    /// simulated state changes.
    #[inline]
    pub fn prefetch(&self, addr: u64) {
        let (set_idx, _) = self.key(addr);
        let base = set_idx * self.config.ways;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.meta.as_ptr().add(base).cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = base;
    }

    /// True if the line holding `addr` is currently resident (no side
    /// effects — does not update recency or stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, key) = self.key(addr);
        let base = set_idx * self.config.ways;
        self.meta[base..base + self.config.ways].contains(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, hit_latency: 1 })
    }

    #[test]
    fn config_sets() {
        let c = CacheConfig { size_bytes: 64 * 1024, ways: 8, line_bytes: 64, hit_latency: 4 };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3f), "same line must hit");
        assert!(!c.access(0x40), "next line is a different set/line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set 0 holds lines with (line & 1) == 0: addresses 0x000, 0x080, 0x100.
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch to protect
        c.access(0x100); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(64);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ =
            Cache::new(CacheConfig { size_bytes: 3 * 64, ways: 1, line_bytes: 64, hit_latency: 1 });
    }

    proptest! {
        #[test]
        fn no_duplicate_resident_lines(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
            let mut c = tiny();
            for a in &addrs {
                c.access(*a);
            }
            // Re-access of anything resident must hit, and each line maps to
            // exactly one way (access again and confirm stats consistency).
            let before = c.stats();
            prop_assert_eq!(before.accesses() as usize, addrs.len());
        }

        #[test]
        fn working_set_within_capacity_always_hits_after_warmup(start in 0u64..4u64) {
            let mut c = tiny();
            // 4 lines fit exactly (2 sets x 2 ways).
            let lines: Vec<u64> = (0..4).map(|i| (start + i) * 64).collect();
            for &l in &lines { c.access(l); }
            for &l in &lines {
                prop_assert!(c.access(l), "line {l:#x} must hit after warmup");
            }
        }
    }
}
