//! A small true-LRU recency stack over way indices.
//!
//! Shared by the cache models here and usable by TLB policies: position 0 is
//! the most recently used way, the last position is the LRU way.

use serde::{Deserialize, Serialize};

/// True-LRU ordering over `ways` way indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LruStack {
    /// `order[0]` is the MRU way; `order[ways-1]` the LRU way.
    order: Vec<u8>,
}

impl LruStack {
    /// Creates a stack over `ways` ways, initially ordered `0..ways`
    /// (way 0 MRU).
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or `ways > 255`.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0 && ways <= 255, "ways must be in 1..=255");
        LruStack { order: (0..ways as u8).collect() }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.order.len()
    }

    /// Marks `way` most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: usize) {
        let pos = self.position(way);
        let w = self.order.remove(pos);
        self.order.insert(0, w);
    }

    /// The least recently used way.
    pub fn lru(&self) -> usize {
        *self.order.last().expect("non-empty by construction") as usize
    }

    /// The most recently used way.
    pub fn mru(&self) -> usize {
        self.order[0] as usize
    }

    /// Stack position of `way` (0 = MRU).
    ///
    /// # Panics
    ///
    /// Panics if `way` is not tracked.
    pub fn position(&self, way: usize) -> usize {
        self.order.iter().position(|&w| w as usize == way).expect("way out of range for LruStack")
    }

    /// Iterates ways from MRU to LRU.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().map(|&w| w as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn initial_order() {
        let s = LruStack::new(4);
        assert_eq!(s.mru(), 0);
        assert_eq!(s.lru(), 3);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut s = LruStack::new(4);
        s.touch(2);
        assert_eq!(s.mru(), 2);
        assert_eq!(s.lru(), 3);
        s.touch(3);
        assert_eq!(s.mru(), 3);
        assert_eq!(s.lru(), 1);
    }

    #[test]
    fn lru_is_least_recently_touched() {
        let mut s = LruStack::new(3);
        s.touch(0);
        s.touch(1);
        s.touch(2);
        assert_eq!(s.lru(), 0);
    }

    #[test]
    #[should_panic(expected = "ways must be in 1..=255")]
    fn zero_ways_rejected() {
        let _ = LruStack::new(0);
    }

    proptest! {
        #[test]
        fn stays_a_permutation(ways in 1usize..16, touches in proptest::collection::vec(0usize..16, 0..64)) {
            let mut s = LruStack::new(ways);
            for t in touches {
                s.touch(t % ways);
            }
            let mut seen: Vec<usize> = s.iter().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..ways).collect::<Vec<_>>());
        }

        #[test]
        fn touched_way_is_mru(ways in 1usize..16, way in 0usize..16) {
            let mut s = LruStack::new(ways);
            let way = way % ways;
            s.touch(way);
            prop_assert_eq!(s.mru(), way);
        }
    }
}
