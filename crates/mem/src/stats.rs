//! Hit/miss accounting for cache-like structures.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that required a fill from further out.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Misses per 1000 of `instructions` — the paper's MPKI metric.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.mpki(1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }
}
