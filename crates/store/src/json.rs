//! Minimal JSON encoding/decoding for flat objects.
//!
//! The store's on-disk records (archive manifest lines, run-ledger lines)
//! are single-level JSON objects whose values are strings, integers,
//! floats or booleans. serde is stubbed out in this build environment, so
//! this module hand-rolls exactly that subset: nested containers are
//! rejected on parse, and string escapes cover the JSON escape set.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// An unsigned integer (the store never writes negative integers).
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::F64(v) => Some(*v),
            JsonValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A flat JSON object with deterministic (sorted) key order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    fields: BTreeMap<String, JsonValue>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Sets `key` to a string value.
    pub fn set_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.insert(key.to_string(), JsonValue::Str(value.to_string()));
        self
    }

    /// Sets `key` to an integer value.
    pub fn set_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.insert(key.to_string(), JsonValue::U64(value));
        self
    }

    /// Sets `key` to a float value.
    pub fn set_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.insert(key.to_string(), JsonValue::F64(value));
        self
    }

    /// Sets `key` to a boolean value.
    pub fn set_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.insert(key.to_string(), JsonValue::Bool(value));
        self
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.get(key)
    }

    /// Iterates fields in key order (the serialisation order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &JsonValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// String field accessor.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Integer field accessor.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(JsonValue::as_u64)
    }

    /// Float field accessor (integers widen).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// Serialises to a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            out.push(':');
            match v {
                JsonValue::Str(s) => write_json_string(&mut out, s),
                JsonValue::U64(n) => out.push_str(&n.to_string()),
                JsonValue::F64(f) => {
                    // JSON has no NaN/Inf; the store never produces them,
                    // but degrade to 0 rather than emit invalid JSON.
                    if f.is_finite() {
                        out.push_str(&format!("{f:?}"))
                    } else {
                        out.push('0')
                    }
                }
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses a flat JSON object; rejects nesting, nulls and trailing input.
    pub fn parse(text: &str) -> Result<JsonObject, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, flatten: false, depth: 0 };
        let obj = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::Trailing);
        }
        Ok(obj)
    }

    /// Like [`JsonObject::parse`], but nested objects are accepted and
    /// flattened into dotted keys: `{"a":{"b":1}}` parses as `{"a.b":1}`.
    /// Exists for externally-shaped JSONL (e.g. the bench trajectory
    /// file), whose lines nest sub-records the query layer wants to
    /// address as `section.metric`. Arrays and nulls are still rejected,
    /// and store-written records never nest, so `parse` stays strict.
    pub fn parse_flatten(text: &str) -> Result<JsonObject, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, flatten: true, depth: 0 };
        let obj = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::Trailing);
        }
        Ok(obj)
    }
}

/// Errors produced while parsing a store JSON line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended unexpectedly.
    Eof,
    /// A structural character was missing or misplaced.
    Syntax(usize),
    /// A value kind outside the supported scalar subset (null, arrays,
    /// nested objects).
    Unsupported(usize),
    /// Input continued past the closing brace.
    Trailing,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Eof => write!(f, "unexpected end of JSON input"),
            JsonError::Syntax(at) => write!(f, "JSON syntax error at byte {at}"),
            JsonError::Unsupported(at) => write!(f, "unsupported JSON value at byte {at}"),
            JsonError::Trailing => write!(f, "trailing data after JSON object"),
        }
    }
}

impl std::error::Error for JsonError {}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Accept nested objects, flattening their keys with `.` separators.
    flatten: bool,
    /// Current object nesting depth (flatten mode only; bounded to keep
    /// recursion on adversarial input shallow).
    depth: u32,
}

/// Nesting bound for [`JsonObject::parse_flatten`].
const MAX_FLATTEN_DEPTH: u32 = 8;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else if self.pos >= self.bytes.len() {
            Err(JsonError::Eof)
        } else {
            Err(JsonError::Syntax(self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonObject, JsonError> {
        self.expect(b'{')?;
        let mut obj = JsonObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            self.skip_ws();
            if self.flatten && self.peek() == Some(b'{') {
                if self.depth >= MAX_FLATTEN_DEPTH {
                    return Err(JsonError::Unsupported(self.pos));
                }
                self.depth += 1;
                let nested = self.object()?;
                self.depth -= 1;
                for (k, v) in nested.fields {
                    obj.fields.insert(format!("{key}.{k}"), v);
                }
            } else {
                let value = self.value()?;
                obj.fields.insert(key, value);
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(obj);
                }
                Some(_) => return Err(JsonError::Syntax(self.pos)),
                None => return Err(JsonError::Eof),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'0'..=b'9') | Some(b'-') => self.number(),
            Some(_) => Err(JsonError::Unsupported(self.pos)),
            None => Err(JsonError::Eof),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::Syntax(self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::Syntax(start))?;
        if is_float || text.starts_with('-') {
            text.parse::<f64>().map(JsonValue::F64).map_err(|_| JsonError::Syntax(start))
        } else {
            text.parse::<u64>().map(JsonValue::U64).map_err(|_| JsonError::Syntax(start))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or(JsonError::Eof)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError::Eof)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos.checked_add(4).ok_or(JsonError::Eof)?;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(JsonError::Eof)?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::Syntax(self.pos))?;
                            // Surrogate pairs never occur in store output
                            // (only control characters are \u-escaped).
                            out.push(char::from_u32(code).ok_or(JsonError::Syntax(self.pos))?);
                            self.pos = end;
                        }
                        _ => return Err(JsonError::Syntax(self.pos - 1)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::Syntax(self.pos))?;
                    let c = rest.chars().next().ok_or(JsonError::Eof)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_scalar_kind() {
        let mut obj = JsonObject::new();
        obj.set_str("name", "db.scanidx#s1")
            .set_u64("count", 870)
            .set_f64("efficiency", 0.4375)
            .set_bool("ok", true);
        let text = obj.to_json();
        let back = JsonObject::parse(&text).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.str_field("name"), Some("db.scanidx#s1"));
        assert_eq!(back.u64_field("count"), Some(870));
        assert_eq!(back.f64_field("efficiency"), Some(0.4375));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn escapes_roundtrip() {
        let mut obj = JsonObject::new();
        obj.set_str("s", "a\"b\\c\nd\te\u{1}é");
        let back = JsonObject::parse(&obj.to_json()).unwrap();
        assert_eq!(back.str_field("s"), Some("a\"b\\c\nd\te\u{1}é"));
    }

    #[test]
    fn deterministic_key_order() {
        let mut a = JsonObject::new();
        a.set_u64("b", 2).set_u64("a", 1);
        assert_eq!(a.to_json(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn rejects_nesting_null_and_trailing() {
        assert!(JsonObject::parse("{\"a\":[1]}").is_err());
        assert!(JsonObject::parse("{\"a\":{\"b\":1}}").is_err());
        assert!(JsonObject::parse("{\"a\":null}").is_err());
        assert!(JsonObject::parse("{\"a\":1} extra").is_err());
        assert!(JsonObject::parse("{\"a\"").is_err());
        assert!(JsonObject::parse("").is_err());
    }

    #[test]
    fn parse_flatten_dots_nested_keys() {
        let obj = JsonObject::parse_flatten(
            "{\"bench\":\"suite_runner\",\"sched_packed_8t\":{\"median_secs\":0.31,\"peak_trace_bytes\":1905528},\"speedup_8t\":0.866}",
        )
        .unwrap();
        assert_eq!(obj.str_field("bench"), Some("suite_runner"));
        assert_eq!(obj.f64_field("sched_packed_8t.median_secs"), Some(0.31));
        assert_eq!(obj.u64_field("sched_packed_8t.peak_trace_bytes"), Some(1905528));
        assert_eq!(obj.f64_field("speedup_8t"), Some(0.866));
        // Strict parse still rejects the same line, and flatten still
        // rejects arrays, nulls and over-deep nesting.
        assert!(JsonObject::parse("{\"a\":{\"b\":1}}").is_err());
        assert!(JsonObject::parse_flatten("{\"a\":[1]}").is_err());
        assert!(JsonObject::parse_flatten("{\"a\":null}").is_err());
        let mut deep = String::new();
        for _ in 0..12 {
            deep.push_str("{\"k\":");
        }
        deep.push('1');
        deep.push_str(&"}".repeat(12));
        assert!(JsonObject::parse_flatten(&deep).is_err());
    }

    #[test]
    fn parses_whitespace_and_empty() {
        assert_eq!(JsonObject::parse("{ }").unwrap(), JsonObject::new());
        let obj = JsonObject::parse(" { \"k\" : 1 , \"j\" : true } ").unwrap();
        assert_eq!(obj.u64_field("k"), Some(1));
    }

    #[test]
    fn negative_and_float_numbers_parse_as_f64() {
        let obj = JsonObject::parse("{\"a\":-2.5,\"b\":1e3,\"c\":-4}").unwrap();
        assert_eq!(obj.f64_field("a"), Some(-2.5));
        assert_eq!(obj.f64_field("b"), Some(1000.0));
        assert_eq!(obj.f64_field("c"), Some(-4.0));
        assert_eq!(obj.u64_field("c"), None);
    }
}
