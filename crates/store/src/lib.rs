//! # chirp-store
//!
//! Persistent, content-addressed storage for CHiRP experiments: a trace
//! archive and a run ledger, together enabling incremental experiment
//! execution — rerunning a figure harness only simulates combinations
//! whose results are not already on disk.
//!
//! ## Layout
//!
//! ```text
//! <store>/
//!   traces/
//!     <key>.chrp          archived trace (CHRP codec), content-addressed
//!     MANIFEST.jsonl      append-only: key, checksum, size per file
//!   runs.jsonl            append-only run ledger (one JSON object/line)
//! ```
//!
//! Trace keys hash the benchmark identity (name, seed, generator
//! parameters, length, codec version); run keys hash the full run identity
//! (simulator configuration, policy, benchmark, instruction count) and are
//! computed by the simulation layer. All hashing is FNV-1a 64-bit — stable
//! across builds, unlike `std`'s `DefaultHasher`.
//!
//! Robustness: file writes are atomic (tmp + rename), every archived file
//! is checksummed, and corruption is detected and healed by regeneration
//! rather than being fatal. Ledger and manifest loads skip torn lines.

pub mod archive;
pub mod hash;
pub mod json;
pub mod ledger;
pub mod stream;
pub mod tempdir;

pub use archive::{
    ArchiveOutcome, ArchiveStats, EncodedTrace, EntryMeta, TraceArchive, ARCHIVE_VERSION,
};
pub use hash::{fnv64, hex16, parse_hex16, Fnv64};
pub use json::{JsonError, JsonObject, JsonValue};
pub use ledger::{LedgerLine, RunLedger};
pub use stream::ArchiveTraceStream;
pub use tempdir::TempDir;

use std::fmt;
use std::path::Path;

/// Errors surfaced by the store. I/O failures carry the operation that
/// failed; corruption inside the store is healed internally and only
/// reported through [`ArchiveOutcome`], never as an error.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure.
    Io {
        /// What the store was doing when the failure occurred.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Store state that cannot be interpreted (e.g. a path with no parent).
    Corrupt(String),
}

impl StoreError {
    pub(crate) fn io(context: &'static str, source: std::io::Error) -> StoreError {
        StoreError::Io { context, source }
    }

    pub(crate) fn corrupt(message: String) -> StoreError {
        StoreError::Corrupt(message)
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "store i/o ({context}): {source}"),
            StoreError::Corrupt(message) => write!(f, "store corrupt: {message}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt(_) => None,
        }
    }
}

/// A trace archive and run ledger rooted at the same directory — the unit
/// the `--store <DIR>` flag opens.
#[derive(Debug)]
pub struct Store {
    /// The content-addressed trace archive under `<root>/traces`.
    pub archive: TraceArchive,
    /// The append-only run ledger at `<root>/runs.jsonl`.
    pub ledger: RunLedger,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        Ok(Store { archive: TraceArchive::open(root)?, ledger: RunLedger::open(root)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_opens_both_components() {
        let root = TempDir::new("store-root");
        let store = Store::open(root.path()).unwrap();
        assert!(store.archive.is_empty());
        assert!(store.ledger.is_empty());
        assert!(root.path().join("traces").is_dir());
    }

    #[test]
    fn error_display_mentions_context() {
        let err = StoreError::io(
            "read run ledger",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let text = err.to_string();
        assert!(text.contains("read run ledger"));
    }
}
