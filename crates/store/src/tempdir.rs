//! Self-cleaning temporary directories for tests.
//!
//! The workspace's runner and store tests used to build scratch roots from
//! `process::id()` alone, which collided between tests in one process and
//! leaked directories whenever an assertion failed before the trailing
//! `remove_dir_all`. [`TempDir`] fixes both: the path embeds a per-process
//! counter so every instance is unique, and `Drop` removes the tree even
//! when the test panics.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs};

/// A uniquely named directory under the system temp dir, removed on drop.
///
/// Test support: hold one for the lifetime of the test and pass
/// [`TempDir::path`] wherever a store root is needed.
///
/// ```
/// let dir = chirp_store::TempDir::new("doc");
/// std::fs::write(dir.path().join("probe"), b"x").unwrap();
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory whose name embeds `tag`, the process id
    /// and a per-process counter.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — in a test that is the
    /// right failure mode.
    pub fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir().join(format!("chirp-{tag}-{}-{n}", std::process::id()));
        // A stale tree from a previous crashed run with the same pid is
        // possible (pid reuse); clear it so tests start empty.
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_removes_on_drop() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir(), "dropping one dir must not touch another");
    }

    #[test]
    fn removes_populated_trees() {
        let dir = TempDir::new("deep");
        fs::create_dir_all(dir.path().join("a/b")).unwrap();
        fs::write(dir.path().join("a/b/f"), b"x").unwrap();
        let kept = dir.path().to_path_buf();
        drop(dir);
        assert!(!kept.exists());
    }
}
