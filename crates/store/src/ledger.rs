//! Append-only run ledger.
//!
//! One JSONL file (`<root>/runs.jsonl`) records every completed benchmark
//! run, keyed by a caller-computed content hash of the full run identity
//! (simulator configuration, policy, benchmark, instruction count). The
//! ledger itself is generic: it stores flat [`JsonObject`] records and
//! leaves key computation and record mapping to the simulation layer, so
//! this crate never depends on simulator types.
//!
//! Appends are flushed line-at-a-time; a torn final line (interrupted
//! write) is skipped on load, so a crash mid-append loses at most the run
//! being written, never the ledger.

use crate::archive::append_line;
use crate::hash::{hex16, parse_hex16};
use crate::json::JsonObject;
use crate::StoreError;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The on-disk run ledger.
#[derive(Debug)]
pub struct RunLedger {
    path: PathBuf,
    records: HashMap<u64, JsonObject>,
}

impl RunLedger {
    /// Opens (creating the directory if needed) the ledger at
    /// `store_root/runs.jsonl` and loads all existing records.
    pub fn open(store_root: &Path) -> Result<RunLedger, StoreError> {
        fs::create_dir_all(store_root).map_err(|e| StoreError::io("create store dir", e))?;
        let path = store_root.join("runs.jsonl");
        let mut records = HashMap::new();
        if path.exists() {
            let text =
                fs::read_to_string(&path).map_err(|e| StoreError::io("read run ledger", e))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let Ok(obj) = JsonObject::parse(line) else { continue };
                let Some(key) = obj.str_field("key").and_then(parse_hex16) else { continue };
                // Later lines win, mirroring append order.
                records.insert(key, obj);
            }
        }
        Ok(RunLedger { path, records })
    }

    /// Whether a record exists for `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.records.contains_key(&key)
    }

    /// The record stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&JsonObject> {
        self.records.get(&key)
    }

    /// Appends `record` under `key`. The `"key"` field is stamped into the
    /// record automatically; any caller-set `"key"` is overwritten.
    pub fn append(&mut self, key: u64, mut record: JsonObject) -> Result<(), StoreError> {
        record.set_str("key", &hex16(key));
        append_line(&self.path, &record.to_json())?;
        self.records.insert(key, record);
        Ok(())
    }

    /// Number of distinct keys in the ledger.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ledger holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all `(key, record)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &JsonObject)> {
        self.records.iter().map(|(&k, v)| (k, v))
    }

    /// Scans the full append-order history of the ledger at `store_root`,
    /// including superseded revisions of rewritten keys — the raw material
    /// for "when did this metric regress?" questions, which the in-memory
    /// latest-wins map cannot answer. Torn or malformed lines are skipped,
    /// mirroring [`RunLedger::open`]; `seq` numbers the surviving lines in
    /// file order, so two scans of an append-only file agree on every
    /// prefix.
    pub fn scan(store_root: &Path) -> Result<Vec<LedgerLine>, StoreError> {
        let path = store_root.join("runs.jsonl");
        let mut out = Vec::new();
        if !path.exists() {
            return Ok(out);
        }
        let text = fs::read_to_string(&path).map_err(|e| StoreError::io("scan run ledger", e))?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(record) = JsonObject::parse(line) else { continue };
            let Some(key) = record.str_field("key").and_then(parse_hex16) else { continue };
            out.push(LedgerLine { seq: out.len() as u64, key, record });
        }
        Ok(out)
    }
}

/// One surviving line of a ledger history scan ([`RunLedger::scan`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerLine {
    /// Position among the surviving lines, in append order from 0.
    pub seq: u64,
    /// The run key the line was recorded under.
    pub key: u64,
    /// The full record, `"key"` field included.
    pub record: JsonObject,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chirp-store-ledger-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(policy: &str, mpki: f64) -> JsonObject {
        let mut obj = JsonObject::new();
        obj.set_str("policy", policy).set_f64("mpki", mpki);
        obj
    }

    #[test]
    fn append_then_reload_preserves_records() {
        let root = tmpdir("reload");
        let mut ledger = RunLedger::open(&root).unwrap();
        assert!(ledger.is_empty());
        ledger.append(7, record("lru", 12.5)).unwrap();
        ledger.append(9, record("chirp", 8.25)).unwrap();
        assert_eq!(ledger.len(), 2);

        let reopened = RunLedger::open(&root).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.contains(7));
        let rec = reopened.get(9).unwrap();
        assert_eq!(rec.str_field("policy"), Some("chirp"));
        assert_eq!(rec.f64_field("mpki"), Some(8.25));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rewritten_key_takes_latest_value() {
        let root = tmpdir("rewrite");
        let mut ledger = RunLedger::open(&root).unwrap();
        ledger.append(1, record("lru", 1.0)).unwrap();
        ledger.append(1, record("lru", 2.0)).unwrap();
        assert_eq!(ledger.len(), 1);
        let reopened = RunLedger::open(&root).unwrap();
        assert_eq!(reopened.get(1).unwrap().f64_field("mpki"), Some(2.0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_preserves_history_that_the_map_collapses() {
        let root = tmpdir("scan");
        let mut ledger = RunLedger::open(&root).unwrap();
        ledger.append(1, record("lru", 1.0)).unwrap();
        ledger.append(2, record("chirp", 9.0)).unwrap();
        ledger.append(1, record("lru", 2.0)).unwrap();
        assert_eq!(ledger.len(), 2, "map keeps latest per key");

        let lines = RunLedger::scan(&root).unwrap();
        assert_eq!(lines.len(), 3, "scan keeps superseded revisions");
        assert_eq!(lines.iter().map(|l| l.seq).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(lines[0].key, 1);
        assert_eq!(lines[0].record.f64_field("mpki"), Some(1.0));
        assert_eq!(lines[2].key, 1);
        assert_eq!(lines[2].record.f64_field("mpki"), Some(2.0));
        assert!(RunLedger::scan(&root.join("absent")).unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let root = tmpdir("torn");
        let mut ledger = RunLedger::open(&root).unwrap();
        ledger.append(3, record("ship", 4.5)).unwrap();
        let path = root.join("runs.jsonl");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"key\":\"00000000000000");
        fs::write(&path, text).unwrap();
        let reopened = RunLedger::open(&root).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.contains(3));
        let _ = fs::remove_dir_all(&root);
    }
}
