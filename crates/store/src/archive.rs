//! Content-addressed trace archive.
//!
//! Materialises benchmark traces to disk once, in the `CHRP` codec, keyed
//! by a content hash of everything that determines the trace bytes: the
//! spec name, the full generator parameter set, the seed, the instruction
//! count and the codec version. Layout under the store root:
//!
//! ```text
//! <root>/traces/<key>.chrp        one trace per content key
//! <root>/traces/MANIFEST.jsonl    append-only: one JSON line per file
//! ```
//!
//! Writes are atomic (tmp file + rename in the same directory), every file
//! carries an FNV-1a checksum in the manifest, and corruption — missing
//! file, bad checksum, undecodable bytes — is never fatal: the trace is
//! regenerated from its spec and the archive entry is rewritten.

use crate::hash::{fnv64, hex16, Fnv64};
use crate::json::JsonObject;
use crate::StoreError;
use chirp_trace::suite::BenchmarkSpec;
use chirp_trace::{read_trace_packed, write_trace_packed, PackedTrace, TraceRecord};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the archive keying/layout scheme; bumping it invalidates
/// every archived trace (it participates in the content key).
pub const ARCHIVE_VERSION: u32 = 1;

/// How a trace request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveOutcome {
    /// Decoded from a valid archived file.
    Hit,
    /// Not present; generated and archived.
    MissGenerated,
    /// Present but corrupt (checksum/decode failure); regenerated and
    /// rewritten.
    CorruptRegenerated,
}

/// Counters for archive activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Traces served from disk.
    pub hits: u64,
    /// Traces generated because no archive entry existed.
    pub misses: u64,
    /// Traces regenerated over a corrupt archive entry.
    pub corrupt_regenerated: u64,
}

/// Manifest metadata for one archived trace: everything needed to validate
/// and decode the file *without* holding the archive lock. Obtained under
/// the lock via [`TraceArchive::entry_meta`]; consumed lock-free by
/// [`TraceArchive::decode_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// FNV-1a checksum of the file bytes.
    pub checksum: u64,
    /// Expected file length in bytes.
    pub bytes: u64,
}

/// A trace encoded for archiving, produced lock-free by
/// [`TraceArchive::encode_packed`] and committed under the lock by
/// [`TraceArchive::commit`].
#[derive(Debug, Clone)]
pub struct EncodedTrace {
    /// The `CHRP` codec bytes.
    pub bytes: Vec<u8>,
    /// FNV-1a checksum of `bytes`.
    pub checksum: u64,
    /// Record count of the encoded trace.
    pub records: u64,
}

/// The on-disk trace archive.
///
/// # Locking discipline
///
/// The struct itself is not thread-safe; parallel callers (the suite
/// runner) share it behind a mutex. To keep codec work out of that
/// critical section, the expensive steps are exposed as lock-free
/// associated functions operating on plain data:
///
/// 1. under the lock: [`TraceArchive::entry_meta`] + [`TraceArchive::trace_path`] (index probe);
/// 2. lock released: [`TraceArchive::decode_file`] (read + checksum + decode),
///    or on a miss generate + [`TraceArchive::encode_packed`] + [`TraceArchive::store_file`];
/// 3. under the lock again: [`TraceArchive::record_hit`] or
///    [`TraceArchive::commit`] (manifest append + index insert — bookkeeping only).
///
/// [`TraceArchive::get_or_generate_packed`] composes the same steps for
/// single-threaded callers.
#[derive(Debug)]
pub struct TraceArchive {
    dir: PathBuf,
    manifest_path: PathBuf,
    entries: HashMap<u64, EntryMeta>,
    stats: ArchiveStats,
}

impl TraceArchive {
    /// Opens (creating if needed) the archive under `store_root/traces`.
    pub fn open(store_root: &Path) -> Result<TraceArchive, StoreError> {
        let dir = store_root.join("traces");
        fs::create_dir_all(&dir).map_err(|e| StoreError::io("create archive dir", e))?;
        let manifest_path = dir.join("MANIFEST.jsonl");
        let mut entries = HashMap::new();
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)
                .map_err(|e| StoreError::io("read archive manifest", e))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                // A torn final line (interrupted append) parses as an
                // error; skip it — the trace it described will simply be
                // treated as absent or fail its checksum.
                let Ok(obj) = JsonObject::parse(line) else { continue };
                let (Some(key), Some(checksum), Some(bytes)) = (
                    obj.str_field("key").and_then(crate::hash::parse_hex16),
                    obj.str_field("checksum").and_then(crate::hash::parse_hex16),
                    obj.u64_field("bytes"),
                ) else {
                    continue;
                };
                // Later lines win: a rewritten (regenerated) trace appends
                // a fresh manifest line for the same key.
                entries.insert(key, EntryMeta { checksum, bytes });
            }
        }
        Ok(TraceArchive { dir, manifest_path, entries, stats: ArchiveStats::default() })
    }

    /// The content key for (`spec`, `len`): covers the benchmark name, the
    /// full generator parameter set (via its `Debug` form, which is part of
    /// the spec's serialised identity), the seed, the instruction count and
    /// the codec/archive version.
    pub fn content_key(spec: &BenchmarkSpec, len: usize) -> u64 {
        let mut h = Fnv64::new();
        h.update_field(&spec.name)
            .update_u64(spec.seed)
            .update_field(&format!("{:?}", spec.spec))
            .update_u64(len as u64)
            .update_u64(u64::from(ARCHIVE_VERSION));
        h.finish()
    }

    /// Path of the trace file for `key`.
    pub fn trace_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.chrp", hex16(key)))
    }

    /// Manifest metadata for `key`, if the archive knows it. Cheap — safe
    /// to call with the archive lock held.
    pub fn entry_meta(&self, key: u64) -> Option<EntryMeta> {
        self.entries.get(&key).copied()
    }

    /// Validates and decodes an archived trace file against its manifest
    /// metadata — the expensive read path, deliberately free of `self` so
    /// parallel callers run it *outside* the archive lock. Returns `None`
    /// on any mismatch (missing file, short/long read, bad checksum,
    /// undecodable bytes); callers treat that as corruption and
    /// regenerate.
    pub fn decode_file(path: &Path, meta: EntryMeta) -> Option<PackedTrace> {
        let bytes = fs::read(path).ok()?;
        if bytes.len() as u64 != meta.bytes || fnv64(&bytes) != meta.checksum {
            return None;
        }
        read_trace_packed(&bytes).ok()
    }

    /// Encodes a packed trace for archiving — codec plus checksum, free of
    /// `self` so it runs outside the archive lock.
    pub fn encode_packed(trace: &PackedTrace) -> EncodedTrace {
        let bytes = write_trace_packed(trace);
        let checksum = fnv64(&bytes);
        EncodedTrace { checksum, records: trace.len() as u64, bytes }
    }

    /// Atomically writes encoded trace bytes to `path` (tmp + rename).
    /// Free of `self`; the entry is not visible to the index until
    /// [`TraceArchive::commit`] runs.
    pub fn store_file(path: &Path, encoded: &EncodedTrace) -> Result<(), StoreError> {
        write_atomic(path, &encoded.bytes)
    }

    /// Publishes an entry written by [`TraceArchive::store_file`]: appends
    /// the manifest line, updates the in-memory index and bumps the
    /// counter for `outcome`. This is the only write step that needs the
    /// archive lock, and it does no codec work.
    pub fn commit(
        &mut self,
        key: u64,
        encoded: &EncodedTrace,
        outcome: ArchiveOutcome,
    ) -> Result<(), StoreError> {
        let mut line = JsonObject::new();
        line.set_str("key", &hex16(key))
            .set_str("checksum", &hex16(encoded.checksum))
            .set_u64("bytes", encoded.bytes.len() as u64)
            .set_u64("records", encoded.records)
            .set_u64("version", u64::from(ARCHIVE_VERSION));
        append_line(&self.manifest_path, &line.to_json())?;
        self.entries.insert(
            key,
            EntryMeta { checksum: encoded.checksum, bytes: encoded.bytes.len() as u64 },
        );
        match outcome {
            ArchiveOutcome::Hit => {}
            ArchiveOutcome::MissGenerated => self.stats.misses += 1,
            ArchiveOutcome::CorruptRegenerated => self.stats.corrupt_regenerated += 1,
        }
        Ok(())
    }

    /// Counts a trace served from a valid archived file.
    pub fn record_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Returns the packed trace for (`spec`, `len`), decoding it from the
    /// archive when a valid copy exists, else generating (and archiving)
    /// it. Corrupt entries are regenerated, never fatal.
    pub fn get_or_generate_packed(
        &mut self,
        spec: &BenchmarkSpec,
        len: usize,
    ) -> Result<(PackedTrace, ArchiveOutcome), StoreError> {
        let key = Self::content_key(spec, len);
        let path = self.trace_path(key);
        if let Some(meta) = self.entry_meta(key) {
            if let Some(trace) = Self::decode_file(&path, meta) {
                self.record_hit();
                return Ok((trace, ArchiveOutcome::Hit));
            }
            // Checksum/codec mismatch or unreadable file: regenerate.
            let trace = spec.generate_packed(len);
            let encoded = Self::encode_packed(&trace);
            Self::store_file(&path, &encoded)?;
            self.commit(key, &encoded, ArchiveOutcome::CorruptRegenerated)?;
            return Ok((trace, ArchiveOutcome::CorruptRegenerated));
        }
        let trace = spec.generate_packed(len);
        let encoded = Self::encode_packed(&trace);
        Self::store_file(&path, &encoded)?;
        self.commit(key, &encoded, ArchiveOutcome::MissGenerated)?;
        Ok((trace, ArchiveOutcome::MissGenerated))
    }

    /// Flat-vector variant of [`TraceArchive::get_or_generate_packed`],
    /// for callers that want slice access to the records.
    pub fn get_or_generate(
        &mut self,
        spec: &BenchmarkSpec,
        len: usize,
    ) -> Result<(Vec<TraceRecord>, ArchiveOutcome), StoreError> {
        self.get_or_generate_packed(spec, len).map(|(trace, outcome)| (trace.to_records(), outcome))
    }

    /// Materialises (`spec`, `len`) if absent or invalid, without decoding
    /// an existing valid file. Returns the outcome.
    pub fn pack(&mut self, spec: &BenchmarkSpec, len: usize) -> Result<ArchiveOutcome, StoreError> {
        let key = Self::content_key(spec, len);
        if let Some(meta) = self.entries.get(&key) {
            if let Ok(bytes) = fs::read(self.trace_path(key)) {
                if bytes.len() as u64 == meta.bytes && fnv64(&bytes) == meta.checksum {
                    self.stats.hits += 1;
                    return Ok(ArchiveOutcome::Hit);
                }
            }
            return self.regenerate(spec, len, key, ArchiveOutcome::CorruptRegenerated);
        }
        self.regenerate(spec, len, key, ArchiveOutcome::MissGenerated)
    }

    fn regenerate(
        &mut self,
        spec: &BenchmarkSpec,
        len: usize,
        key: u64,
        outcome: ArchiveOutcome,
    ) -> Result<ArchiveOutcome, StoreError> {
        let trace = spec.generate_packed(len);
        let encoded = Self::encode_packed(&trace);
        Self::store_file(&self.trace_path(key), &encoded)?;
        self.commit(key, &encoded, outcome)?;
        Ok(outcome)
    }

    /// Checksum-audits every manifest entry. Returns `(valid, corrupt)`
    /// counts; corrupt entries (missing files count as corrupt) are listed
    /// by key in the second element.
    pub fn verify(&self) -> (usize, Vec<u64>) {
        let mut valid = 0usize;
        let mut corrupt = Vec::new();
        for (&key, entry) in &self.entries {
            let ok = fs::read(self.trace_path(key))
                .map(|bytes| {
                    bytes.len() as u64 == entry.bytes
                        && fnv64(&bytes) == entry.checksum
                        && read_trace_packed(&bytes).is_ok()
                })
                .unwrap_or(false);
            if ok {
                valid += 1;
            } else {
                corrupt.push(key);
            }
        }
        corrupt.sort_unstable();
        (valid, corrupt)
    }

    /// Number of manifest entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters since open.
    pub fn stats(&self) -> ArchiveStats {
        self.stats
    }
}

/// Writes `bytes` to `path` atomically: a unique tmp file in the same
/// directory, then rename. Readers never observe a half-written file.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().ok_or_else(|| {
        StoreError::corrupt(format!("path {} has no parent directory", path.display()))
    })?;
    let tmp = dir.join(format!(
        ".tmp.{}.{:x}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("trace"),
        std::process::id(),
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("create tmp file", e))?;
        f.write_all(bytes).map_err(|e| StoreError::io("write tmp file", e))?;
        f.sync_all().map_err(|e| StoreError::io("sync tmp file", e))?;
        fs::rename(&tmp, path).map_err(|e| StoreError::io("rename tmp file", e))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Appends `line` + newline to `path`, creating it if needed.
pub(crate) fn append_line(path: &Path, line: &str) -> Result<(), StoreError> {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| StoreError::io("open for append", e))?;
    f.write_all(line.as_bytes()).map_err(|e| StoreError::io("append line", e))?;
    f.write_all(b"\n").map_err(|e| StoreError::io("append newline", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    fn tmpdir(tag: &str) -> crate::TempDir {
        crate::TempDir::new(&format!("store-archive-{tag}"))
    }

    fn spec() -> BenchmarkSpec {
        build_suite(&SuiteConfig { benchmarks: 3 }).remove(1)
    }

    #[test]
    fn miss_then_hit_roundtrips_identical_trace() {
        let root = tmpdir("hit");
        let mut archive = TraceArchive::open(root.path()).unwrap();
        let (first, outcome) = archive.get_or_generate(&spec(), 5_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::MissGenerated);
        let (second, outcome) = archive.get_or_generate(&spec(), 5_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::Hit);
        assert_eq!(first, second);
        // A reopened archive still hits.
        let mut reopened = TraceArchive::open(root.path()).unwrap();
        let (third, outcome) = reopened.get_or_generate(&spec(), 5_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::Hit);
        assert_eq!(first, third);
    }

    #[test]
    fn different_lengths_get_different_keys() {
        let s = spec();
        assert_ne!(TraceArchive::content_key(&s, 1000), TraceArchive::content_key(&s, 2000));
    }

    #[test]
    fn corruption_is_detected_and_regenerated() {
        let root = tmpdir("corrupt");
        let mut archive = TraceArchive::open(root.path()).unwrap();
        let (original, _) = archive.get_or_generate(&spec(), 4_000).unwrap();
        let key = TraceArchive::content_key(&spec(), 4_000);
        let path = archive.trace_path(key);

        // Flip bytes in the stored file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let mut reopened = TraceArchive::open(root.path()).unwrap();
        let (_, corrupt) = reopened.verify();
        assert_eq!(corrupt, vec![key]);
        let (recovered, outcome) = reopened.get_or_generate(&spec(), 4_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::CorruptRegenerated);
        assert_eq!(recovered, original);
        // The rewrite healed the archive.
        let (valid, corrupt) = reopened.verify();
        assert_eq!((valid, corrupt.len()), (1, 0));
        assert_eq!(reopened.stats().corrupt_regenerated, 1);
    }

    #[test]
    fn missing_file_with_manifest_entry_regenerates() {
        let root = tmpdir("missing");
        let mut archive = TraceArchive::open(root.path()).unwrap();
        archive.get_or_generate(&spec(), 2_000).unwrap();
        let key = TraceArchive::content_key(&spec(), 2_000);
        fs::remove_file(archive.trace_path(key)).unwrap();
        let mut reopened = TraceArchive::open(root.path()).unwrap();
        let (_, outcome) = reopened.get_or_generate(&spec(), 2_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::CorruptRegenerated);
    }

    #[test]
    fn pack_skips_valid_entries() {
        let root = tmpdir("pack");
        let mut archive = TraceArchive::open(root.path()).unwrap();
        assert_eq!(archive.pack(&spec(), 3_000).unwrap(), ArchiveOutcome::MissGenerated);
        assert_eq!(archive.pack(&spec(), 3_000).unwrap(), ArchiveOutcome::Hit);
        assert_eq!(archive.len(), 1);
    }

    #[test]
    fn torn_manifest_line_is_skipped() {
        let root = tmpdir("torn");
        let mut archive = TraceArchive::open(root.path()).unwrap();
        archive.get_or_generate(&spec(), 1_000).unwrap();
        // Simulate an interrupted append.
        append_line(&root.path().join("traces/MANIFEST.jsonl"), "{\"key\":\"dead").unwrap();
        let reopened = TraceArchive::open(root.path()).unwrap();
        assert_eq!(reopened.len(), 1);
    }
}
