//! Content-addressed trace archive.
//!
//! Materialises benchmark traces to disk once, in the `CHRP` codec, keyed
//! by a content hash of everything that determines the trace bytes: the
//! spec name, the full generator parameter set, the seed, the instruction
//! count and the codec version. Layout under the store root:
//!
//! ```text
//! <root>/traces/<key>.chrp        one trace per content key
//! <root>/traces/MANIFEST.jsonl    append-only: one JSON line per file
//! ```
//!
//! Writes are atomic (tmp file + rename in the same directory), every file
//! carries an FNV-1a checksum in the manifest, and corruption — missing
//! file, bad checksum, undecodable bytes — is never fatal: the trace is
//! regenerated from its spec and the archive entry is rewritten.

use crate::hash::{fnv64, hex16, Fnv64};
use crate::json::JsonObject;
use crate::StoreError;
use chirp_trace::suite::BenchmarkSpec;
use chirp_trace::{read_trace, write_trace, TraceRecord};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the archive keying/layout scheme; bumping it invalidates
/// every archived trace (it participates in the content key).
pub const ARCHIVE_VERSION: u32 = 1;

/// How a trace request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveOutcome {
    /// Decoded from a valid archived file.
    Hit,
    /// Not present; generated and archived.
    MissGenerated,
    /// Present but corrupt (checksum/decode failure); regenerated and
    /// rewritten.
    CorruptRegenerated,
}

/// Counters for archive activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Traces served from disk.
    pub hits: u64,
    /// Traces generated because no archive entry existed.
    pub misses: u64,
    /// Traces regenerated over a corrupt archive entry.
    pub corrupt_regenerated: u64,
}

#[derive(Debug, Clone)]
struct ManifestEntry {
    checksum: u64,
    bytes: u64,
}

/// The on-disk trace archive.
#[derive(Debug)]
pub struct TraceArchive {
    dir: PathBuf,
    manifest_path: PathBuf,
    entries: HashMap<u64, ManifestEntry>,
    stats: ArchiveStats,
}

impl TraceArchive {
    /// Opens (creating if needed) the archive under `store_root/traces`.
    pub fn open(store_root: &Path) -> Result<TraceArchive, StoreError> {
        let dir = store_root.join("traces");
        fs::create_dir_all(&dir).map_err(|e| StoreError::io("create archive dir", e))?;
        let manifest_path = dir.join("MANIFEST.jsonl");
        let mut entries = HashMap::new();
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)
                .map_err(|e| StoreError::io("read archive manifest", e))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                // A torn final line (interrupted append) parses as an
                // error; skip it — the trace it described will simply be
                // treated as absent or fail its checksum.
                let Ok(obj) = JsonObject::parse(line) else { continue };
                let (Some(key), Some(checksum), Some(bytes)) = (
                    obj.str_field("key").and_then(crate::hash::parse_hex16),
                    obj.str_field("checksum").and_then(crate::hash::parse_hex16),
                    obj.u64_field("bytes"),
                ) else {
                    continue;
                };
                // Later lines win: a rewritten (regenerated) trace appends
                // a fresh manifest line for the same key.
                entries.insert(key, ManifestEntry { checksum, bytes });
            }
        }
        Ok(TraceArchive { dir, manifest_path, entries, stats: ArchiveStats::default() })
    }

    /// The content key for (`spec`, `len`): covers the benchmark name, the
    /// full generator parameter set (via its `Debug` form, which is part of
    /// the spec's serialised identity), the seed, the instruction count and
    /// the codec/archive version.
    pub fn content_key(spec: &BenchmarkSpec, len: usize) -> u64 {
        let mut h = Fnv64::new();
        h.update_field(&spec.name)
            .update_u64(spec.seed)
            .update_field(&format!("{:?}", spec.spec))
            .update_u64(len as u64)
            .update_u64(u64::from(ARCHIVE_VERSION));
        h.finish()
    }

    /// Path of the trace file for `key`.
    pub fn trace_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.chrp", hex16(key)))
    }

    /// Returns the trace for (`spec`, `len`), decoding it from the archive
    /// when a valid copy exists, else generating (and archiving) it.
    /// Corrupt entries are regenerated, never fatal.
    pub fn get_or_generate(
        &mut self,
        spec: &BenchmarkSpec,
        len: usize,
    ) -> Result<(Vec<TraceRecord>, ArchiveOutcome), StoreError> {
        let key = Self::content_key(spec, len);
        let path = self.trace_path(key);
        let known = self.entries.get(&key).cloned();
        if let Some(entry) = known {
            match fs::read(&path) {
                Ok(bytes) => {
                    if bytes.len() as u64 == entry.bytes && fnv64(&bytes) == entry.checksum {
                        if let Ok(trace) = read_trace(&bytes) {
                            self.stats.hits += 1;
                            return Ok((trace, ArchiveOutcome::Hit));
                        }
                    }
                    // Checksum or codec mismatch: fall through to
                    // regeneration.
                }
                Err(_) => {
                    // Manifest entry without a readable file: regenerate.
                }
            }
            let trace = spec.generate(len);
            self.write_entry(key, &trace)?;
            self.stats.corrupt_regenerated += 1;
            return Ok((trace, ArchiveOutcome::CorruptRegenerated));
        }
        let trace = spec.generate(len);
        self.write_entry(key, &trace)?;
        self.stats.misses += 1;
        Ok((trace, ArchiveOutcome::MissGenerated))
    }

    /// Materialises (`spec`, `len`) if absent or invalid, without decoding
    /// an existing valid file. Returns the outcome.
    pub fn pack(&mut self, spec: &BenchmarkSpec, len: usize) -> Result<ArchiveOutcome, StoreError> {
        let key = Self::content_key(spec, len);
        if let Some(entry) = self.entries.get(&key) {
            if let Ok(bytes) = fs::read(self.trace_path(key)) {
                if bytes.len() as u64 == entry.bytes && fnv64(&bytes) == entry.checksum {
                    self.stats.hits += 1;
                    return Ok(ArchiveOutcome::Hit);
                }
            }
            let trace = spec.generate(len);
            self.write_entry(key, &trace)?;
            self.stats.corrupt_regenerated += 1;
            return Ok(ArchiveOutcome::CorruptRegenerated);
        }
        let trace = spec.generate(len);
        self.write_entry(key, &trace)?;
        self.stats.misses += 1;
        Ok(ArchiveOutcome::MissGenerated)
    }

    fn write_entry(&mut self, key: u64, trace: &[TraceRecord]) -> Result<(), StoreError> {
        let bytes = write_trace(trace);
        let checksum = fnv64(&bytes);
        let path = self.trace_path(key);
        write_atomic(&path, &bytes)?;
        let mut line = JsonObject::new();
        line.set_str("key", &hex16(key))
            .set_str("checksum", &hex16(checksum))
            .set_u64("bytes", bytes.len() as u64)
            .set_u64("records", trace.len() as u64)
            .set_u64("version", u64::from(ARCHIVE_VERSION));
        append_line(&self.manifest_path, &line.to_json())?;
        self.entries.insert(key, ManifestEntry { checksum, bytes: bytes.len() as u64 });
        Ok(())
    }

    /// Checksum-audits every manifest entry. Returns `(valid, corrupt)`
    /// counts; corrupt entries (missing files count as corrupt) are listed
    /// by key in the second element.
    pub fn verify(&self) -> (usize, Vec<u64>) {
        let mut valid = 0usize;
        let mut corrupt = Vec::new();
        for (&key, entry) in &self.entries {
            let ok = fs::read(self.trace_path(key))
                .map(|bytes| {
                    bytes.len() as u64 == entry.bytes
                        && fnv64(&bytes) == entry.checksum
                        && read_trace(&bytes).is_ok()
                })
                .unwrap_or(false);
            if ok {
                valid += 1;
            } else {
                corrupt.push(key);
            }
        }
        corrupt.sort_unstable();
        (valid, corrupt)
    }

    /// Number of manifest entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters since open.
    pub fn stats(&self) -> ArchiveStats {
        self.stats
    }
}

/// Writes `bytes` to `path` atomically: a unique tmp file in the same
/// directory, then rename. Readers never observe a half-written file.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().ok_or_else(|| {
        StoreError::corrupt(format!("path {} has no parent directory", path.display()))
    })?;
    let tmp = dir.join(format!(
        ".tmp.{}.{:x}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("trace"),
        std::process::id(),
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("create tmp file", e))?;
        f.write_all(bytes).map_err(|e| StoreError::io("write tmp file", e))?;
        f.sync_all().map_err(|e| StoreError::io("sync tmp file", e))?;
        fs::rename(&tmp, path).map_err(|e| StoreError::io("rename tmp file", e))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Appends `line` + newline to `path`, creating it if needed.
pub(crate) fn append_line(path: &Path, line: &str) -> Result<(), StoreError> {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| StoreError::io("open for append", e))?;
    f.write_all(line.as_bytes()).map_err(|e| StoreError::io("append line", e))?;
    f.write_all(b"\n").map_err(|e| StoreError::io("append newline", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chirp-store-archive-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> BenchmarkSpec {
        build_suite(&SuiteConfig { benchmarks: 3 }).remove(1)
    }

    #[test]
    fn miss_then_hit_roundtrips_identical_trace() {
        let root = tmpdir("hit");
        let mut archive = TraceArchive::open(&root).unwrap();
        let (first, outcome) = archive.get_or_generate(&spec(), 5_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::MissGenerated);
        let (second, outcome) = archive.get_or_generate(&spec(), 5_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::Hit);
        assert_eq!(first, second);
        // A reopened archive still hits.
        let mut reopened = TraceArchive::open(&root).unwrap();
        let (third, outcome) = reopened.get_or_generate(&spec(), 5_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::Hit);
        assert_eq!(first, third);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn different_lengths_get_different_keys() {
        let s = spec();
        assert_ne!(TraceArchive::content_key(&s, 1000), TraceArchive::content_key(&s, 2000));
    }

    #[test]
    fn corruption_is_detected_and_regenerated() {
        let root = tmpdir("corrupt");
        let mut archive = TraceArchive::open(&root).unwrap();
        let (original, _) = archive.get_or_generate(&spec(), 4_000).unwrap();
        let key = TraceArchive::content_key(&spec(), 4_000);
        let path = archive.trace_path(key);

        // Flip bytes in the stored file.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let mut reopened = TraceArchive::open(&root).unwrap();
        let (_, corrupt) = reopened.verify();
        assert_eq!(corrupt, vec![key]);
        let (recovered, outcome) = reopened.get_or_generate(&spec(), 4_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::CorruptRegenerated);
        assert_eq!(recovered, original);
        // The rewrite healed the archive.
        let (valid, corrupt) = reopened.verify();
        assert_eq!((valid, corrupt.len()), (1, 0));
        assert_eq!(reopened.stats().corrupt_regenerated, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_file_with_manifest_entry_regenerates() {
        let root = tmpdir("missing");
        let mut archive = TraceArchive::open(&root).unwrap();
        archive.get_or_generate(&spec(), 2_000).unwrap();
        let key = TraceArchive::content_key(&spec(), 2_000);
        fs::remove_file(archive.trace_path(key)).unwrap();
        let mut reopened = TraceArchive::open(&root).unwrap();
        let (_, outcome) = reopened.get_or_generate(&spec(), 2_000).unwrap();
        assert_eq!(outcome, ArchiveOutcome::CorruptRegenerated);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn pack_skips_valid_entries() {
        let root = tmpdir("pack");
        let mut archive = TraceArchive::open(&root).unwrap();
        assert_eq!(archive.pack(&spec(), 3_000).unwrap(), ArchiveOutcome::MissGenerated);
        assert_eq!(archive.pack(&spec(), 3_000).unwrap(), ArchiveOutcome::Hit);
        assert_eq!(archive.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_manifest_line_is_skipped() {
        let root = tmpdir("torn");
        let mut archive = TraceArchive::open(&root).unwrap();
        archive.get_or_generate(&spec(), 1_000).unwrap();
        // Simulate an interrupted append.
        append_line(&root.join("traces/MANIFEST.jsonl"), "{\"key\":\"dead").unwrap();
        let reopened = TraceArchive::open(&root).unwrap();
        assert_eq!(reopened.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }
}
