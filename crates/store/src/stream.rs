//! Archive-backed trace streaming.
//!
//! [`ArchiveTraceStream`] decodes an archived `.chrp` file in bounded
//! batches through the codec's chunked path, so replaying an archived
//! trace never materialises it: peak residency is O(chunk) plus the
//! reader's buffer. Integrity matches the materialized archive path —
//! the file's FNV-1a checksum is accumulated incrementally as bytes are
//! consumed and verified against the manifest entry before the final
//! batch is handed out, so a consumer that receives every batch has
//! replayed a checksum-clean file. On any failure (I/O, decode,
//! checksum) callers treat the entry as corrupt and regenerate, exactly
//! like [`TraceArchive::decode_file`](crate::TraceArchive::decode_file)
//! returning `None`.
//!
//! Locking discipline mirrors the materialized path: probe
//! `entry_meta`/`trace_path` under the archive lock, then open and drain
//! the stream with the lock released.

use crate::archive::EntryMeta;
use crate::hash::Fnv64;
use chirp_trace::codec::ChunkedDecoder;
use chirp_trace::stream::{StreamError, TraceStream};
use chirp_trace::PackedTrace;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// A reader adapter that checksums and counts exactly the bytes the
/// caller consumes. Sits *outside* the buffered reader so read-ahead
/// never contaminates the hash.
#[derive(Debug)]
struct HashingReader<R> {
    inner: R,
    hasher: Fnv64,
    consumed: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> HashingReader<R> {
        HashingReader { inner, hasher: Fnv64::new(), consumed: 0 }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        self.consumed += n as u64;
        Ok(n)
    }
}

/// Streams an archived trace file in bounded [`PackedTrace`] batches,
/// verifying the manifest checksum over the whole file as a side effect
/// of consumption.
pub struct ArchiveTraceStream {
    decoder: Option<ChunkedDecoder<HashingReader<BufReader<File>>>>,
    meta: EntryMeta,
    chunk: usize,
    len: usize,
}

impl std::fmt::Debug for ArchiveTraceStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveTraceStream")
            .field("meta", &self.meta)
            .field("chunk", &self.chunk)
            .field("len", &self.len)
            .finish()
    }
}

impl ArchiveTraceStream {
    /// Opens the archived file at `path` for streaming against its
    /// manifest metadata. `chunk` bounds the records per batch.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened or its header is invalid;
    /// callers treat any error as a corrupt entry and regenerate.
    pub fn open(
        path: &Path,
        meta: EntryMeta,
        chunk: usize,
    ) -> Result<ArchiveTraceStream, StreamError> {
        let file = File::open(path)?;
        let decoder = ChunkedDecoder::new(HashingReader::new(BufReader::new(file)))?;
        let len = decoder.remaining();
        Ok(ArchiveTraceStream { decoder: Some(decoder), meta, chunk: chunk.max(1), len })
    }

    /// Drains the rest of the file through the hasher and checks length
    /// and checksum against the manifest entry.
    fn verify_checksum(&mut self) -> Result<(), StreamError> {
        let Some(decoder) = self.decoder.take() else { return Ok(()) };
        let mut reader = decoder.into_inner();
        // The record section may be followed by trailing bytes (a corrupt
        // or tampered file); they are part of the checksummed length, so
        // consume to EOF before comparing.
        std::io::copy(&mut reader, &mut std::io::sink())?;
        if reader.consumed != self.meta.bytes {
            return Err(StreamError::Corrupt(format!(
                "archived trace is {} bytes, manifest says {}",
                reader.consumed, self.meta.bytes
            )));
        }
        let checksum = reader.hasher.finish();
        if checksum != self.meta.checksum {
            return Err(StreamError::Corrupt(format!(
                "archived trace checksum {checksum:016x} != manifest {:016x}",
                self.meta.checksum
            )));
        }
        Ok(())
    }
}

impl TraceStream for ArchiveTraceStream {
    fn len(&self) -> usize {
        self.len
    }

    fn chunk_records(&self) -> usize {
        self.chunk
    }

    fn next_batch(&mut self) -> Result<Option<PackedTrace>, StreamError> {
        let Some(decoder) = self.decoder.as_mut() else { return Ok(None) };
        match decoder.next_chunk(self.chunk) {
            Ok(Some(batch)) => {
                if decoder.remaining() == 0 {
                    // Verify before handing out the last batch, so a
                    // consumer never finishes a corrupt replay cleanly.
                    self.verify_checksum()?;
                }
                Ok(Some(batch))
            }
            Ok(None) => {
                self.verify_checksum()?;
                Ok(None)
            }
            Err(e) => {
                self.decoder = None;
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::TraceArchive;
    use crate::TempDir;
    use chirp_trace::stream::collect_stream;
    use chirp_trace::suite::{build_suite, SuiteConfig};
    use std::fs;

    fn archived(root: &TempDir, len: usize) -> (TraceArchive, u64, PackedTrace) {
        let spec = build_suite(&SuiteConfig { benchmarks: 3 }).remove(1);
        let mut archive = TraceArchive::open(root.path()).unwrap();
        let (trace, _) = archive.get_or_generate_packed(&spec, len).unwrap();
        let key = TraceArchive::content_key(&spec, len);
        (archive, key, trace)
    }

    #[test]
    fn streamed_archive_matches_materialized_decode() {
        let root = TempDir::new("archive-stream-ok");
        let (archive, key, want) = archived(&root, 6_000);
        let meta = archive.entry_meta(key).unwrap();
        for chunk in [1usize, 497, 4096, 10_000] {
            let mut stream =
                ArchiveTraceStream::open(&archive.trace_path(key), meta, chunk).unwrap();
            assert_eq!(stream.len(), 6_000);
            let got = collect_stream(&mut stream).unwrap();
            assert_eq!(got.to_records(), want.to_records(), "chunk {chunk}");
        }
    }

    #[test]
    fn corrupt_file_fails_before_the_stream_completes() {
        let root = TempDir::new("archive-stream-corrupt");
        let (archive, key, _) = archived(&root, 4_000);
        let meta = archive.entry_meta(key).unwrap();
        let path = archive.trace_path(key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let outcome = ArchiveTraceStream::open(&path, meta, 512)
            .and_then(|mut stream| collect_stream(&mut stream).map(|_| ()));
        assert!(outcome.is_err(), "byte flip must not stream cleanly");
    }

    #[test]
    fn truncated_file_fails() {
        let root = TempDir::new("archive-stream-trunc");
        let (archive, key, _) = archived(&root, 4_000);
        let meta = archive.entry_meta(key).unwrap();
        let path = archive.trace_path(key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let outcome = ArchiveTraceStream::open(&path, meta, 512)
            .and_then(|mut stream| collect_stream(&mut stream).map(|_| ()));
        assert!(outcome.is_err(), "truncated file must not stream cleanly");
    }

    #[test]
    fn trailing_garbage_fails_checksum() {
        let root = TempDir::new("archive-stream-trailing");
        let (archive, key, _) = archived(&root, 2_000);
        let meta = archive.entry_meta(key).unwrap();
        let path = archive.trace_path(key);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        fs::write(&path, &bytes).unwrap();

        let outcome = ArchiveTraceStream::open(&path, meta, 512)
            .and_then(|mut stream| collect_stream(&mut stream).map(|_| ()));
        assert!(matches!(outcome, Err(StreamError::Corrupt(_))), "got {outcome:?}");
    }

    #[test]
    fn missing_file_is_an_open_error() {
        let root = TempDir::new("archive-stream-missing");
        let meta = EntryMeta { checksum: 0, bytes: 0 };
        assert!(ArchiveTraceStream::open(&root.path().join("nope.chrp"), meta, 64).is_err());
    }
}
