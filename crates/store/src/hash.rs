//! Content hashing for store keys and file checksums.
//!
//! Uses FNV-1a (64-bit): dependency-free, stable across platforms and Rust
//! versions — unlike `DefaultHasher`, whose output may change between
//! releases — which matters because keys and checksums are persisted on
//! disk and must stay comparable across builds.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string field with a length prefix, so adjacent fields
    /// cannot collide by shifting bytes between them.
    pub fn update_field(&mut self, field: &str) -> &mut Self {
        self.update(&(field.len() as u64).to_le_bytes());
        self.update(field.as_bytes())
    }

    /// Absorbs a `u64` in little-endian order.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot hash of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Formats a hash as the fixed-width lowercase hex used in file names and
/// ledger keys.
pub fn hex16(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses the [`hex16`] representation back into a hash.
pub fn parse_hex16(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_framing_prevents_shift_collisions() {
        let mut a = Fnv64::new();
        a.update_field("ab").update_field("c");
        let mut b = Fnv64::new();
        b.update_field("a").update_field("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_roundtrip() {
        for h in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex16(&hex16(h)), Some(h));
        }
        assert_eq!(parse_hex16("xyz"), None);
        assert_eq!(parse_hex16("0"), None);
    }
}
