//! The CHiRP replacement policy (paper §IV, Algorithm 5).
//!
//! Per-entry metadata: a 16-bit signature, a dead bit, a first-hit flag and
//! the 3-bit LRU position the fallback needs (paper §IV-C). Operation:
//!
//! * **miss** — the victim is the first predicted-dead entry, else the LRU
//!   entry; *only* an LRU-fallback eviction trains the table (increment
//!   under the victim's stored signature: it just proved dead, §IV-D(b));
//!   the incoming entry reads the table under its fresh signature to set
//!   its dead bit (§IV-D(c)).
//! * **hit** — only the *first* hit trains (decrement under the stored
//!   signature: it proved live), and only when the accessed set differs
//!   from the last-accessed set (*selective hit update*, §III/§VI-B);
//!   every hit refreshes the stored signature and LRU position.
//! * every L2 access shifts `pc[3:2]` into the path history; every retired
//!   conditional (resp. indirect) branch shifts `pc[11:4]` into its
//!   history register.

use crate::config::ChirpConfig;
use crate::signature::{table_index, SignatureBuilder};
use crate::table::PredictionTable;
use chirp_mem::PackedLru;
use chirp_tlb::{PolicyStorage, ReplayHints, TlbAccess, TlbGeometry, TlbReplacementPolicy};
use chirp_trace::BranchClass;

#[derive(Debug, Clone, Copy, Default)]
struct EntryMeta {
    signature: u16,
    dead: bool,
    first_hit_pending: bool,
}

/// Extra CHiRP-specific counters surfaced for the evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChirpCounters {
    /// Evictions that picked a predicted-dead entry.
    pub dead_evictions: u64,
    /// Evictions that fell back to LRU (each trains the table).
    pub lru_evictions: u64,
    /// Hits whose table update was suppressed by selective hit update.
    pub suppressed_hit_updates: u64,
}

/// Control-flow History Reuse Prediction.
pub struct Chirp {
    config: ChirpConfig,
    geometry: TlbGeometry,
    signatures: SignatureBuilder,
    table: PredictionTable,
    meta: Vec<EntryMeta>,
    lru: PackedLru,
    last_set: Option<usize>,
    counters: ChirpCounters,
    /// Signature handed in by a factored front end for the next access
    /// ([`TlbReplacementPolicy::supply_signature`]); `None` outside
    /// replay, in which case `on_hit`/`on_fill` compute it from the
    /// policy's own history registers as always.
    pending_sig: Option<u16>,
}

impl std::fmt::Debug for Chirp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chirp")
            .field("config", &self.config)
            .field("counters", &self.counters)
            .finish()
    }
}

impl Chirp {
    /// Builds the policy for `geometry` with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn new(geometry: TlbGeometry, config: ChirpConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid ChirpConfig: {msg}");
        }
        Chirp {
            signatures: SignatureBuilder::new(&config),
            table: PredictionTable::new(config.table_entries, config.counter_bits),
            meta: vec![EntryMeta::default(); geometry.entries],
            lru: PackedLru::new(geometry.sets(), geometry.ways),
            last_set: None,
            counters: ChirpCounters::default(),
            pending_sig: None,
            config,
            geometry,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    /// CHiRP-specific counters.
    pub fn counters(&self) -> ChirpCounters {
        self.counters
    }

    /// The active configuration.
    pub fn config(&self) -> &ChirpConfig {
        &self.config
    }

    /// The prediction table (diagnostics).
    pub fn table(&self) -> &PredictionTable {
        &self.table
    }

    #[inline]
    fn predict_dead(&mut self, sig: u16) -> bool {
        let idx = table_index(sig, self.config.table_entries);
        self.table.read(idx) > self.config.dead_threshold
    }
}

impl TlbReplacementPolicy for Chirp {
    fn name(&self) -> &str {
        "chirp"
    }

    #[inline]
    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        // Algorithm 5, VICTIMENTRY: first dead entry, else LRU.
        for way in 0..self.geometry.ways {
            if self.meta[self.idx(acc.set, way)].dead {
                self.counters.dead_evictions += 1;
                return way;
            }
        }
        self.counters.lru_evictions += 1;
        self.lru.lru(acc.set)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let m = self.meta[self.idx(set, way)];
        // Only LRU-fallback victims train the table: the predictor failed
        // to flag them, so their signature just proved dead (lines 10–12).
        if !m.dead {
            let idx = table_index(m.signature, self.config.table_entries);
            self.table.increment(idx);
        }
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let external = self.pending_sig.is_some();
        let new_sig = match self.pending_sig.take() {
            Some(sig) => sig,
            None => self.signatures.signature(acc.pc),
        };
        let i = self.idx(acc.set, way);
        let qualifies = !self.config.selective_hit_update || self.last_set != Some(acc.set);
        let wants_update = self.meta[i].first_hit_pending || !self.config.first_hit_only;
        if wants_update {
            if qualifies {
                // The entry proved live under its stored signature: train
                // down (lines 15–17), then refresh the dead bit under the
                // new signature (line 18).
                let old_idx = table_index(self.meta[i].signature, self.config.table_entries);
                self.table.decrement(old_idx);
                let dead = self.predict_dead(new_sig);
                let m = &mut self.meta[i];
                m.dead = dead;
                m.first_hit_pending = false;
            } else {
                self.counters.suppressed_hit_updates += 1;
            }
        }
        // Every hit refreshes the stored signature and recency (line 20-21).
        self.meta[i].signature = new_sig;
        self.lru.touch(acc.set, way);
        self.last_set = Some(acc.set);
        if !external {
            self.signatures.record_access(acc.pc);
        }
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let external = self.pending_sig.is_some();
        let sig = match self.pending_sig.take() {
            Some(sig) => sig,
            None => self.signatures.signature(acc.pc),
        };
        let dead = self.predict_dead(sig);
        let i = self.idx(acc.set, way);
        self.meta[i] = EntryMeta { signature: sig, dead, first_hit_pending: true };
        self.lru.touch(acc.set, way);
        self.last_set = Some(acc.set);
        if !external {
            self.signatures.record_access(acc.pc);
        }
    }

    fn on_branch(&mut self, pc: u64, class: BranchClass, _taken: bool) {
        // The signature relies on bits from the branch PC, not outcomes or
        // targets (paper §IV-B note).
        self.signatures.record_branch(pc, class);
    }

    fn on_mispredict(&mut self, pc: u64) {
        // The paper's CHiRP trains at commit with right-path branches only
        // (§VI-E), so the default configuration ignores mispredictions.
        // The naive-speculative ablation folds pseudo wrong-path branches
        // (derived deterministically from the mispredicting PC) into the
        // histories, modelling a design without recovery.
        for i in 0..self.config.wrong_path_pollution {
            let bogus = pc ^ (u64::from(i) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.signatures.record_branch(bogus, BranchClass::Conditional);
            self.signatures.record_access(bogus);
        }
    }

    fn prediction_table_accesses(&self) -> u64 {
        self.table.accesses()
    }

    fn dead_eviction_count(&self) -> u64 {
        self.counters.dead_evictions
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        Some(self.meta[self.idx(set, way)].dead)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    /// When the stream's signature configuration matches this policy's
    /// exactly ([`ChirpConfig::signature_code`]), the precomputed
    /// signatures *are* what this policy's own registers would produce,
    /// so replay can skip every control event: branches and wrong-path
    /// pollution only matter through the signatures, which the front end
    /// already folded in. Any mismatch falls back to running the local
    /// registers, which need the full control stream.
    fn replay_hints(&self, sig_code: u64) -> ReplayHints {
        if sig_code == self.config.signature_code() {
            ReplayHints {
                needs_branches: false,
                needs_mispredicts: false,
                accepts_signatures: true,
            }
        } else {
            ReplayHints::conservative()
        }
    }

    fn supply_signature(&mut self, sig: u16) {
        self.pending_sig = Some(sig);
    }

    fn storage(&self) -> PolicyStorage {
        let entries = self.geometry.entries as u64;
        let lru_bits = (self.geometry.ways as f64).log2().ceil() as u64;
        PolicyStorage {
            // Table I: 1 prediction bit + 16 signature bits (+ LRU bits the
            // baseline also needs) per entry.
            metadata_bits: (1 + 16 + lru_bits) * entries,
            register_bits: self.signatures.storage_bits(),
            table_bits: self.config.table_entries as u64 * u64::from(self.config.counter_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_tlb::TranslationKind;

    fn geom() -> TlbGeometry {
        TlbGeometry { entries: 16, ways: 4 }
    }

    fn acc(pc: u64, set: usize) -> TlbAccess {
        TlbAccess { pc, vpn: set as u64, kind: TranslationKind::Data, set }
    }

    fn chirp() -> Chirp {
        Chirp::new(geom(), ChirpConfig::default())
    }

    #[test]
    fn lru_fallback_eviction_trains_up() {
        let mut p = chirp();
        p.on_fill(&acc(0x400, 0), 0);
        let sig = p.meta[0].signature;
        let idx = table_index(sig, p.config.table_entries);
        let before = p.table.peek(idx);
        assert!(!p.meta[0].dead);
        p.on_evict(0, 0); // not dead -> LRU fallback -> increment
        assert_eq!(p.table.peek(idx), before + 1);
    }

    #[test]
    fn dead_eviction_does_not_train() {
        let mut p = chirp();
        p.on_fill(&acc(0x400, 0), 0);
        p.meta[0].dead = true;
        let idx = table_index(p.meta[0].signature, p.config.table_entries);
        let before = p.table.peek(idx);
        p.on_evict(0, 0);
        assert_eq!(p.table.peek(idx), before, "dead-predicted victims do not update");
    }

    #[test]
    fn victim_prefers_dead_then_lru() {
        let mut p = chirp();
        for way in 0..4 {
            p.on_fill(&acc(0x400 + way as u64 * 4, 0), way);
        }
        assert_eq!(p.choose_victim(&acc(0, 0)), p.lru.lru(0));
        let i = p.idx(0, 2);
        p.meta[i].dead = true;
        assert_eq!(p.choose_victim(&acc(0, 0)), 2);
        assert_eq!(p.counters().dead_evictions, 1);
        assert_eq!(p.counters().lru_evictions, 1);
    }

    #[test]
    fn first_hit_trains_down_once() {
        let mut p = chirp();
        p.on_fill(&acc(0x400, 0), 0);
        // Saturate the signature's counter up first so the decrement shows.
        let sig0 = p.meta[0].signature;
        let idx0 = table_index(sig0, p.config.table_entries);
        p.table.increment(idx0);
        p.table.increment(idx0);
        // Access a *different* set in between (selective hit update).
        p.on_fill(&acc(0x500, 1), 0);
        let before = p.table.peek(idx0);
        p.on_hit(&acc(0x400, 0), 0);
        assert_eq!(p.table.peek(idx0), before - 1, "first qualifying hit decrements");
        // A second hit (after another set) must not train again.
        p.on_fill(&acc(0x500, 1), 1);
        let t_before = p.table.accesses();
        p.on_hit(&acc(0x400, 0), 0);
        assert_eq!(p.table.accesses(), t_before, "non-first hits skip the table");
    }

    #[test]
    fn selective_hit_update_suppresses_same_set_hits() {
        let mut p = chirp();
        p.on_fill(&acc(0x400, 3), 0);
        // Consecutive hit to the same set: table untouched, update pending.
        let t_before = p.table.accesses();
        p.on_hit(&acc(0x404, 3), 0);
        assert_eq!(p.table.accesses(), t_before);
        assert_eq!(p.counters().suppressed_hit_updates, 1);
        assert!(p.meta[p.idx(3, 0)].first_hit_pending, "update stays pending");
        // After touching another set, the next hit trains.
        p.on_fill(&acc(0x500, 2), 0);
        p.on_hit(&acc(0x404, 3), 0);
        assert!(!p.meta[p.idx(3, 0)].first_hit_pending);
    }

    #[test]
    fn saturated_signature_predicts_dead_on_fill() {
        let mut p = chirp();
        // Evict the same context repeatedly until its counter saturates.
        for _ in 0..4 {
            p.on_fill(&acc(0x400, 0), 0);
            // Reset path history effect by using a fresh policy state is
            // overkill; the signature changes as path history shifts, so
            // pin histories by not recording extra accesses here.
            p.on_evict(0, 0);
        }
        // The path history advanced between fills, so signatures differ;
        // drive a stable-signature scenario instead: same PC, empty branch
        // history, path history cycling through the same value.
        let mut q = chirp();
        let sig = q.signatures.signature(0x99000);
        let idx = table_index(sig, q.config.table_entries);
        q.table.increment(idx);
        q.table.increment(idx);
        q.table.increment(idx);
        // counter = 3 > threshold 2 -> dead on fill.
        // Force the same signature by not evolving history between the
        // signature probe and the fill: record_access happens inside
        // on_fill *after* the signature is computed.
        q.on_fill(&acc(0x99000, 0), 0);
        assert!(q.meta[0].dead);
        let _ = p;
    }

    #[test]
    fn storage_matches_table_i_shape() {
        let p = Chirp::new(TlbGeometry::default(), ChirpConfig::default());
        let s = p.storage();
        // 1 pred bit + 16 sig bits + 3 LRU bits per entry, 1024 entries.
        assert_eq!(s.metadata_bits, 20 * 1024);
        // Three 64-bit history registers.
        assert_eq!(s.register_bits, 192);
        // 4096 x 2-bit counters = 1 KB.
        assert_eq!(s.table_bits, 8192);
    }

    #[test]
    fn branch_classes_route_to_the_right_register() {
        let fresh = chirp();
        let mut a = chirp();
        a.on_branch(0xAB0, BranchClass::Conditional, true);
        assert_ne!(a.signatures.signature(0x1234), fresh.signatures.signature(0x1234));
        let mut b = chirp();
        b.on_branch(0xAB0, BranchClass::UnconditionalIndirect, true);
        assert_ne!(b.signatures.signature(0x1234), fresh.signatures.signature(0x1234));
        // Two different conditional-branch *sequences* must diverge even
        // when they end at the same branch.
        let mut c = chirp();
        c.on_branch(0xCD0, BranchClass::Conditional, true);
        c.on_branch(0xAB0, BranchClass::Conditional, true);
        assert_ne!(a.signatures.signature(0x1234), c.signatures.signature(0x1234));
    }
}
