//! Storage-overhead report generator (paper Table I).
//!
//! Reproduces the Table I breakdown for a 1024-entry 8-way L2 TLB: per-entry
//! prediction and signature bits, the three history registers, and the
//! counter table at the configured budget. The paper's own column totals
//! ("2.65 KB" / "8.14 KB") do not exactly equal the sum of the listed
//! components; we report the honest sums and note the difference in
//! EXPERIMENTS.md.

use crate::config::ChirpConfig;
use chirp_tlb::TlbGeometry;
use serde::{Deserialize, Serialize};

/// One row of the storage table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageRow {
    /// Component name (matches Table I rows).
    pub component: String,
    /// Size description, e.g. `1 bit x 1024`.
    pub detail: String,
    /// Size in bits.
    pub bits: u64,
}

/// The full Table I-style report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Component rows.
    pub rows: Vec<StorageRow>,
    /// Sum of all rows in bits.
    pub total_bits: u64,
}

impl StorageReport {
    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits.div_ceil(8)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<28} {:<24} {:>10}\n", "Component", "Size", "Bytes"));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<28} {:<24} {:>10}\n",
                row.component,
                row.detail,
                row.bits.div_ceil(8)
            ));
        }
        out.push_str(&format!(
            "{:<28} {:<24} {:>10}  ({:.2} KB)\n",
            "Total",
            "",
            self.total_bytes(),
            self.total_bytes() as f64 / 1024.0
        ));
        out
    }
}

/// Builds the Table I storage report for `config` on `geometry`.
pub fn storage_report(geometry: TlbGeometry, config: &ChirpConfig) -> StorageReport {
    let entries = geometry.entries as u64;
    let reg_bits = 64u64; // paper-default registers
    let table_bits = config.table_entries as u64 * u64::from(config.counter_bits);
    let rows = vec![
        StorageRow {
            component: "Prediction bits".into(),
            detail: format!("1 bit x {entries}"),
            bits: entries,
        },
        StorageRow {
            component: "Signature bits".into(),
            detail: format!("16 bits x {entries}"),
            bits: 16 * entries,
        },
        StorageRow {
            component: "Path history register".into(),
            detail: "64 bit x 1".into(),
            bits: reg_bits,
        },
        StorageRow {
            component: "Cond. history register".into(),
            detail: "64 bit x 1".into(),
            bits: reg_bits,
        },
        StorageRow {
            component: "Uncond. history register".into(),
            detail: "64 bit x 1".into(),
            bits: reg_bits,
        },
        StorageRow {
            component: "Counters".into(),
            detail: format!("{} x {}-bit", config.table_entries, config.counter_bits),
            bits: table_bits,
        },
    ];
    let total_bits = rows.iter().map(|r| r.bits).sum();
    StorageReport { rows, total_bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_main_budget() {
        // 1 KB counter table on the 1024-entry TLB.
        let report = storage_report(TlbGeometry::default(), &ChirpConfig::default());
        // 128 B pred + 2 KB sig + 24 B regs + 1 KB counters = 3224 B.
        assert_eq!(report.total_bytes(), 128 + 2048 + 24 + 1024);
    }

    #[test]
    fn table_i_min_and_max_columns() {
        // Table I's two columns use 128 B and 8 KB counter tables.
        let small = ChirpConfig { table_entries: 512, ..Default::default() }; // 128 B
        let report = storage_report(TlbGeometry::default(), &small);
        assert_eq!(report.total_bytes(), 128 + 2048 + 24 + 128);

        let large = ChirpConfig { table_entries: 32768, ..Default::default() }; // 8 KB
        let report = storage_report(TlbGeometry::default(), &large);
        assert_eq!(report.total_bytes(), 128 + 2048 + 24 + 8192);
    }

    #[test]
    fn render_contains_all_rows() {
        let report = storage_report(TlbGeometry::default(), &ChirpConfig::default());
        let text = report.render();
        for needle in ["Prediction bits", "Signature bits", "Counters", "Total"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
