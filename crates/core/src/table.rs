//! The CHiRP prediction table: one array of saturating counters (§IV-C).
//!
//! CHiRP deliberately uses a *single* table — unlike GHRP's three — because
//! the shift-and-scale signature converges with 3× fewer entries (§III-B,
//! §VI-H). Every read and write is counted for the Figure 11 access-rate
//! analysis.

use serde::{Deserialize, Serialize};

/// A table of saturating counters with access accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionTable {
    counters: Vec<u8>,
    max: u8,
    accesses: u64,
}

impl PredictionTable {
    /// Creates `entries` counters of `counter_bits` bits each, initialised
    /// to zero (predicting live).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `counter_bits` is not
    /// in `1..=8`.
    pub fn new(entries: usize, counter_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!((1..=8).contains(&counter_bits), "counter_bits must be in 1..=8");
        PredictionTable {
            counters: vec![0; entries],
            max: ((1u16 << counter_bits) - 1) as u8,
            accesses: 0,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if the table has no counters (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Reads the counter at `index` (counted as a table access).
    pub fn read(&mut self, index: usize) -> u8 {
        self.accesses += 1;
        self.counters[index]
    }

    /// Saturating increment (entry proved dead; Algorithm 5 line 42).
    pub fn increment(&mut self, index: usize) {
        self.accesses += 1;
        let c = &mut self.counters[index];
        if *c < self.max {
            *c += 1;
        }
    }

    /// Saturating decrement (entry proved live; Algorithm 5 line 44).
    pub fn decrement(&mut self, index: usize) {
        self.accesses += 1;
        let c = &mut self.counters[index];
        *c = c.saturating_sub(1);
    }

    /// Peeks without counting an access (tests/diagnostics only).
    pub fn peek(&self, index: usize) -> u8 {
        self.counters[index]
    }

    /// Total reads + writes so far (Figure 11 numerator).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Maximum counter value.
    pub fn counter_max(&self) -> u8 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut t = PredictionTable::new(4, 2);
        for _ in 0..10 {
            t.increment(0);
        }
        assert_eq!(t.peek(0), 3);
        for _ in 0..10 {
            t.decrement(0);
        }
        assert_eq!(t.peek(0), 0);
    }

    #[test]
    fn accesses_counted() {
        let mut t = PredictionTable::new(4, 2);
        t.read(0);
        t.increment(1);
        t.decrement(2);
        t.peek(3); // not counted
        assert_eq!(t.accesses(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = PredictionTable::new(100, 2);
    }

    proptest! {
        #[test]
        fn counters_stay_in_range(ops in proptest::collection::vec((0usize..16, 0u8..2), 0..200)) {
            let mut t = PredictionTable::new(16, 2);
            for (idx, op) in ops {
                if op == 0 { t.increment(idx) } else { t.decrement(idx) }
            }
            for i in 0..16 {
                prop_assert!(t.peek(i) <= t.counter_max());
            }
        }
    }
}
