//! CHiRP configuration, including the knobs the paper's ablations exercise.

use serde::{Deserialize, Serialize};

/// Configuration of the CHiRP predictor.
///
/// Defaults reproduce the paper's main configuration: a 4096-counter
/// (1 KB) prediction table of 2-bit counters, 16-access path history with
/// two injected zeros per event, and 8-branch conditional/indirect
/// histories of PC bits \[11:4\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChirpConfig {
    /// Entries in the prediction table (power of two). 4096 × 2-bit = 1 KB,
    /// the paper's main budget (§VI-F).
    pub table_entries: usize,
    /// Width of each saturating counter in bits (2 in the paper).
    pub counter_bits: u32,
    /// Counters strictly greater than this predict dead (paper Fig. 5,
    /// PREDICT). With 2-bit counters the default 2 means only saturated
    /// counters predict dead.
    pub dead_threshold: u8,
    /// Number of path-history events retained (16 in the paper: 64 bits at
    /// 4 bits per event). Values up to 32 are supported (Figure 2 sweep).
    pub path_length: u32,
    /// Include the two injected zero bits per path event (§III-B
    /// shift-and-scale). Disabling packs PC bits densely (ablation).
    pub inject_zeros: bool,
    /// Include the global path history in the signature.
    pub use_path: bool,
    /// Include the conditional-branch history in the signature.
    pub use_cond: bool,
    /// Include the unconditional-indirect-branch history in the signature.
    pub use_uncond: bool,
    /// Include the shifted PC of the access in the signature.
    pub use_pc: bool,
    /// Number of branch-history events retained (8 in the paper).
    pub branch_length: u32,
    /// Train on the first hit only (paper §IV-E). Disabling trains on every
    /// hit, GHRP-style (ablation).
    pub first_hit_only: bool,
    /// Selective hit update: train on a hit only when the accessed set
    /// differs from the previously accessed set (§III, §VI-B).
    pub selective_hit_update: bool,
    /// Model a *naive* speculative implementation that folds wrong-path
    /// fetch into its histories instead of keeping the committed history
    /// the paper specifies (§VI-E). Number of polluting events injected
    /// per misprediction; 0 (the default) is the paper's commit-time
    /// design. Used by the wrong-path ablation.
    pub wrong_path_pollution: u32,
}

impl Default for ChirpConfig {
    fn default() -> Self {
        ChirpConfig {
            table_entries: 4096,
            counter_bits: 2,
            dead_threshold: 2,
            path_length: 16,
            inject_zeros: true,
            use_path: true,
            use_cond: true,
            use_uncond: true,
            use_pc: true,
            branch_length: 8,
            first_hit_only: true,
            selective_hit_update: true,
            wrong_path_pollution: 0,
        }
    }
}

impl ChirpConfig {
    /// Validates invariants; call before constructing a policy.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.table_entries.is_power_of_two() {
            return Err(format!(
                "table_entries must be a power of two, got {}",
                self.table_entries
            ));
        }
        if self.counter_bits == 0 || self.counter_bits > 8 {
            return Err(format!("counter_bits must be in 1..=8, got {}", self.counter_bits));
        }
        let max = (1u16 << self.counter_bits) - 1;
        if u16::from(self.dead_threshold) >= max {
            return Err(format!(
                "dead_threshold {} leaves no dead state for {}-bit counters",
                self.dead_threshold, self.counter_bits
            ));
        }
        let path_shift = if self.inject_zeros { 4 } else { 2 };
        if self.path_length == 0 || self.path_length * path_shift > 128 {
            return Err(format!("path_length {} exceeds the 128-bit register", self.path_length));
        }
        if self.branch_length == 0 || self.branch_length * 8 > 128 {
            return Err(format!(
                "branch_length {} exceeds the 128-bit register",
                self.branch_length
            ));
        }
        Ok(())
    }

    /// Prediction-table size in bytes.
    pub fn table_bytes(&self) -> u64 {
        (self.table_entries as u64 * u64::from(self.counter_bits)).div_ceil(8)
    }

    /// Identity code of every field that shapes signature *values*: two
    /// configurations produce identical signature streams for identical
    /// access/branch/mispredict sequences iff their codes match. Table
    /// geometry, counter width and thresholds are deliberately excluded —
    /// they consume signatures but do not alter them. A factored front
    /// end stamps its event stream with this code; a `Chirp` back-end
    /// only accepts precomputed signatures when the stream's code equals
    /// its own (`TlbReplacementPolicy::replay_hints`).
    pub fn signature_code(&self) -> u64 {
        let mut code = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for field in [
            u64::from(self.path_length),
            u64::from(self.inject_zeros),
            u64::from(self.use_path),
            u64::from(self.use_cond),
            u64::from(self.use_uncond),
            u64::from(self.use_pc),
            u64::from(self.branch_length),
            u64::from(self.wrong_path_pollution),
        ] {
            code ^= field;
            code = code.wrapping_mul(0x0000_0100_0000_01b3);
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_configuration() {
        let c = ChirpConfig::default();
        assert_eq!(c.table_entries, 4096);
        assert_eq!(c.counter_bits, 2);
        assert_eq!(c.table_bytes(), 1024, "1 KB main budget");
        assert_eq!(c.path_length, 16);
        assert_eq!(c.branch_length, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_non_power_of_two_table() {
        let c = ChirpConfig { table_entries: 1000, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_threshold_without_dead_state() {
        let c = ChirpConfig { dead_threshold: 3, ..Default::default() };
        assert!(c.validate().is_err(), "2-bit counters cannot exceed 3");
    }

    #[test]
    fn rejects_oversized_histories() {
        assert!(ChirpConfig { path_length: 33, ..Default::default() }.validate().is_err());
        assert!(ChirpConfig { path_length: 64, inject_zeros: false, ..Default::default() }
            .validate()
            .is_ok());
        assert!(ChirpConfig { branch_length: 17, ..Default::default() }.validate().is_err());
    }
}
