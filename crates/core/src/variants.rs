//! Named CHiRP configuration variants for the paper's ablations.
//!
//! Figure 6 builds CHiRP up feature by feature; Figure 2 sweeps the path
//! history length with and without branch histories; Figure 9 sweeps the
//! prediction-table size. Each variant here is a `ChirpConfig` with a
//! stable display name so experiment reports stay readable.

use crate::config::ChirpConfig;
use serde::{Deserialize, Serialize};

/// A named configuration for ablation studies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChirpVariant {
    /// Stable display name (used as a report row label).
    pub name: String,
    /// The configuration.
    pub config: ChirpConfig,
}

impl ChirpVariant {
    /// The full paper configuration.
    pub fn full() -> Self {
        ChirpVariant { name: "chirp".into(), config: ChirpConfig::default() }
    }

    /// Path history + PC only (no branch histories) — the starting rung of
    /// the Figure 6 ladder.
    pub fn path_only() -> Self {
        ChirpVariant {
            name: "chirp-path-only".into(),
            config: ChirpConfig { use_cond: false, use_uncond: false, ..Default::default() },
        }
    }

    /// Path + conditional-branch history, but without the injected zeros
    /// (shift-and-scale disabled) — isolates the §III-B transform.
    pub fn cond_no_zeros() -> Self {
        ChirpVariant {
            name: "chirp+cond-nozeros".into(),
            config: ChirpConfig { use_uncond: false, inject_zeros: false, ..Default::default() },
        }
    }

    /// Path + conditional-branch history with injected zeros.
    pub fn cond_with_zeros() -> Self {
        ChirpVariant {
            name: "chirp+cond+zeros".into(),
            config: ChirpConfig { use_uncond: false, ..Default::default() },
        }
    }

    /// Full signature but training on every hit (no first-hit filtering).
    pub fn every_hit_update() -> Self {
        ChirpVariant {
            name: "chirp-everyhit".into(),
            config: ChirpConfig { first_hit_only: false, ..Default::default() },
        }
    }

    /// Full signature but without selective hit update.
    pub fn no_selective_update() -> Self {
        ChirpVariant {
            name: "chirp-noselective".into(),
            config: ChirpConfig { selective_hit_update: false, ..Default::default() },
        }
    }

    /// A variant with a specific prediction-table byte budget (Figure 9).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not hold a power-of-two number of 2-bit
    /// counters.
    pub fn with_table_bytes(bytes: usize) -> Self {
        let entries = bytes * 8 / 2;
        assert!(entries.is_power_of_two(), "{bytes} B is not a power-of-two counter count");
        ChirpVariant {
            name: format!("chirp-{bytes}B"),
            config: ChirpConfig { table_entries: entries, ..Default::default() },
        }
    }

    /// PC-history-length sweep point (Figure 2). `with_branches` toggles the
    /// branch histories; lengths without branches may exceed the paper's 16.
    pub fn with_path_length(length: u32, with_branches: bool) -> Self {
        ChirpVariant {
            name: format!("chirp-h{length}{}", if with_branches { "+br" } else { "-pconly" }),
            config: ChirpConfig {
                path_length: length,
                use_cond: with_branches,
                use_uncond: with_branches,
                // Long PC-only histories need dense packing to fit.
                inject_zeros: with_branches,
                ..Default::default()
            },
        }
    }

    /// The Figure 6 ablation ladder, in presentation order.
    pub fn ablation_ladder() -> Vec<ChirpVariant> {
        vec![
            Self::path_only(),
            Self::cond_no_zeros(),
            Self::cond_with_zeros(),
            Self::every_hit_update(),
            Self::no_selective_update(),
            Self::full(),
        ]
    }

    /// The Figure 9 table-size sweep (128 B – 8 KB, as in the paper).
    pub fn table_size_sweep() -> Vec<ChirpVariant> {
        [128usize, 256, 512, 1024, 2048, 4096, 8192]
            .into_iter()
            .map(Self::with_table_bytes)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_validate() {
        for v in ChirpVariant::ablation_ladder() {
            assert!(v.config.validate().is_ok(), "{} must validate", v.name);
        }
        for v in ChirpVariant::table_size_sweep() {
            assert!(v.config.validate().is_ok(), "{} must validate", v.name);
        }
        for len in [4u32, 8, 15, 16, 24, 32] {
            assert!(ChirpVariant::with_path_length(len, true).config.validate().is_ok());
            assert!(ChirpVariant::with_path_length(len, false).config.validate().is_ok());
        }
    }

    #[test]
    fn table_bytes_sized_correctly() {
        let v = ChirpVariant::with_table_bytes(1024);
        assert_eq!(v.config.table_entries, 4096);
        assert_eq!(v.config.table_bytes(), 1024);
    }

    #[test]
    fn names_are_unique_within_sweeps() {
        let names: std::collections::HashSet<String> = ChirpVariant::ablation_ladder()
            .into_iter()
            .chain(ChirpVariant::table_size_sweep())
            .map(|v| v.name)
            .collect();
        assert_eq!(names.len(), 6 + 7);
    }
}
