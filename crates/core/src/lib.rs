//! Control-flow History Reuse Prediction (CHiRP) — the paper's primary
//! contribution (MICRO 2020, §IV).
//!
//! CHiRP is a predictive replacement policy for the unified L2 TLB. Every
//! TLB entry is tagged with a 16-bit *signature* combining four features
//! that correlate with TLB reuse:
//!
//! 1. the **global path history** of PCs that accessed the L2 TLB — two
//!    low-order PC bits (bits 3:2) per access, each followed by two
//!    injected zero bits (the shift-and-scale transform of §III-B);
//! 2. the **conditional-branch history** — PC bits \[11:4\] of the last 8
//!    conditional branches;
//! 3. the **unconditional-indirect-branch history** — PC bits \[11:4\] of
//!    the last 8 indirect branches;
//! 4. the current access's **PC shifted right by two**.
//!
//! A single table of 2-bit saturating counters, indexed by a hash of the
//! signature, predicts whether an entry is *dead*. Victim selection prefers
//! dead-predicted entries and falls back to LRU; the table is trained only
//! on LRU-fallback evictions (increment: the entry proved dead) and on the
//! first qualifying hit to an entry (decrement: it proved live), with hit
//! updates further gated by *selective hit update* — only hits to a set
//! different from the last-accessed one train, which dissipates the
//! counter-saturation noise of coarse-grained TLB accesses (Observation 2).
//!
//! ```
//! use chirp_core::{Chirp, ChirpConfig};
//! use chirp_tlb::{L2Tlb, TlbGeometry, TlbReplacementPolicy, TranslationKind};
//!
//! let geom = TlbGeometry::default();
//! let policy = Chirp::new(geom, ChirpConfig::default());
//! let mut tlb = L2Tlb::new(geom, Box::new(policy));
//! tlb.access(0x400000, 0x9000, TranslationKind::Data);
//! assert_eq!(tlb.policy().name(), "chirp");
//! ```

pub mod config;
pub mod history;
pub mod policy;
pub mod signature;
pub mod storage;
pub mod table;
pub mod variants;

pub use config::ChirpConfig;
pub use history::HistoryRegister;
pub use policy::Chirp;
pub use signature::SignatureBuilder;
pub use storage::{storage_report, StorageReport};
pub use table::PredictionTable;
pub use variants::ChirpVariant;
