//! Signature composition and hashing (paper Algorithm 5, lines 5–6).
//!
//! The signature XORs the shifted PC of the access with the folded path,
//! conditional-branch and indirect-branch histories, then hashes the 64-bit
//! result down to the 16 bits stored per TLB entry. The prediction-table
//! index is the low bits of that stored signature.

use crate::config::ChirpConfig;
use crate::history::HistoryRegister;
use chirp_trace::BranchClass;
use serde::{Deserialize, Serialize};

/// Maintains the three history registers and composes signatures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureBuilder {
    path: HistoryRegister,
    cond: HistoryRegister,
    uncond: HistoryRegister,
    use_path: bool,
    use_cond: bool,
    use_uncond: bool,
    use_pc: bool,
}

impl SignatureBuilder {
    /// Builds the registers per `config`.
    pub fn new(config: &ChirpConfig) -> Self {
        SignatureBuilder {
            path: HistoryRegister::path(config.path_length, config.inject_zeros),
            cond: HistoryRegister::branch(config.branch_length),
            uncond: HistoryRegister::branch(config.branch_length),
            use_path: config.use_path,
            use_cond: config.use_cond,
            use_uncond: config.use_uncond,
            use_pc: config.use_pc,
        }
    }

    /// Composes the 16-bit signature for an access at `pc`
    /// (`sign ← pc ≫ 2 ⊕ pathHist ⊕ condBrHist ⊕ unCondBrHist`).
    pub fn signature(&self, pc: u64) -> u16 {
        hash16(self.compose(pc))
    }

    /// The 64-bit pre-hash composition for an access at `pc` — everything
    /// of [`signature`](Self::signature) except the final [`hash16`].
    /// Front ends that batch-hash signatures across a decode burst
    /// collect these (the history folds are sequential, each depending on
    /// the previous access) and run the multiply/shift/xor finalisation
    /// over the whole burst at once.
    #[inline]
    pub fn compose(&self, pc: u64) -> u64 {
        let mut sig = 0u64;
        if self.use_pc {
            sig ^= pc >> 2;
        }
        if self.use_path {
            sig ^= self.path.folded();
        }
        if self.use_cond {
            sig ^= self.cond.folded();
        }
        if self.use_uncond {
            sig ^= self.uncond.folded();
        }
        sig
    }

    /// Records an L2 TLB access in the path history (Algorithm 5 line 22).
    #[inline]
    pub fn record_access(&mut self, pc: u64) {
        self.path.push(pc);
    }

    /// Records a retired branch in the appropriate branch history
    /// (Algorithm 5 lines 23–26). Unconditional *direct* branches update
    /// neither history, per §IV-B.
    #[inline]
    pub fn record_branch(&mut self, pc: u64, class: BranchClass) {
        match class {
            BranchClass::Conditional => self.cond.push(pc),
            BranchClass::UnconditionalIndirect => self.uncond.push(pc),
            BranchClass::UnconditionalDirect => {}
        }
    }

    /// Combined register storage in bits (Table I: three 64-bit registers
    /// at the default lengths).
    pub fn storage_bits(&self) -> u64 {
        self.path.storage_bits() + self.cond.storage_bits() + self.uncond.storage_bits()
    }
}

/// Hashes a 64-bit composed signature to the 16 bits stored per entry
/// (paper Algorithm 5 line 6).
#[inline]
pub fn hash16(sig: u64) -> u16 {
    let h = sig.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 48) ^ (h >> 32) & 0xffff) as u16
}

/// Derives the prediction-table index from a stored 16-bit signature.
#[inline]
pub fn table_index(sig: u16, table_entries: usize) -> usize {
    debug_assert!(table_entries.is_power_of_two());
    usize::from(sig) & (table_entries - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn builder() -> SignatureBuilder {
        SignatureBuilder::new(&ChirpConfig::default())
    }

    #[test]
    fn same_pc_same_history_same_signature() {
        let a = builder();
        let b = builder();
        assert_eq!(a.signature(0x400000), b.signature(0x400000));
    }

    #[test]
    fn conditional_history_changes_signature() {
        let mut a = builder();
        let b = builder();
        a.record_branch(0xAB0, BranchClass::Conditional);
        assert_ne!(a.signature(0x400000), b.signature(0x400000));
    }

    #[test]
    fn direct_branches_do_not_change_signature() {
        let mut a = builder();
        let b = builder();
        a.record_branch(0xAB0, BranchClass::UnconditionalDirect);
        assert_eq!(a.signature(0x400000), b.signature(0x400000));
    }

    #[test]
    fn path_history_distinguishes_access_sequences() {
        let mut a = builder();
        let mut b = builder();
        a.record_access(0x1004);
        a.record_access(0x1008);
        b.record_access(0x1008);
        b.record_access(0x1004);
        assert_ne!(a.signature(0x2000), b.signature(0x2000), "order matters in path history");
    }

    #[test]
    fn disabled_features_are_ignored() {
        let config = ChirpConfig { use_cond: false, ..Default::default() };
        let mut a = SignatureBuilder::new(&config);
        let b = SignatureBuilder::new(&config);
        a.record_branch(0xAB0, BranchClass::Conditional);
        assert_eq!(a.signature(0x400000), b.signature(0x400000));
    }

    #[test]
    fn table_index_respects_size() {
        for sig in [0u16, 1, 0xffff, 0x1234] {
            assert!(table_index(sig, 4096) < 4096);
            assert_eq!(table_index(sig, 1 << 16), usize::from(sig));
        }
    }

    proptest! {
        #[test]
        fn hash16_spreads_over_low_bits(sigs in proptest::collection::hash_set(0u64..u64::MAX, 200)) {
            // 200 random signatures into 4096 slots: expect far more than
            // 100 distinct indices if the hash mixes at all.
            let idx: std::collections::HashSet<usize> =
                sigs.iter().map(|&s| table_index(hash16(s), 4096)).collect();
            prop_assert!(idx.len() > 150, "only {} distinct indices", idx.len());
        }
    }
}
