//! History registers with the paper's shift-and-scale transform.
//!
//! Each register is a shift register of fixed-width events. The paper's
//! path history shifts in two PC bits followed by two injected zeros per
//! access (`history = (history << 4) | pc[3:2]`, Algorithm 5 lines 27–29);
//! the branch histories shift in eight PC bits per branch (`history =
//! (history << 8) | pc[11:4]`, lines 30–32). Registers are 64 bits in the
//! paper; this implementation is 128 bits wide so history-length sweeps
//! (Figure 2) can exceed the paper's defaults, and folds to 64 bits when
//! composing the signature.

use serde::{Deserialize, Serialize};

/// A fixed-capacity shift register of PC-derived events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryRegister {
    bits: u128,
    /// Bits shifted per event (payload + injected zeros).
    event_bits: u32,
    /// Payload bits of the PC folded per event.
    payload_bits: u32,
    /// Lowest PC bit of the payload.
    payload_shift: u32,
    /// Events retained.
    capacity: u32,
}

impl HistoryRegister {
    /// The paper's path history: `pc[3:2]` plus two injected zeros per
    /// event, `length` events retained (16 in the paper).
    pub fn path(length: u32, inject_zeros: bool) -> Self {
        let event_bits = if inject_zeros { 4 } else { 2 };
        Self::new(event_bits, 2, 2, length)
    }

    /// The paper's branch history: `pc[11:4]` per event, `length` events
    /// retained (8 in the paper).
    pub fn branch(length: u32) -> Self {
        Self::new(8, 8, 4, length)
    }

    /// General constructor.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not fit the 128-bit register or the
    /// payload exceeds the event width.
    pub fn new(event_bits: u32, payload_bits: u32, payload_shift: u32, capacity: u32) -> Self {
        assert!(payload_bits <= event_bits, "payload cannot exceed event width");
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            event_bits * capacity <= 128,
            "history of {capacity} x {event_bits}-bit events exceeds 128 bits"
        );
        HistoryRegister { bits: 0, event_bits, payload_bits, payload_shift, capacity }
    }

    /// Shifts the event derived from `pc` into the register.
    #[inline]
    pub fn push(&mut self, pc: u64) {
        let payload = (pc >> self.payload_shift) & ((1u64 << self.payload_bits) - 1);
        self.bits = (self.bits << self.event_bits) | u128::from(payload);
        let total = self.event_bits * self.capacity;
        if total < 128 {
            self.bits &= (1u128 << total) - 1;
        }
    }

    /// Folds the register into 64 bits (identity when it fits — the exact
    /// paper semantics for the default lengths).
    #[inline]
    pub fn folded(&self) -> u64 {
        (self.bits as u64) ^ ((self.bits >> 64) as u64)
    }

    /// Raw register contents (tests, diagnostics).
    pub fn raw(&self) -> u128 {
        self.bits
    }

    /// Events retained.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Hardware cost of this register in bits (capped at the paper's 64-bit
    /// registers for default lengths).
    pub fn storage_bits(&self) -> u64 {
        u64::from(self.event_bits * self.capacity)
    }

    /// Clears the register.
    pub fn reset(&mut self) {
        self.bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn path_update_matches_algorithm_5() {
        // history = (history << 4) | pc[3:2]
        let mut h = HistoryRegister::path(16, true);
        h.push(0b1100); // pc bits [3:2] = 0b11
        assert_eq!(h.raw(), 0b11);
        h.push(0b0100); // pc bits [3:2] = 0b01
        assert_eq!(h.raw(), 0b11_0001);
        // Two injected zeros sit between events (bits 2-3 of each nibble).
        assert_eq!(h.raw() & 0b1100, 0);
    }

    #[test]
    fn branch_update_matches_algorithm_5() {
        // history = (history << 8) | pc[11:4]
        let mut h = HistoryRegister::branch(8);
        h.push(0xAB0); // bits [11:4] = 0xAB
        assert_eq!(h.raw(), 0xAB);
        h.push(0xCD0);
        assert_eq!(h.raw(), 0xABCD);
    }

    #[test]
    fn paper_defaults_record_16_accesses_and_8_branches() {
        let p = HistoryRegister::path(16, true);
        assert_eq!(p.storage_bits(), 64);
        let b = HistoryRegister::branch(8);
        assert_eq!(b.storage_bits(), 64);
    }

    #[test]
    fn capacity_evicts_oldest_events() {
        let mut h = HistoryRegister::path(2, true); // 8-bit register
        h.push(0b1100); // 11
        h.push(0b1000); // 10
        h.push(0b0100); // 01 -> the first event falls off
        assert_eq!(h.raw(), 0b0010_0001);
    }

    #[test]
    fn folded_is_identity_when_fits_in_64() {
        let mut h = HistoryRegister::path(16, true);
        for pc in [0x4u64, 0x8, 0xC, 0x40] {
            h.push(pc);
        }
        assert_eq!(u128::from(h.folded()), h.raw());
    }

    #[test]
    fn without_injected_zeros_events_pack_densely() {
        let mut h = HistoryRegister::path(4, false);
        h.push(0b1100);
        h.push(0b1100);
        assert_eq!(h.raw(), 0b1111);
    }

    #[test]
    #[should_panic(expected = "exceeds 128 bits")]
    fn oversized_history_rejected() {
        let _ = HistoryRegister::path(33, true);
    }

    proptest! {
        #[test]
        fn register_never_exceeds_capacity_bits(
            pcs in proptest::collection::vec(0u64..u64::MAX, 0..100),
            len in 1u32..16,
        ) {
            let mut h = HistoryRegister::path(len, true);
            for pc in pcs {
                h.push(pc);
            }
            let total = 4 * len;
            if total < 128 {
                prop_assert_eq!(h.raw() >> total, 0);
            }
        }

        #[test]
        fn identical_pc_sequences_give_identical_histories(
            pcs in proptest::collection::vec(0u64..u64::MAX, 0..50),
        ) {
            let mut a = HistoryRegister::branch(8);
            let mut b = HistoryRegister::branch(8);
            for pc in &pcs {
                a.push(*pc);
                b.push(*pc);
            }
            prop_assert_eq!(a, b);
        }
    }
}
