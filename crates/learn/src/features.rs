//! Feature extraction: PC bits as ±1 inputs for the ADALINE study.

/// Expands the low `bits` bits of `pc` into a ±1 feature vector
/// (`x[i] = +1` if bit `i` of the PC is set, else `-1`), matching the
/// paper's Figure 3 x-axis where each input node is one PC bit.
pub fn pc_bit_features(pc: u64, bits: usize) -> Vec<f64> {
    (0..bits).map(|i| if pc >> i & 1 == 1 { 1.0 } else { -1.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_bits_as_plus_minus_one() {
        let x = pc_bit_features(0b1010, 4);
        assert_eq!(x, vec![-1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn length_matches_request() {
        assert_eq!(pc_bit_features(u64::MAX, 32).len(), 32);
        assert!(pc_bit_features(u64::MAX, 32).iter().all(|&v| v == 1.0));
    }
}
