//! ADALINE: a single linear unit trained with the Widrow-Hoff (LMS) rule,
//! plus L1 regularisation to drive uninformative weights to zero (the
//! paper's §III-A methodology for scoring PC bits).

/// Adaptive linear element with L1 weight decay.
#[derive(Debug, Clone)]
pub struct Adaline {
    weights: Vec<f64>,
    bias: f64,
    learning_rate: f64,
    l1: f64,
}

impl Adaline {
    /// Creates a unit over `inputs` features with learning rate `mu` and L1
    /// penalty `l1`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0`, or if `mu`/`l1` are not finite and
    /// non-negative.
    pub fn new(inputs: usize, mu: f64, l1: f64) -> Self {
        assert!(inputs > 0, "ADALINE needs at least one input");
        assert!(mu.is_finite() && mu > 0.0, "learning rate must be positive");
        assert!(l1.is_finite() && l1 >= 0.0, "L1 penalty must be non-negative");
        Adaline { weights: vec![0.0; inputs], bias: 0.0, learning_rate: mu, l1 }
    }

    /// The linear output `w·x + θ`.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input dimension.
    pub fn output(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        self.weights.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.bias
    }

    /// Classifies `x` into `true`/`false` by the sign of the output.
    pub fn classify(&self, x: &[f64]) -> bool {
        self.output(x) >= 0.0
    }

    /// One LMS update towards `target` (use ±1 targets for classification):
    /// `w ← w + μ (d − y) x`, then an L1 shrink towards zero.
    pub fn train(&mut self, x: &[f64], target: f64) {
        let y = self.output(x);
        let err = target - y;
        for (w, xi) in self.weights.iter_mut().zip(x) {
            *w += self.learning_rate * err * xi;
            // L1: soft-threshold towards zero.
            if *w > self.l1 {
                *w -= self.l1;
            } else if *w < -self.l1 {
                *w += self.l1;
            } else {
                *w = 0.0;
            }
        }
        self.bias += self.learning_rate * err;
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias θ.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_linearly_separable_rule() {
        let mut a = Adaline::new(2, 0.05, 0.0);
        // Rule: class = sign(x0).
        let data =
            [([1.0, 1.0], 1.0), ([1.0, -1.0], 1.0), ([-1.0, 1.0], -1.0), ([-1.0, -1.0], -1.0)];
        for _ in 0..200 {
            for (x, d) in &data {
                a.train(x, *d);
            }
        }
        for (x, d) in &data {
            assert_eq!(a.classify(x), *d > 0.0);
        }
        assert!(a.weights()[0].abs() > a.weights()[1].abs());
    }

    #[test]
    fn l1_drives_irrelevant_weights_to_zero() {
        let mut a = Adaline::new(3, 0.05, 0.002);
        let mut x2 = 1.0;
        for i in 0..2000 {
            x2 = -x2; // feature 2 alternates, uncorrelated with the target
            let x0 = if i % 3 == 0 { 1.0 } else { -1.0 };
            let x = [x0, 1.0, x2];
            a.train(&x, x0);
        }
        assert!(a.weights()[0] > 0.2, "informative weight survives: {:?}", a.weights());
        assert!(a.weights()[2].abs() < 0.05, "uninformative weight shrinks: {:?}", a.weights());
    }

    #[test]
    fn correct_confident_predictions_change_little() {
        // LMS error is small once y ≈ d, so updates vanish.
        let mut a = Adaline::new(1, 0.2, 0.0);
        for _ in 0..500 {
            a.train(&[1.0], 1.0);
        }
        let w_before = a.weights()[0];
        a.train(&[1.0], 1.0);
        assert!((a.weights()[0] - w_before).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Adaline::new(2, 0.1, 0.0);
        let _ = a.output(&[1.0]);
    }
}
