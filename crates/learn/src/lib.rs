//! Offline learning tools for the CHiRP reproduction.
//!
//! The paper uses an ADALINE (ADAptive LINear Element, Widrow & Hoff 1960)
//! trained offline on TLB reuse outcomes to discover which PC bits carry
//! predictive weight (§II-D, §III-A, Figure 3): with L1 regularisation,
//! weights of uninformative bits shrink towards zero, and the surviving
//! high-magnitude weights land on PC bits 2 and 3 — the bits CHiRP folds
//! into its path history.
//!
//! ```
//! use chirp_learn::{Adaline, pc_bit_features};
//!
//! let mut model = Adaline::new(16, 0.05, 0.001);
//! // Teach it: bit 2 of the PC decides reuse.
//! for step in 0..500 {
//!     let pc = (step % 16) as u64 * 4;
//!     let reused = pc & 0b100 != 0;
//!     let x = pc_bit_features(pc, 16);
//!     model.train(&x, if reused { 1.0 } else { -1.0 });
//! }
//! let w = model.weights();
//! assert!(w[2].abs() > w[7].abs());
//! ```

pub mod adaline;
pub mod features;
pub mod trainer;

pub use adaline::Adaline;
pub use features::pc_bit_features;
pub use trainer::{train_on_events, ReuseEvent, WeightProfile};
