//! Offline training driver: fits one ADALINE per benchmark on (PC → entry
//! reused?) events collected from simulation, producing the weight rows of
//! the paper's Figure 3 heat map.

use crate::adaline::Adaline;
use crate::features::pc_bit_features;
use serde::{Deserialize, Serialize};

/// One reuse observation: the PC whose access inserted/last-touched a TLB
/// entry, and whether that entry was reused before eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseEvent {
    /// Accessing instruction PC.
    pub pc: u64,
    /// Whether the entry saw another hit before being evicted.
    pub reused: bool,
}

/// The trained weight profile for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightProfile {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-PC-bit weight magnitudes, normalised to `[0, 1]`
    /// (0 = uninformative, 1 = the most informative bit).
    pub weights: Vec<f64>,
    /// Training accuracy over the event stream (running, post-warmup).
    pub accuracy: f64,
}

impl WeightProfile {
    /// Indices of the `k` highest-magnitude bits, most informative first.
    pub fn top_bits(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.weights.len()).collect();
        idx.sort_by(|&a, &b| {
            self.weights[b].partial_cmp(&self.weights[a]).expect("weights are finite")
        });
        idx.truncate(k);
        idx
    }
}

/// Trains an ADALINE over `events` using the low `bits` PC bits as inputs.
///
/// Returns normalised |weight| per bit plus the running classification
/// accuracy over the second half of the stream.
pub fn train_on_events(
    benchmark: impl Into<String>,
    events: &[ReuseEvent],
    bits: usize,
) -> WeightProfile {
    let mut model = Adaline::new(bits.max(1), 0.02, 5e-5);
    let warmup = events.len() / 2;
    let mut correct = 0usize;
    let mut counted = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let x = pc_bit_features(ev.pc, bits);
        if i >= warmup {
            counted += 1;
            if model.classify(&x) == ev.reused {
                correct += 1;
            }
        }
        model.train(&x, if ev.reused { 1.0 } else { -1.0 });
    }
    let mut weights: Vec<f64> = model.weights().iter().map(|w| w.abs()).collect();
    let max = weights.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for w in &mut weights {
            *w /= max;
        }
    }
    WeightProfile {
        benchmark: benchmark.into(),
        weights,
        accuracy: if counted == 0 { 0.0 } else { correct as f64 / counted as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_deciding_bit() {
        // Reuse is decided by PC bit 2 (the paper's finding for TLBs).
        let events: Vec<ReuseEvent> = (0..4000)
            .map(|i| {
                let pc = (i % 64) * 4;
                ReuseEvent { pc, reused: pc & 0b100 != 0 }
            })
            .collect();
        let profile = train_on_events("synthetic", &events, 16);
        assert_eq!(profile.top_bits(1), vec![2]);
        assert!(profile.accuracy > 0.95, "accuracy {}", profile.accuracy);
        assert!((profile.weights[2] - 1.0).abs() < 1e-9, "top weight normalised to 1");
    }

    #[test]
    fn two_bit_rule_surfaces_both_bits() {
        let events: Vec<ReuseEvent> = (0..8000)
            .map(|i| {
                let pc = (i % 128) * 4;
                ReuseEvent { pc, reused: (pc >> 2 & 1) ^ (pc >> 3 & 1) == 0 }
            })
            .collect();
        // XOR is not linearly separable, but each bit still carries weight
        // above the noise floor relative to untouched high bits.
        let profile = train_on_events("xorish", &events, 16);
        let top: std::collections::HashSet<usize> = profile.top_bits(4).into_iter().collect();
        assert!(top.contains(&2) || top.contains(&3), "top bits {top:?}");
    }

    #[test]
    fn empty_events_yield_zero_profile() {
        let profile = train_on_events("empty", &[], 8);
        assert_eq!(profile.weights.len(), 8);
        assert_eq!(profile.accuracy, 0.0);
    }
}
