//! Streaming trace sources (TraceSource v2).
//!
//! The materialized [`TraceSource`](crate::packed::TraceSource) path holds
//! a whole [`PackedTrace`] resident per benchmark — fine for short runs,
//! but at production lengths (1M+ instructions × hundreds of suite units)
//! the trace dominates memory. A [`TraceStream`] instead yields bounded
//! [`PackedTrace`] batches on demand, so peak per-unit residency is
//! O(chunk) rather than O(trace):
//!
//! - [`GenStream`] runs a workload generator on a producer thread behind a
//!   bounded channel; at most a few chunks exist at once.
//! - [`MaterializedStream`] adapts an already-resident trace to the same
//!   interface (batches are copied views), so one consumer loop serves
//!   both worlds — and equivalence tests can diff them.
//! - The archive-backed stream lives in `chirp-store` (it needs file and
//!   checksum plumbing) but speaks this trait.
//!
//! Batch boundaries carry no meaning: concatenating the batches of any
//! stream yields exactly the record sequence of the materialized trace
//! for the same (generator, seed, len). The equivalence-matrix tests pin
//! this bit-identity across every policy.

use crate::codec::{ChunkedDecodeError, CodecError};
use crate::gen::Emitter;
use crate::packed::{PackedTrace, PackedTraceBuilder, TraceChunks};
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

/// Chunks a producer keeps in flight beyond the one the consumer holds:
/// the channel buffers two and the producer fills a third, so peak
/// residency per streamed unit is ~4 chunks regardless of trace length.
pub const STREAM_PIPELINE_CHUNKS: usize = 2;

/// Errors surfaced while pulling batches from a [`TraceStream`].
#[derive(Debug)]
pub enum StreamError {
    /// The underlying encoded bytes are not a valid trace.
    Codec(CodecError),
    /// An I/O failure from a file-backed stream.
    Io(std::io::Error),
    /// The stream's bytes decoded but failed an integrity check
    /// (e.g. an archive checksum mismatch detected at end-of-stream).
    Corrupt(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Codec(e) => write!(f, "{e}"),
            StreamError::Io(e) => write!(f, "trace stream I/O error: {e}"),
            StreamError::Corrupt(why) => write!(f, "trace stream corrupt: {why}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<CodecError> for StreamError {
    fn from(e: CodecError) -> Self {
        StreamError::Codec(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<ChunkedDecodeError> for StreamError {
    fn from(e: ChunkedDecodeError) -> Self {
        match e {
            ChunkedDecodeError::Codec(c) => StreamError::Codec(c),
            ChunkedDecodeError::Io(io) => StreamError::Io(io),
        }
    }
}

/// A trace delivered as bounded [`PackedTrace`] batches.
///
/// Contract: concatenating every `Ok(Some(batch))` in order yields the
/// full record sequence; batches are non-empty and hold at most
/// [`chunk_records`](TraceStream::chunk_records) records; after the first
/// `Ok(None)` or `Err`, the stream is exhausted.
pub trait TraceStream {
    /// Total records the stream intends to yield. Streams may end early
    /// (a generator that stops before its limit), mirroring the
    /// materialized path where such a generator produces a short trace.
    fn len(&self) -> usize;

    /// Whether the stream intends to yield no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper bound on records per batch.
    fn chunk_records(&self) -> usize;

    /// Pulls the next batch; `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Fails when the underlying source fails (decode, I/O, integrity);
    /// the stream must not be polled again after an error.
    fn next_batch(&mut self) -> Result<Option<PackedTrace>, StreamError>;
}

impl<T: TraceStream + ?Sized> TraceStream for Box<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn chunk_records(&self) -> usize {
        (**self).chunk_records()
    }

    fn next_batch(&mut self) -> Result<Option<PackedTrace>, StreamError> {
        (**self).next_batch()
    }
}

/// A workload generator running on a producer thread behind a bounded
/// channel. The generator pushes into a streaming [`Emitter`] that flushes
/// a [`PackedTrace`] every `chunk` records; the channel holds
/// [`STREAM_PIPELINE_CHUNKS`] batches, so the producer stalls instead of
/// buffering an unbounded backlog.
///
/// Dropping the stream mid-trace is clean: the channel disconnects, the
/// emitter reports itself full, the generator returns, and `Drop` joins
/// the thread.
pub struct GenStream {
    rx: Option<Receiver<PackedTrace>>,
    join: Option<JoinHandle<()>>,
    len: usize,
    chunk: usize,
    yielded: usize,
}

impl GenStream {
    /// Spawns `produce` on a named producer thread. `produce` receives a
    /// streaming emitter limited to `len` records and flushing every
    /// `chunk` — generator code is identical to the materialized path
    /// (`emit_into`), which is what makes streamed ≡ materialized hold by
    /// construction.
    pub fn spawn<F>(len: usize, chunk: usize, produce: F) -> GenStream
    where
        F: FnOnce(&mut Emitter) + Send + 'static,
    {
        let chunk = chunk.max(1);
        let (tx, rx) = sync_channel(STREAM_PIPELINE_CHUNKS);
        let join = std::thread::Builder::new()
            .name("chirp-genstream".into())
            .spawn(move || {
                let mut em = Emitter::streaming(len, chunk, tx);
                produce(&mut em);
                em.finish_stream();
            })
            .expect("spawn trace producer thread");
        GenStream { rx: Some(rx), join: Some(join), len, chunk, yielded: 0 }
    }

    fn shutdown(&mut self) {
        // Disconnect first so a mid-trace producer unblocks and exits.
        drop(self.rx.take());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl TraceStream for GenStream {
    fn len(&self) -> usize {
        self.len
    }

    fn chunk_records(&self) -> usize {
        self.chunk
    }

    fn next_batch(&mut self) -> Result<Option<PackedTrace>, StreamError> {
        let Some(rx) = self.rx.as_ref() else { return Ok(None) };
        match rx.recv() {
            Ok(batch) => {
                self.yielded += batch.len();
                if self.yielded >= self.len {
                    self.shutdown();
                }
                Ok(Some(batch))
            }
            // Producer closed early: the generator emitted fewer records
            // than its limit — a short trace, same as the materialized
            // path would produce. End of stream, not an error.
            Err(_) => {
                self.shutdown();
                Ok(None)
            }
        }
    }
}

impl Drop for GenStream {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for GenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GenStream")
            .field("len", &self.len)
            .field("chunk", &self.chunk)
            .field("yielded", &self.yielded)
            .finish()
    }
}

/// An already-resident trace adapted to the [`TraceStream`] interface.
/// Batches are copies (the trait hands out owned [`PackedTrace`]s), so
/// this is for equivalence testing and for consumers that only speak
/// streams — hot paths with a resident trace should keep using
/// `run_columnar` directly on it.
#[derive(Debug)]
pub struct MaterializedStream<'a> {
    chunks: TraceChunks<'a>,
    len: usize,
    chunk: usize,
}

impl<'a> MaterializedStream<'a> {
    /// Streams `trace` in `chunk`-record batches.
    pub fn new(trace: &'a PackedTrace, chunk: usize) -> MaterializedStream<'a> {
        let chunk = chunk.max(1);
        MaterializedStream { chunks: trace.chunks(chunk), len: trace.len(), chunk }
    }
}

impl TraceStream for MaterializedStream<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn chunk_records(&self) -> usize {
        self.chunk
    }

    fn next_batch(&mut self) -> Result<Option<PackedTrace>, StreamError> {
        match self.chunks.next() {
            Some(view) => {
                let mut builder = PackedTraceBuilder::with_capacity(view.len());
                for rec in view.records() {
                    builder.push(rec);
                }
                Ok(Some(builder.finish()))
            }
            None => Ok(None),
        }
    }
}

/// Drains a stream into one resident [`PackedTrace`] — the bridge back to
/// the materialized world for tests and consumers that need whole-trace
/// access. Defeats the purpose of streaming for large traces; prefer
/// consuming batches.
///
/// # Errors
///
/// Propagates the first [`StreamError`] the stream reports.
pub fn collect_stream<S: TraceStream>(stream: &mut S) -> Result<PackedTrace, StreamError> {
    let mut builder = PackedTraceBuilder::with_capacity(stream.len());
    while let Some(batch) = stream.next_batch()? {
        for rec in batch.iter() {
            builder.push(rec);
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ContextCopy, WorkloadGen};

    fn gen_stream(len: usize, chunk: usize) -> GenStream {
        let g = ContextCopy::default();
        GenStream::spawn(len, chunk, move |em| g.emit_into(em, 7))
    }

    #[test]
    fn gen_stream_concatenates_to_materialized_trace() {
        let want = ContextCopy::default().generate_packed(10_000, 7);
        for chunk in [1usize, 333, 4096, 20_000] {
            let mut stream = gen_stream(10_000, chunk);
            assert_eq!(stream.len(), 10_000);
            let got = collect_stream(&mut stream).unwrap();
            assert_eq!(got.to_records(), want.to_records(), "chunk {chunk}");
        }
    }

    #[test]
    fn gen_stream_batches_are_bounded_and_nonempty() {
        let mut stream = gen_stream(5_000, 512);
        let mut total = 0usize;
        while let Some(batch) = stream.next_batch().unwrap() {
            assert!(!batch.is_empty());
            assert!(batch.len() <= 512);
            total += batch.len();
        }
        assert_eq!(total, 5_000);
        // Exhausted streams keep answering None.
        assert!(stream.next_batch().unwrap().is_none());
    }

    #[test]
    fn dropping_a_gen_stream_mid_trace_does_not_hang() {
        let mut stream = gen_stream(1_000_000, 256);
        let first = stream.next_batch().unwrap().expect("first batch");
        assert_eq!(first.len(), 256);
        drop(stream); // joins the producer; must return promptly
    }

    #[test]
    fn materialized_stream_matches_source_trace() {
        let trace = ContextCopy::default().generate_packed(7_777, 3);
        for chunk in [1usize, 100, 1024, 9_999] {
            let mut stream = MaterializedStream::new(&trace, chunk);
            assert_eq!(stream.len(), trace.len());
            let got = collect_stream(&mut stream).unwrap();
            assert_eq!(got.to_records(), trace.to_records(), "chunk {chunk}");
        }
    }

    #[test]
    fn empty_streams_yield_nothing() {
        let trace = PackedTrace::from_records(&[]);
        let mut m = MaterializedStream::new(&trace, 64);
        assert!(m.is_empty());
        assert!(m.next_batch().unwrap().is_none());

        let mut g = gen_stream(0, 64);
        assert!(g.is_empty());
        assert!(g.next_batch().unwrap().is_none());
    }
}
