//! Instruction trace model and synthetic workload generation for the CHiRP
//! reproduction.
//!
//! The CHiRP paper ([MICRO 2020]) evaluates TLB replacement policies on 870
//! proprietary traces released for the Championship Value Prediction
//! competition (CVP-1). Those traces are not redistributable, so this crate
//! provides the closest synthetic equivalent: deterministic, seeded workload
//! generators that reproduce the *statistical regimes* the predictor cares
//! about — page-level reuse/stream mixes selected by calling context,
//! zipfian index lookups, large instruction footprints, pointer chasing and
//! tiled numeric kernels — across the same workload categories the paper
//! names (SPEC, database, crypto, scientific, web, big data).
//!
//! # Quick start
//!
//! ```
//! use chirp_trace::gen::{ContextCopy, WorkloadGen};
//!
//! let workload = ContextCopy::default();
//! let trace = workload.generate(10_000, 42);
//! assert_eq!(trace.len(), 10_000);
//! // Traces are deterministic for a given (spec, seed) pair.
//! assert_eq!(trace, workload.generate(10_000, 42));
//! ```
//!
//! [MICRO 2020]: https://doi.org/10.1109/MICRO50266.2020.00031

pub mod codec;
pub mod gen;
pub mod packed;
pub mod record;
pub mod stats;
pub mod stream;
pub mod suite;

pub use codec::{
    peek_record_count, read_trace, read_trace_packed, write_trace, write_trace_packed,
    ChunkedDecodeError, ChunkedDecoder, CodecError,
};
pub use gen::Category;
pub use packed::{
    ChunkCursor, DecodedBlock, PackedTrace, PackedTraceBuilder, TraceChunk, TraceChunks,
    TraceSource,
};
pub use record::{BranchClass, InstrKind, TraceRecord};
pub use stats::TraceStats;
pub use stream::{
    collect_stream, GenStream, MaterializedStream, StreamError, TraceStream, STREAM_PIPELINE_CHUNKS,
};
pub use suite::{workload_family, BenchmarkSpec, SuiteConfig, GEN_CODE_VERSION, ZIPFIAN_FAMILIES};

/// Number of bytes covered by one page (the paper studies the standard 4 KB
/// page size exclusively; see §V of the paper).
pub const PAGE_SIZE: u64 = 4096;

/// Number of low-order address bits covered by a page.
pub const PAGE_SHIFT: u32 = 12;

/// Extracts the virtual page number of a virtual address.
///
/// ```
/// assert_eq!(chirp_trace::vpn(0x1234_5678), 0x1234_5678 >> 12);
/// ```
#[inline]
pub fn vpn(va: u64) -> u64 {
    va >> PAGE_SHIFT
}
