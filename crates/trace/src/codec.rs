//! Compact binary trace codec.
//!
//! The CVP-1 traces the paper uses are delta-compressed binary files; this
//! module provides an equivalent on-disk representation so generated suites
//! can be materialised once and replayed across policy runs. The format is:
//!
//! ```text
//! magic   : 4 bytes  "CHRP"
//! version : u8       (currently 1)
//! count   : u64 LE   number of records
//! records : count × { kind:u8, flags:u8, pc:varint-delta,
//!                     [ea:varint], [target:varint] }
//! ```
//!
//! PCs are encoded as zig-zag deltas from the previous record's PC, which
//! makes sequential code nearly free to store. Effective addresses and
//! targets are encoded only when the kind requires them (flag-driven).

use crate::packed::{PackedTrace, PackedTraceBuilder};
use crate::record::{InstrKind, TraceRecord};
use bytes::{BufMut, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"CHRP";
const VERSION: u8 = 1;

const FLAG_TAKEN: u8 = 1 << 0;
const FLAG_HAS_EA: u8 = 1 << 1;
const FLAG_HAS_TARGET: u8 = 1 << 2;

/// Errors produced while decoding a trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `CHRP` magic.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u8),
    /// The buffer ended before the declared record count was reached.
    Truncated,
    /// A record carried an unknown [`InstrKind`] discriminant.
    BadKind(u8),
    /// A varint ran past its maximum length.
    BadVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "trace buffer does not begin with CHRP magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => write!(f, "trace buffer ended before declared record count"),
            CodecError::BadKind(k) => write!(f, "unknown instruction kind discriminant {k}"),
            CodecError::BadVarint => write!(f, "malformed varint in trace buffer"),
        }
    }
}

impl std::error::Error for CodecError {}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Internal byte source for decoding: slice cursors (the in-memory decode
/// paths) and `io::Read` adapters (the chunked streaming path) feed the
/// same record decoder, so the two paths cannot diverge. End-of-source
/// must surface as [`CodecError::Truncated`] (possibly wrapped in the
/// source's error type).
trait ByteSource {
    /// The error decoding through this source produces.
    type Error: From<CodecError>;

    /// The next byte, or `Truncated` at end of source.
    fn get_u8(&mut self) -> Result<u8, Self::Error>;

    /// Fills `out` exactly, or fails with `Truncated`.
    fn fill_exact(&mut self, out: &mut [u8]) -> Result<(), Self::Error>;
}

/// Cursor over an in-memory buffer.
struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
}

impl ByteSource for SliceSource<'_> {
    type Error = CodecError;

    #[inline]
    fn get_u8(&mut self) -> Result<u8, CodecError> {
        let byte = *self.data.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    fn fill_exact(&mut self, out: &mut [u8]) -> Result<(), CodecError> {
        let end = self.pos.checked_add(out.len()).ok_or(CodecError::Truncated)?;
        if end > self.data.len() {
            return Err(CodecError::Truncated);
        }
        out.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        Ok(())
    }
}

/// Adapter over any `io::Read`; wrap the reader in a `BufReader` (the
/// decoder pulls single bytes).
struct ReaderSource<R: std::io::Read> {
    inner: R,
}

impl<R: std::io::Read> ByteSource for ReaderSource<R> {
    type Error = ChunkedDecodeError;

    #[inline]
    fn get_u8(&mut self) -> Result<u8, ChunkedDecodeError> {
        let mut byte = [0u8; 1];
        self.fill_exact(&mut byte)?;
        Ok(byte[0])
    }

    fn fill_exact(&mut self, out: &mut [u8]) -> Result<(), ChunkedDecodeError> {
        self.inner.read_exact(out).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ChunkedDecodeError::Codec(CodecError::Truncated)
            } else {
                ChunkedDecodeError::Io(e)
            }
        })
    }
}

fn get_varint<S: ByteSource>(src: &mut S) -> Result<u64, S::Error> {
    let mut shift = 0u32;
    let mut out = 0u64;
    for _ in 0..10 {
        let byte = src.get_u8()?;
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
    Err(CodecError::BadVarint.into())
}

/// Serialises a trace into the compact binary format.
///
/// ```
/// use chirp_trace::{read_trace, write_trace, TraceRecord};
///
/// let trace = vec![TraceRecord::alu(0x400000), TraceRecord::load(0x400004, 0x7000_0000)];
/// let bytes = write_trace(&trace);
/// assert_eq!(read_trace(&bytes)?, trace);
/// # Ok::<(), chirp_trace::CodecError>(())
/// ```
pub fn write_trace(records: &[TraceRecord]) -> Vec<u8> {
    encode(records.len(), records.iter().copied())
}

/// Serialises a [`PackedTrace`] into the same binary format as
/// [`write_trace`] — the encoding depends only on the record sequence, not
/// on the in-memory representation.
pub fn write_trace_packed(trace: &PackedTrace) -> Vec<u8> {
    encode(trace.len(), trace.iter())
}

fn encode<I: Iterator<Item = TraceRecord>>(count: usize, records: I) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(16 + count * 4);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(count as u64);
    let mut prev_pc = 0u64;
    for rec in records {
        let mut flags = 0u8;
        if rec.taken {
            flags |= FLAG_TAKEN;
        }
        let has_ea = rec.kind.is_memory();
        let has_target = rec.kind.is_branch();
        if has_ea {
            flags |= FLAG_HAS_EA;
        }
        if has_target {
            flags |= FLAG_HAS_TARGET;
        }
        buf.put_u8(rec.kind as u8);
        buf.put_u8(flags);
        put_varint(&mut buf, zigzag_encode(rec.pc.wrapping_sub(prev_pc) as i64));
        prev_pc = rec.pc;
        if has_ea {
            put_varint(&mut buf, rec.effective_address);
        }
        if has_target {
            put_varint(&mut buf, rec.target);
        }
    }
    buf.to_vec()
}

/// Record-level decode state shared by every decode path: header
/// validation up front, then one record per [`DecoderCore::next_record`]
/// call. [`read_trace`], [`read_trace_packed`] and [`ChunkedDecoder`] all
/// drive this, so the paths cannot diverge.
struct DecoderCore {
    remaining: usize,
    prev_pc: u64,
}

impl DecoderCore {
    fn read_header<S: ByteSource>(src: &mut S) -> Result<DecoderCore, S::Error> {
        let mut magic = [0u8; 4];
        src.fill_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CodecError::BadMagic.into());
        }
        let version = src.get_u8()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version).into());
        }
        let mut count = [0u8; 8];
        src.fill_exact(&mut count)?;
        Ok(DecoderCore { remaining: u64::from_le_bytes(count) as usize, prev_pc: 0 })
    }

    fn next_record<S: ByteSource>(&mut self, src: &mut S) -> Result<Option<TraceRecord>, S::Error> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let kind_byte = src.get_u8()?;
        let kind = InstrKind::from_u8(kind_byte).ok_or(CodecError::BadKind(kind_byte))?;
        let flags = src.get_u8()?;
        let delta = zigzag_decode(get_varint(src)?);
        let pc = self.prev_pc.wrapping_add(delta as u64);
        self.prev_pc = pc;
        let effective_address = if flags & FLAG_HAS_EA != 0 { get_varint(src)? } else { 0 };
        let target = if flags & FLAG_HAS_TARGET != 0 { get_varint(src)? } else { 0 };
        Ok(Some(TraceRecord {
            pc,
            kind,
            effective_address,
            target,
            taken: flags & FLAG_TAKEN != 0,
        }))
    }
}

/// Slice-backed decoder driving [`DecoderCore`]; the engine behind
/// [`read_trace`] and [`read_trace_packed`].
struct Decoder<'a> {
    src: SliceSource<'a>,
    core: DecoderCore,
}

impl<'a> Decoder<'a> {
    fn new(data: &'a [u8]) -> Result<Decoder<'a>, CodecError> {
        // Historical contract: an undersized buffer is Truncated even when
        // its first bytes would also fail the magic check.
        if data.len() < 4 + 1 + 8 {
            return Err(CodecError::Truncated);
        }
        let mut src = SliceSource { data, pos: 0 };
        let core = DecoderCore::read_header(&mut src)?;
        Ok(Decoder { src, core })
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, CodecError> {
        self.core.next_record(&mut self.src)
    }

    fn remaining(&self) -> usize {
        self.core.remaining
    }
}

/// Errors produced by the chunked (reader-backed) decode path: either a
/// malformed encoding or an I/O failure from the underlying reader.
#[derive(Debug)]
pub enum ChunkedDecodeError {
    /// The byte stream is not a valid `CHRP` encoding.
    Codec(CodecError),
    /// The underlying reader failed (not end-of-stream — a premature EOF
    /// surfaces as `Codec(Truncated)`).
    Io(std::io::Error),
}

impl From<CodecError> for ChunkedDecodeError {
    fn from(e: CodecError) -> Self {
        ChunkedDecodeError::Codec(e)
    }
}

impl fmt::Display for ChunkedDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkedDecodeError::Codec(e) => write!(f, "{e}"),
            ChunkedDecodeError::Io(e) => write!(f, "trace stream read failed: {e}"),
        }
    }
}

impl std::error::Error for ChunkedDecodeError {}

/// Chunked decode path over any [`std::io::Read`]: records come out in
/// bounded [`PackedTrace`] batches, so peak decode memory is O(chunk)
/// instead of O(trace). Drives the same decoder core as the in-memory
/// paths, so the decoded record sequence is bit-identical to
/// [`read_trace_packed`] on the concatenated chunks.
///
/// Wrap file readers in a [`std::io::BufReader`] — the decoder pulls
/// single bytes from the source.
///
/// ```
/// use chirp_trace::{codec::ChunkedDecoder, write_trace, TraceRecord};
///
/// let trace = vec![TraceRecord::alu(0x400000), TraceRecord::load(0x400004, 0x7000)];
/// let bytes = write_trace(&trace);
/// let mut dec = ChunkedDecoder::new(&bytes[..])?;
/// assert_eq!(dec.remaining(), 2);
/// let chunk = dec.next_chunk(1)?.expect("first record");
/// assert_eq!(chunk.len(), 1);
/// # Ok::<(), chirp_trace::codec::ChunkedDecodeError>(())
/// ```
pub struct ChunkedDecoder<R: std::io::Read> {
    src: ReaderSource<R>,
    core: DecoderCore,
}

impl<R: std::io::Read> ChunkedDecoder<R> {
    /// Reads and validates the `CHRP` header, leaving the reader
    /// positioned at the first record.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic/version, a header cut short
    /// (`Codec(Truncated)`), or a reader I/O error.
    pub fn new(reader: R) -> Result<ChunkedDecoder<R>, ChunkedDecodeError> {
        let mut src = ReaderSource { inner: reader };
        let core = DecoderCore::read_header(&mut src)?;
        Ok(ChunkedDecoder { src, core })
    }

    /// Records not yet decoded (per the header's declared count).
    pub fn remaining(&self) -> usize {
        self.core.remaining
    }

    /// Decodes up to `max` records into a fresh [`PackedTrace`]; `None`
    /// once the declared record count is exhausted.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`read_trace`], plus reader I/O errors. After
    /// an error the decoder is poisoned — further calls are unspecified
    /// (the stream position is mid-record).
    pub fn next_chunk(&mut self, max: usize) -> Result<Option<PackedTrace>, ChunkedDecodeError> {
        if self.core.remaining == 0 {
            return Ok(None);
        }
        let take = max.max(1).min(self.core.remaining);
        let mut builder = PackedTraceBuilder::with_capacity(take);
        for _ in 0..take {
            match self.core.next_record(&mut self.src)? {
                Some(rec) => builder.push(rec),
                None => break,
            }
        }
        Ok(Some(builder.finish()))
    }

    /// Consumes the decoder, returning the underlying reader — lets a
    /// checksumming reader be inspected once decoding is done.
    pub fn into_inner(self) -> R {
        self.src.inner
    }
}

/// Deserialises a trace previously produced by [`write_trace`].
///
/// # Errors
///
/// Returns a [`CodecError`] if the buffer is truncated, carries an unknown
/// version or kind, or contains a malformed varint.
pub fn read_trace(data: &[u8]) -> Result<Vec<TraceRecord>, CodecError> {
    let mut decoder = Decoder::new(data)?;
    let mut out = Vec::with_capacity(decoder.remaining());
    while let Some(rec) = decoder.next_record()? {
        out.push(rec);
    }
    Ok(out)
}

/// Deserialises a trace directly into [`PackedTrace`] form, never
/// materialising the flat 40-byte-per-record vector — the suite runner's
/// archive-decode path. Accepts exactly the buffers [`read_trace`] accepts
/// and yields the identical record sequence.
///
/// # Errors
///
/// Same failure modes as [`read_trace`].
/// Reads the record count out of a `CHRP` header without decoding any
/// records — lets a client declare a trace's size (for server-side
/// admission control) from the first 13 bytes of the file.
///
/// # Errors
///
/// Rejects buffers whose header is truncated, carries the wrong magic or
/// an unsupported version. The records themselves are not validated.
pub fn peek_record_count(data: &[u8]) -> Result<u64, CodecError> {
    if data.len() < 4 + 1 + 8 {
        return Err(CodecError::Truncated);
    }
    if &data[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if data[4] != VERSION {
        return Err(CodecError::UnsupportedVersion(data[4]));
    }
    Ok(u64::from_le_bytes(data[5..13].try_into().expect("8-byte slice")))
}

pub fn read_trace_packed(data: &[u8]) -> Result<PackedTrace, CodecError> {
    let mut decoder = Decoder::new(data)?;
    let mut builder = PackedTraceBuilder::with_capacity(decoder.remaining());
    while let Some(rec) = decoder.next_record()? {
        builder.push(rec);
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = write_trace(&[]);
        assert_eq!(read_trace(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn mixed_trace_roundtrips() {
        let trace = vec![
            TraceRecord::alu(0x400000),
            TraceRecord::load(0x400004, 0x7fff_0000_1234),
            TraceRecord::store(0x400008, 0x1_0000_0000),
            TraceRecord::cond_branch(0x40000c, 0x400000, true),
            TraceRecord::cond_branch(0x40000c, 0x400010, false),
            TraceRecord::call(0x400010, 0x500000),
            TraceRecord::ret(0x500040, 0x400014),
            TraceRecord::indirect_jump(0x400014, 0x600000),
        ];
        let bytes = write_trace(&trace);
        assert_eq!(read_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn backward_pc_deltas_roundtrip() {
        // Returns jump backwards; zig-zag must handle negative deltas.
        let trace = vec![TraceRecord::alu(0x9000_0000), TraceRecord::alu(0x400000)];
        assert_eq!(read_trace(&write_trace(&trace)).unwrap(), trace);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_trace(&[TraceRecord::alu(0)]);
        bytes[0] = b'X';
        assert_eq!(read_trace(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = write_trace(&[TraceRecord::alu(0)]);
        bytes[4] = 99;
        assert_eq!(read_trace(&bytes), Err(CodecError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let bytes = write_trace(&[TraceRecord::load(0x400000, 0x12345678)]);
        for cut in 0..bytes.len() {
            assert!(read_trace(&bytes[..cut]).is_err(), "prefix of length {cut} must not decode");
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = write_trace(&[TraceRecord::alu(4)]);
        // kind byte of first record sits right after the 13-byte header
        bytes[13] = 42;
        assert_eq!(read_trace(&bytes), Err(CodecError::BadKind(42)));
    }

    #[test]
    fn packed_write_matches_flat_write() {
        let trace = vec![
            TraceRecord::alu(0x400000),
            TraceRecord::load(0x400004, 0x7fff_0000_1234),
            TraceRecord::cond_branch(0x40000c, 0x400000, true),
            TraceRecord::ret(0x500040, 0x400014),
        ];
        let packed = crate::packed::PackedTrace::from_records(&trace);
        assert_eq!(write_trace_packed(&packed), write_trace(&trace));
    }

    #[test]
    fn packed_read_matches_flat_read() {
        let trace = vec![
            TraceRecord::store(0x400008, 0x1_0000_0000),
            TraceRecord::indirect_jump(0x400014, 0x600000),
            TraceRecord::alu(0x400018),
        ];
        let bytes = write_trace(&trace);
        let packed = read_trace_packed(&bytes).unwrap();
        assert_eq!(packed.to_records(), trace);
        assert_eq!(read_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn packed_read_rejects_what_flat_read_rejects() {
        let mut bytes = write_trace(&[TraceRecord::alu(0)]);
        bytes[0] = b'X';
        assert_eq!(read_trace_packed(&bytes), Err(CodecError::BadMagic));
        let bytes = write_trace(&[TraceRecord::load(0x400000, 0x12345678)]);
        for cut in 0..bytes.len() {
            assert!(read_trace_packed(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn peek_reads_count_without_decoding() {
        let trace = vec![TraceRecord::alu(0x400000), TraceRecord::load(0x400004, 0x7000)];
        let bytes = write_trace(&trace);
        assert_eq!(peek_record_count(&bytes), Ok(2));
        // Header-only prefix still answers; shorter prefixes are truncated.
        assert_eq!(peek_record_count(&bytes[..13]), Ok(2));
        assert_eq!(peek_record_count(&bytes[..12]), Err(CodecError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(peek_record_count(&bad), Err(CodecError::BadMagic));
        let mut bad = bytes;
        bad[4] = 7;
        assert_eq!(peek_record_count(&bad), Err(CodecError::UnsupportedVersion(7)));
    }

    #[test]
    fn chunked_decode_matches_whole_buffer_decode() {
        let trace = vec![
            TraceRecord::alu(0x400000),
            TraceRecord::load(0x400004, 0x7fff_0000_1234),
            TraceRecord::cond_branch(0x40000c, 0x400000, true),
            TraceRecord::call(0x400010, 0x500000),
            TraceRecord::ret(0x500040, 0x400014),
        ];
        let bytes = write_trace(&trace);
        for chunk in [1usize, 2, 3, 5, 64] {
            let mut dec = ChunkedDecoder::new(&bytes[..]).unwrap();
            let mut got = Vec::new();
            while let Some(batch) = dec.next_chunk(chunk).unwrap() {
                assert!(batch.len() <= chunk);
                got.extend(batch.iter());
            }
            assert_eq!(got, trace, "chunk size {chunk}");
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn chunked_decode_rejects_what_whole_buffer_decode_rejects() {
        let mut bad = write_trace(&[TraceRecord::alu(0)]);
        bad[0] = b'X';
        assert!(matches!(
            ChunkedDecoder::new(&bad[..]),
            Err(ChunkedDecodeError::Codec(CodecError::BadMagic))
        ));
        let bytes = write_trace(&[TraceRecord::load(0x400000, 0x12345678)]);
        for cut in 0..bytes.len() {
            let drained = ChunkedDecoder::new(&bytes[..cut]).and_then(|mut dec| {
                while dec.next_chunk(4)?.is_some() {}
                Ok(())
            });
            assert!(drained.is_err(), "prefix of length {cut} must not decode");
        }
    }

    #[test]
    fn chunked_decode_empty_trace_yields_no_chunks() {
        let bytes = write_trace(&[]);
        let mut dec = ChunkedDecoder::new(&bytes[..]).unwrap();
        assert_eq!(dec.remaining(), 0);
        assert!(dec.next_chunk(16).unwrap().is_none());
    }

    #[test]
    fn zigzag_is_involutive() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 0x7fff_ffff_ffff] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Any encodable record: the codec stores effective addresses only
        /// for memory kinds and targets only for branch kinds, so those
        /// fields are zeroed where the format does not carry them.
        fn arb_record() -> impl Strategy<Value = TraceRecord> {
            (0usize..InstrKind::ALL.len(), any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>())
                .prop_map(|(k, pc, ea, target, taken)| {
                    let kind = InstrKind::ALL[k];
                    TraceRecord {
                        pc,
                        kind,
                        effective_address: if kind.is_memory() { ea } else { 0 },
                        target: if kind.is_branch() { target } else { 0 },
                        taken,
                    }
                })
        }

        proptest! {
            #[test]
            fn arbitrary_streams_roundtrip(trace in vec(arb_record(), 0..200usize)) {
                let bytes = write_trace(&trace);
                prop_assert_eq!(read_trace(&bytes).as_ref(), Ok(&trace));
            }

            #[test]
            fn every_strict_prefix_is_rejected(trace in vec(arb_record(), 0..40usize)) {
                // The header declares a record count, so no strict prefix
                // of a valid encoding may decode successfully.
                let bytes = write_trace(&trace);
                for cut in 0..bytes.len() {
                    prop_assert!(
                        read_trace(&bytes[..cut]).is_err(),
                        "prefix of length {} decoded",
                        cut
                    );
                }
            }

            #[test]
            fn packed_and_flat_decoders_agree(trace in vec(arb_record(), 0..200usize)) {
                let bytes = write_trace(&trace);
                let packed = read_trace_packed(&bytes).unwrap();
                prop_assert_eq!(packed.to_records(), trace.clone());
                prop_assert_eq!(write_trace_packed(&packed), bytes);
            }

            #[test]
            fn chunked_decode_agrees_with_flat_decode(
                trace in vec(arb_record(), 0..200usize),
                chunk in 1usize..64,
            ) {
                let bytes = write_trace(&trace);
                let mut dec = ChunkedDecoder::new(&bytes[..]).unwrap();
                let mut got = Vec::new();
                while let Some(batch) = dec.next_chunk(chunk).unwrap() {
                    got.extend(batch.iter());
                }
                prop_assert_eq!(got, trace);
            }

            #[test]
            fn version_byte_is_enforced(trace in vec(arb_record(), 0..8usize), v in any::<u8>()) {
                let mut bytes = write_trace(&trace);
                bytes[4] = v;
                if v == VERSION {
                    prop_assert!(read_trace(&bytes).is_ok());
                } else {
                    prop_assert_eq!(read_trace(&bytes), Err(CodecError::UnsupportedVersion(v)));
                }
            }
        }
    }
}
