//! The benchmark suite builder.
//!
//! The paper evaluates on 870 CVP-1 traces spanning SPEC, database, crypto,
//! scientific, web and big-data categories. This module enumerates a
//! deterministic grid of generator configurations and seeds across the same
//! categories, producing up to (and beyond) 870 distinct benchmarks. A
//! smaller suite for quick runs is obtained by even sampling, which keeps
//! the category mix representative.

use crate::gen::{
    Category, ContextCopy, CryptoStream, Gups, Interpreter, PointerChase, ScanIndex, SpecLoops,
    TiledStencil, WebServe, WorkloadGen,
};
use crate::record::TraceRecord;
use serde::{Deserialize, Serialize};

/// A concrete generator configuration, serialisable for reproducibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GenSpec {
    /// Mixed-context copy kernel.
    ContextCopy(ContextCopy),
    /// Database scan + index lookups.
    ScanIndex(ScanIndex),
    /// Streaming cipher.
    CryptoStream(CryptoStream),
    /// Tiled stencil.
    TiledStencil(TiledStencil),
    /// SPEC-style loop nests.
    SpecLoops(SpecLoops),
    /// Request server.
    WebServe(WebServe),
    /// Pointer chasing.
    PointerChase(PointerChase),
    /// Random updates.
    Gups(Gups),
    /// Bytecode interpreter (not in the default grid; see its module docs).
    Interpreter(Interpreter),
}

impl GenSpec {
    /// Borrows the underlying generator as a trait object.
    pub fn as_gen(&self) -> &dyn WorkloadGen {
        match self {
            GenSpec::ContextCopy(g) => g,
            GenSpec::ScanIndex(g) => g,
            GenSpec::CryptoStream(g) => g,
            GenSpec::TiledStencil(g) => g,
            GenSpec::SpecLoops(g) => g,
            GenSpec::WebServe(g) => g,
            GenSpec::PointerChase(g) => g,
            GenSpec::Gups(g) => g,
            GenSpec::Interpreter(g) => g,
        }
    }
}

/// One benchmark: a named, seeded generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Unique name, e.g. `db.scanidx.i1024z0.9b64#s1`.
    pub name: String,
    /// Workload category.
    pub category: Category,
    /// Generator configuration.
    pub spec: GenSpec,
    /// Seed for all random decisions.
    pub seed: u64,
}

impl BenchmarkSpec {
    fn new(spec: GenSpec, seed: u64) -> Self {
        let gen = spec.as_gen();
        // A short fingerprint of the full parameter set disambiguates
        // configurations whose headline parameters coincide.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        format!("{spec:?}").hash(&mut hasher);
        let fp = hasher.finish() & 0xffff;
        BenchmarkSpec {
            name: format!("{}.{fp:04x}#s{seed}", gen.name()),
            category: gen.category(),
            spec,
            seed,
        }
    }

    /// Generates the benchmark's trace with `len` instructions.
    pub fn generate(&self, len: usize) -> Vec<TraceRecord> {
        self.spec.as_gen().generate(len, self.seed)
    }

    /// Generates the benchmark's trace in packed struct-of-arrays form —
    /// what the suite runner keeps resident.
    pub fn generate_packed(&self, len: usize) -> crate::packed::PackedTrace {
        self.spec.as_gen().generate_packed(len, self.seed)
    }

    /// Streams the benchmark's trace in `chunk`-record batches from a
    /// producer thread, never materialising the whole trace — the
    /// production-run path for long traces. The batch concatenation is
    /// bit-identical to [`generate_packed`](Self::generate_packed) for
    /// the same `len`.
    pub fn stream(&self, len: usize, chunk: usize) -> crate::stream::GenStream {
        let spec = self.spec.clone();
        let seed = self.seed;
        crate::stream::GenStream::spawn(len, chunk, move |em| spec.as_gen().emit_into(em, seed))
    }
}

/// Suite construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Number of benchmarks to produce. The paper uses 870; small values
    /// evenly sample the full grid for quick runs.
    pub benchmarks: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { benchmarks: 870 }
    }
}

/// Number of benchmarks in the paper's suite.
pub const PAPER_SUITE_SIZE: usize = 870;

/// Code-identity version of the trace generators. This string participates
/// in every run-ledger key (see `chirp_sim::store_cache`), so bumping it
/// when a generator's emission logic changes invalidates every cached
/// result at once — stale numbers can never be served from a ledger built
/// by older generator code. Parameter changes do NOT need a bump: the
/// generator parameters already enter benchmark identity through the
/// `GenSpec` debug string in trace keys and the benchmark name in run keys.
pub const GEN_CODE_VERSION: &str = "gen/1";

/// Generator families whose page-selection distribution is Zipfian — the
/// set the query layer's `workload=zipfian` filter matches. Family names
/// are the [`workload_family`] of the generators in [`GenSpec`].
pub const ZIPFIAN_FAMILIES: [&str; 4] = ["scanidx", "serve", "chase", "gups"];

/// The generator family of a benchmark name: the second dot-separated
/// component of the `<category>.<family>.<params>#s<seed>` naming scheme
/// every [`WorkloadGen::name`] follows (e.g. `"scanidx"` for
/// `db.scanidx.i1024z0.9b64#s1`). Returns the whole name when it does not
/// follow the scheme, so lookups on foreign names degrade to exact match.
pub fn workload_family(benchmark: &str) -> &str {
    let mut parts = benchmark.splitn(3, '.');
    let _category = parts.next();
    match parts.next() {
        Some(family) if parts.next().is_some() => family,
        _ => benchmark,
    }
}

/// Builds the benchmark suite.
///
/// The full grid is enumerated deterministically; if `config.benchmarks`
/// is smaller than the grid, the grid is sampled evenly (preserving the
/// category mix); if larger, additional seeds are appended.
///
/// ```
/// use chirp_trace::suite::{build_suite, SuiteConfig};
///
/// let suite = build_suite(&SuiteConfig { benchmarks: 40 });
/// assert_eq!(suite.len(), 40);
/// ```
pub fn build_suite(config: &SuiteConfig) -> Vec<BenchmarkSpec> {
    let grid = enumerate_grid();
    let want = config.benchmarks;
    let mut out = Vec::with_capacity(want);
    if want <= grid.len() {
        for i in 0..want {
            // Even sampling keeps category diversity for small suites.
            let idx = i * grid.len() / want;
            out.push(grid[idx].clone());
        }
    } else {
        out.extend(grid.iter().cloned());
        // Extra seeds on the whole grid until the target count is reached.
        let mut extra_seed = 1000u64;
        'fill: loop {
            for b in &grid {
                if out.len() >= want {
                    break 'fill;
                }
                out.push(BenchmarkSpec::new(b.spec.clone(), b.seed + extra_seed));
            }
            extra_seed += 1000;
        }
    }
    out
}

/// The benchmark at `index` of the suite `config` describes, without
/// cloning the rest of the suite — `nth_benchmark(c, i)` equals
/// `build_suite(c)[i]`. Returns `None` when `index` is out of range.
///
/// ```
/// use chirp_trace::suite::{build_suite, nth_benchmark, SuiteConfig};
///
/// let config = SuiteConfig { benchmarks: 40 };
/// assert_eq!(nth_benchmark(&config, 7).as_ref(), build_suite(&config).get(7));
/// ```
pub fn nth_benchmark(config: &SuiteConfig, index: usize) -> Option<BenchmarkSpec> {
    let want = config.benchmarks;
    if index >= want {
        return None;
    }
    let grid = enumerate_grid();
    if want <= grid.len() {
        Some(grid[index * grid.len() / want].clone())
    } else if index < grid.len() {
        Some(grid[index].clone())
    } else {
        // Mirrors the extra-seed fill rounds of `build_suite`: each full
        // pass over the grid adds 1000 to the seed.
        let extra = index - grid.len();
        let round = (extra / grid.len()) as u64 + 1;
        let base = &grid[extra % grid.len()];
        Some(BenchmarkSpec::new(base.spec.clone(), base.seed + round * 1000))
    }
}

/// Enumerates the canonical parameter grid (≥ 870 entries), interleaving
/// categories so any even sample keeps the mix.
fn enumerate_grid() -> Vec<BenchmarkSpec> {
    let mut per_category: Vec<Vec<BenchmarkSpec>> = Vec::new();

    // --- Mixed-context copy (the paper's central mechanism) ------------
    let mut mixed = Vec::new();
    for &hot_pages in &[384u64, 512, 640] {
        for &stream_calls in &[16u32, 32, 48] {
            for &pages_per_call in &[4u64, 8] {
                for &hot_calls in &[16u32, 32] {
                    // One variant whose streams get a delayed verify reuse
                    // (defeats PC-indexed predictors, paper Observation 2)
                    // and one whose streams are truly dead on first touch
                    // (the regime where RRIP-style insertion shines).
                    for &verify in &[true, false] {
                        for seed in 0..3u64 {
                            mixed.push(BenchmarkSpec::new(
                                GenSpec::ContextCopy(ContextCopy {
                                    hot_pages,
                                    stream_calls,
                                    pages_per_call,
                                    hot_calls,
                                    // Keep the verify group near 64 pages so
                                    // re-reads land past L1, inside L2 reach.
                                    verify_every: if verify {
                                        (64 / pages_per_call) as u32
                                    } else {
                                        0
                                    },
                                    ..Default::default()
                                }),
                                seed,
                            ));
                        }
                    }
                }
            }
        }
    }
    per_category.push(mixed);

    // --- Database -------------------------------------------------------
    let mut db = Vec::new();
    for &index_pages in &[256u64, 512, 1024, 2048] {
        for &zipf_s in &[0.7f64, 0.9, 1.1] {
            for &scan_burst_pages in &[32u64, 64, 128] {
                for &project_pass in &[true, false] {
                    for seed in 0..3u64 {
                        db.push(BenchmarkSpec::new(
                            GenSpec::ScanIndex(ScanIndex {
                                index_pages,
                                zipf_s,
                                scan_burst_pages,
                                project_pass,
                                ..Default::default()
                            }),
                            seed,
                        ));
                    }
                }
            }
        }
    }
    per_category.push(db);

    // --- Crypto ----------------------------------------------------------
    let mut crypto = Vec::new();
    for &table_pages in &[256u64, 512, 768, 1024] {
        for &lookups_per_block in &[2u32, 4, 8] {
            for &block_bytes in &[64u64, 128] {
                for seed in 0..4u64 {
                    crypto.push(BenchmarkSpec::new(
                        GenSpec::CryptoStream(CryptoStream {
                            table_pages,
                            lookups_per_block,
                            block_bytes,
                            ..Default::default()
                        }),
                        seed,
                    ));
                }
            }
        }
    }
    per_category.push(crypto);

    // --- Scientific -------------------------------------------------------
    let mut sci = Vec::new();
    for &(tile_pages, sweep_pages) in &[
        (32u64, 256u64),
        (32, 512),
        (32, 768),
        (64, 256),
        (64, 512),
        (64, 768),
        (128, 256),
        (128, 512),
    ] {
        for &inner in &[2u32, 4] {
            {
                for &reuse_steps in &[2u32, 4] {
                    for seed in 0..3u64 {
                        sci.push(BenchmarkSpec::new(
                            GenSpec::TiledStencil(TiledStencil {
                                tile_pages,
                                sweep_pages,
                                inner,
                                reuse_steps,
                            }),
                            seed,
                        ));
                    }
                }
            }
        }
    }
    per_category.push(sci);

    // --- SPEC -------------------------------------------------------------
    let mut spec = Vec::new();
    for &arrays in &[1u32, 2, 4, 6] {
        for &pages_per_array in &[32u64, 64, 128, 192, 256] {
            for &stride_bytes in &[128u64, 256, 512] {
                for seed in 0..2u64 {
                    spec.push(BenchmarkSpec::new(
                        GenSpec::SpecLoops(SpecLoops {
                            arrays,
                            pages_per_array,
                            stride_bytes,
                            ..Default::default()
                        }),
                        seed,
                    ));
                }
            }
        }
    }
    per_category.push(spec);

    // --- Web ---------------------------------------------------------------
    let mut web = Vec::new();
    for &handlers in &[256u32, 512, 1024, 2048, 4096] {
        for &zipf_s in &[0.6f64, 0.8, 1.0] {
            for &session_pages in &[16u64, 64] {
                for seed in 0..3u64 {
                    web.push(BenchmarkSpec::new(
                        GenSpec::WebServe(WebServe {
                            handlers,
                            zipf_s,
                            session_pages,
                            ..Default::default()
                        }),
                        seed,
                    ));
                }
            }
        }
    }
    per_category.push(web);

    // --- Big data ------------------------------------------------------------
    let mut bigdata = Vec::new();
    for &pool_pages in &[1u64 << 12, 1 << 13] {
        for &zipf_s in &[0.9f64, 1.1] {
            for &hop_interval in &[16u32, 32] {
                for seed in 0..3u64 {
                    bigdata.push(BenchmarkSpec::new(
                        GenSpec::PointerChase(PointerChase {
                            pool_pages,
                            zipf_s,
                            hop_interval,
                            ..Default::default()
                        }),
                        seed,
                    ));
                }
            }
        }
    }
    for &table_pages in &[1u64 << 11, 1 << 12] {
        for &zipf_s in &[1.0f64, 1.2] {
            for seed in 0..4u64 {
                bigdata.push(BenchmarkSpec::new(
                    GenSpec::Gups(Gups { table_pages, zipf_s, ..Default::default() }),
                    seed,
                ));
            }
        }
    }
    per_category.push(bigdata);

    // Interleave categories round-robin so even sampling keeps the mix.
    let mut out = Vec::new();
    let max_len = per_category.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..max_len {
        for cat in &per_category {
            if let Some(b) = cat.get(i) {
                out.push(b.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_covers_paper_size() {
        let grid = enumerate_grid();
        assert!(
            grid.len() >= PAPER_SUITE_SIZE,
            "grid has {} entries, need at least {PAPER_SUITE_SIZE}",
            grid.len()
        );
    }

    #[test]
    fn names_are_unique() {
        let suite = build_suite(&SuiteConfig::default());
        let names: HashSet<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), suite.len(), "benchmark names must be unique");
    }

    #[test]
    fn small_suite_keeps_category_mix() {
        let suite = build_suite(&SuiteConfig { benchmarks: 35 });
        assert_eq!(suite.len(), 35);
        let cats: HashSet<Category> = suite.iter().map(|b| b.category).collect();
        assert!(cats.len() >= 6, "small suites must keep diversity, got {cats:?}");
    }

    #[test]
    fn oversized_suite_appends_new_seeds() {
        let grid_len = enumerate_grid().len();
        let suite = build_suite(&SuiteConfig { benchmarks: grid_len + 10 });
        assert_eq!(suite.len(), grid_len + 10);
        let names: HashSet<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn specs_generate_traces() {
        let suite = build_suite(&SuiteConfig { benchmarks: 14 });
        for b in &suite {
            let t = b.generate(2_000);
            assert_eq!(t.len(), 2_000, "{} must generate exactly 2000 records", b.name);
        }
    }

    #[test]
    fn nth_benchmark_matches_built_suite() {
        let grid_len = enumerate_grid().len();
        for size in [1usize, 7, 96, grid_len, grid_len + 10, 2 * grid_len + 3] {
            let config = SuiteConfig { benchmarks: size };
            let suite = build_suite(&config);
            for index in [0, size / 2, size - 1] {
                assert_eq!(
                    nth_benchmark(&config, index).as_ref(),
                    suite.get(index),
                    "size {size}, index {index}"
                );
            }
            assert_eq!(nth_benchmark(&config, size), None);
        }
    }

    #[test]
    fn workload_family_parses_every_suite_name() {
        let suite = build_suite(&SuiteConfig { benchmarks: 96 });
        for b in &suite {
            let family = workload_family(&b.name);
            assert!(
                [
                    "ctxcopy", "scanidx", "stream", "stencil", "loops", "serve", "chase", "gups",
                    "interp"
                ]
                .contains(&family),
                "{}: unexpected family {family:?}",
                b.name
            );
        }
        // Degenerate names fall back to exact match.
        assert_eq!(workload_family("plain"), "plain");
        assert_eq!(workload_family("a.b"), "a.b");
    }

    #[test]
    fn streamed_benchmark_matches_generate_packed() {
        let suite = build_suite(&SuiteConfig { benchmarks: 9 });
        for b in &suite {
            let want = b.generate_packed(4_000);
            let mut stream = b.stream(4_000, 700);
            let got = crate::stream::collect_stream(&mut stream).unwrap();
            assert_eq!(got.to_records(), want.to_records(), "{}", b.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = build_suite(&SuiteConfig { benchmarks: 100 });
        let b = build_suite(&SuiteConfig { benchmarks: 100 });
        assert_eq!(a, b);
    }
}
