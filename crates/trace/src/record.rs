//! The instruction trace record: the unit every simulator component consumes.

use serde::{Deserialize, Serialize};

/// Classification of a single traced instruction.
///
/// The categories mirror the information the CVP-1 traces expose and the
/// CHiRP algorithm consumes: loads/stores drive d-TLB accesses, conditional
/// branches feed the conditional-branch history, and unconditional indirect
/// control flow (indirect jumps/calls and returns) feeds the indirect-branch
/// history (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum InstrKind {
    /// Plain ALU/other instruction: no memory operand, no control flow.
    Alu = 0,
    /// Memory read. `effective_address` is the load address.
    Load = 1,
    /// Memory write. `effective_address` is the store address.
    Store = 2,
    /// Conditional direct branch; `taken` and `target` are meaningful.
    CondBranch = 3,
    /// Unconditional direct jump.
    DirectJump = 4,
    /// Unconditional indirect jump (register target).
    IndirectJump = 5,
    /// Direct call (pushes a return address).
    Call = 6,
    /// Indirect call (register target; pushes a return address).
    IndirectCall = 7,
    /// Return (pops a return address).
    Return = 8,
}

impl InstrKind {
    /// All kinds, in discriminant order. Useful for exhaustive tests.
    pub const ALL: [InstrKind; 9] = [
        InstrKind::Alu,
        InstrKind::Load,
        InstrKind::Store,
        InstrKind::CondBranch,
        InstrKind::DirectJump,
        InstrKind::IndirectJump,
        InstrKind::Call,
        InstrKind::IndirectCall,
        InstrKind::Return,
    ];

    /// Does this instruction access data memory?
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Store)
    }

    /// Is this any control-flow instruction?
    #[inline]
    pub fn is_branch(self) -> bool {
        !matches!(self, InstrKind::Alu | InstrKind::Load | InstrKind::Store)
    }

    /// The branch class relevant to history updates, if any.
    #[inline]
    pub fn branch_class(self) -> Option<BranchClass> {
        match self {
            InstrKind::CondBranch => Some(BranchClass::Conditional),
            InstrKind::IndirectJump | InstrKind::IndirectCall | InstrKind::Return => {
                Some(BranchClass::UnconditionalIndirect)
            }
            InstrKind::DirectJump | InstrKind::Call => Some(BranchClass::UnconditionalDirect),
            _ => None,
        }
    }

    /// Decodes the `repr(u8)` discriminant back into a kind.
    #[inline]
    pub fn from_u8(v: u8) -> Option<InstrKind> {
        Self::ALL.get(v as usize).copied()
    }
}

/// Branch classes as the CHiRP history registers distinguish them
/// (paper §IV-B): conditional branches update the conditional history;
/// unconditional *indirect* branches update the indirect history;
/// unconditional direct branches update neither (but do steer fetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchClass {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional branch with a register-specified target (incl. returns).
    UnconditionalIndirect,
    /// Unconditional branch with an immediate target.
    UnconditionalDirect,
}

/// One retired instruction, as read from (or generated into) a trace.
///
/// All addresses are full 64-bit virtual addresses; page numbers are derived
/// with [`crate::vpn`]. Non-memory instructions carry `effective_address ==
/// 0`, and non-branches carry `target == 0` / `taken == false`; use
/// [`InstrKind`] predicates rather than sentinel checks where possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual address of the instruction.
    pub pc: u64,
    /// Instruction classification.
    pub kind: InstrKind,
    /// Data virtual address for loads/stores; 0 otherwise.
    pub effective_address: u64,
    /// Actual control-flow target for taken branches/jumps/calls/returns;
    /// 0 otherwise.
    pub target: u64,
    /// Outcome for conditional branches; `true` for taken unconditional
    /// control flow; `false` otherwise.
    pub taken: bool,
}

impl TraceRecord {
    /// A plain ALU instruction at `pc`.
    #[inline]
    pub fn alu(pc: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::Alu, effective_address: 0, target: 0, taken: false }
    }

    /// A load from `ea` issued at `pc`.
    #[inline]
    pub fn load(pc: u64, ea: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::Load, effective_address: ea, target: 0, taken: false }
    }

    /// A store to `ea` issued at `pc`.
    #[inline]
    pub fn store(pc: u64, ea: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::Store, effective_address: ea, target: 0, taken: false }
    }

    /// A conditional branch at `pc` with outcome `taken` and target `target`.
    #[inline]
    pub fn cond_branch(pc: u64, target: u64, taken: bool) -> Self {
        TraceRecord { pc, kind: InstrKind::CondBranch, effective_address: 0, target, taken }
    }

    /// A direct call at `pc` to `target`.
    #[inline]
    pub fn call(pc: u64, target: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::Call, effective_address: 0, target, taken: true }
    }

    /// An indirect call at `pc` to `target`.
    #[inline]
    pub fn indirect_call(pc: u64, target: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::IndirectCall, effective_address: 0, target, taken: true }
    }

    /// A return at `pc` to `target`.
    #[inline]
    pub fn ret(pc: u64, target: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::Return, effective_address: 0, target, taken: true }
    }

    /// A direct jump at `pc` to `target`.
    #[inline]
    pub fn jump(pc: u64, target: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::DirectJump, effective_address: 0, target, taken: true }
    }

    /// An indirect jump at `pc` to `target`.
    #[inline]
    pub fn indirect_jump(pc: u64, target: u64) -> Self {
        TraceRecord { pc, kind: InstrKind::IndirectJump, effective_address: 0, target, taken: true }
    }

    /// Virtual page number of the instruction address.
    #[inline]
    pub fn code_vpn(&self) -> u64 {
        crate::vpn(self.pc)
    }

    /// Virtual page number of the data address, if this is a memory access.
    #[inline]
    pub fn data_vpn(&self) -> Option<u64> {
        self.kind.is_memory().then(|| crate::vpn(self.effective_address))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_through_u8() {
        for kind in InstrKind::ALL {
            assert_eq!(InstrKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(InstrKind::from_u8(9), None);
        assert_eq!(InstrKind::from_u8(255), None);
    }

    #[test]
    fn memory_predicate_matches_kinds() {
        assert!(InstrKind::Load.is_memory());
        assert!(InstrKind::Store.is_memory());
        for kind in [InstrKind::Alu, InstrKind::CondBranch, InstrKind::Call, InstrKind::Return] {
            assert!(!kind.is_memory(), "{kind:?} must not be a memory access");
        }
    }

    #[test]
    fn branch_classes() {
        assert_eq!(InstrKind::CondBranch.branch_class(), Some(BranchClass::Conditional));
        assert_eq!(
            InstrKind::IndirectJump.branch_class(),
            Some(BranchClass::UnconditionalIndirect)
        );
        assert_eq!(
            InstrKind::IndirectCall.branch_class(),
            Some(BranchClass::UnconditionalIndirect)
        );
        assert_eq!(InstrKind::Return.branch_class(), Some(BranchClass::UnconditionalIndirect));
        assert_eq!(InstrKind::Call.branch_class(), Some(BranchClass::UnconditionalDirect));
        assert_eq!(InstrKind::DirectJump.branch_class(), Some(BranchClass::UnconditionalDirect));
        assert_eq!(InstrKind::Alu.branch_class(), None);
        assert_eq!(InstrKind::Load.branch_class(), None);
    }

    #[test]
    fn constructors_set_fields() {
        let l = TraceRecord::load(0x400_000, 0xdead_b000);
        assert_eq!(l.kind, InstrKind::Load);
        assert_eq!(l.data_vpn(), Some(0xdead_b000 >> 12));
        let b = TraceRecord::cond_branch(0x400_004, 0x400_100, true);
        assert!(b.taken);
        assert_eq!(b.data_vpn(), None);
        assert_eq!(b.code_vpn(), 0x400);
    }
}
