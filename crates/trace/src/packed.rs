//! Struct-of-arrays trace storage.
//!
//! A [`TraceRecord`] is 40 bytes with padding, but most of those bytes are
//! zero for most records: only loads/stores carry an effective address and
//! only branches carry a target. [`PackedTrace`] stores each field in its
//! own stream — a dense `u64` PC array, a `u8` kind array, a one-bit-per-
//! record `taken` bitset, and side tables holding effective addresses and
//! targets *only* for the records whose kind defines them. For the
//! workload mixes the suite generates (~25–35 % memory, ~15–25 % branch
//! records) this cuts resident trace memory by roughly two thirds and
//! keeps the simulator's replay loop walking small, contiguous arrays.
//!
//! The packing is lossless for canonical records — records whose
//! `effective_address` is zero unless the kind is a memory access and
//! whose `target` is zero unless the kind is a branch, which is exactly
//! the invariant [`TraceRecord`] documents and the on-disk codec already
//! relies on. Non-canonical field values are dropped, the same way
//! [`crate::write_trace`] drops them.
//!
//! [`TraceSource`] abstracts over packed and flat storage so consumers
//! (the simulator, the codec) accept either without conversion.

use crate::record::{InstrKind, TraceRecord};

/// Struct-of-arrays storage for an instruction trace.
///
/// Build one with [`PackedTraceBuilder`] or [`PackedTrace::from_records`];
/// read it back through [`PackedTrace::iter`], which yields the identical
/// [`TraceRecord`] sequence the trace was built from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedTrace {
    /// Instruction virtual address per record.
    pcs: Vec<u64>,
    /// `InstrKind` discriminant per record.
    kinds: Vec<u8>,
    /// One bit per record: the `taken` flag, 64 records per word.
    taken: Vec<u64>,
    /// Effective addresses, only for records whose kind is a memory access,
    /// in record order.
    eas: Vec<u64>,
    /// Branch targets, only for records whose kind is a branch, in record
    /// order.
    targets: Vec<u64>,
}

impl PackedTrace {
    /// Packs a flat record slice. Inverse of [`PackedTrace::to_records`]
    /// for canonical records (see the module docs).
    pub fn from_records(records: &[TraceRecord]) -> PackedTrace {
        let mut builder = PackedTraceBuilder::with_capacity(records.len());
        for rec in records {
            builder.push(*rec);
        }
        builder.finish()
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when the trace holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Iterates the trace, materialising one [`TraceRecord`] per step.
    pub fn iter(&self) -> PackedIter<'_> {
        PackedIter { trace: self, idx: 0, ea: 0, target: 0 }
    }

    /// Iterates the trace as columnar [`TraceChunk`]s of at most
    /// `chunk_size` records each. The chunks partition the trace in order:
    /// concatenating the record sequence of every chunk reproduces
    /// [`Self::iter`] exactly (tail chunk included; an empty trace yields
    /// no chunks). Consumers stream the column slices directly instead of
    /// materialising a [`TraceRecord`] per step.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn chunks(&self, chunk_size: usize) -> TraceChunks<'_> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        TraceChunks { trace: self, chunk_size, idx: 0, ea: 0, target: 0 }
    }

    /// Unpacks into a flat record vector.
    pub fn to_records(&self) -> Vec<TraceRecord> {
        self.iter().collect()
    }

    /// Bytes of heap payload this trace keeps resident — the quantity the
    /// suite runner's memory budget accounts in.
    pub fn resident_bytes(&self) -> u64 {
        (self.pcs.len() * 8
            + self.kinds.len()
            + self.taken.len() * 8
            + self.eas.len() * 8
            + self.targets.len() * 8) as u64
    }

    /// Conservative upper bound on [`Self::resident_bytes`] for a trace of
    /// `len` records, assuming every record carries both side-table
    /// entries. Used for admission control before a trace exists.
    pub fn estimate_bytes(len: usize) -> u64 {
        (len * (8 + 1 + 8 + 8) + len.div_ceil(64) * 8) as u64
    }

    #[inline]
    fn taken_bit(&self, idx: usize) -> bool {
        self.taken[idx / 64] >> (idx % 64) & 1 != 0
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = TraceRecord;
    type IntoIter = PackedIter<'a>;

    fn into_iter(self) -> PackedIter<'a> {
        self.iter()
    }
}

/// Incrementally builds a [`PackedTrace`]; the generators' [`Emitter`]
/// (see [`crate::gen`]) and the codec decoder both feed one of these.
///
/// [`Emitter`]: crate::gen::Emitter
#[derive(Debug, Default)]
pub struct PackedTraceBuilder {
    trace: PackedTrace,
}

impl PackedTraceBuilder {
    /// An empty builder.
    pub fn new() -> PackedTraceBuilder {
        PackedTraceBuilder::default()
    }

    /// An empty builder with capacity reserved for `len` records.
    pub fn with_capacity(len: usize) -> PackedTraceBuilder {
        PackedTraceBuilder {
            trace: PackedTrace {
                pcs: Vec::with_capacity(len),
                kinds: Vec::with_capacity(len),
                taken: Vec::with_capacity(len.div_ceil(64)),
                // Side tables grow on demand; mixes vary too much for a
                // useful up-front estimate.
                eas: Vec::new(),
                targets: Vec::new(),
            },
        }
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        let idx = self.trace.pcs.len();
        self.trace.pcs.push(rec.pc);
        self.trace.kinds.push(rec.kind as u8);
        if idx.is_multiple_of(64) {
            self.trace.taken.push(0);
        }
        if rec.taken {
            *self.trace.taken.last_mut().expect("word pushed above") |= 1 << (idx % 64);
        }
        if rec.kind.is_memory() {
            self.trace.eas.push(rec.effective_address);
        }
        if rec.kind.is_branch() {
            self.trace.targets.push(rec.target);
        }
    }

    /// Records pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True when nothing has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finalises the trace.
    pub fn finish(self) -> PackedTrace {
        self.trace
    }
}

/// Iterator over a [`PackedTrace`], reassembling records from the streams.
#[derive(Debug, Clone)]
pub struct PackedIter<'a> {
    trace: &'a PackedTrace,
    idx: usize,
    ea: usize,
    target: usize,
}

impl Iterator for PackedIter<'_> {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        let idx = self.idx;
        if idx >= self.trace.len() {
            return None;
        }
        self.idx += 1;
        let kind = InstrKind::from_u8(self.trace.kinds[idx])
            .expect("builder stores only valid kind discriminants");
        let effective_address = if kind.is_memory() {
            let ea = self.trace.eas[self.ea];
            self.ea += 1;
            ea
        } else {
            0
        };
        let target = if kind.is_branch() {
            let t = self.trace.targets[self.target];
            self.target += 1;
            t
        } else {
            0
        };
        Some(TraceRecord {
            pc: self.trace.pcs[idx],
            kind,
            effective_address,
            target,
            taken: self.trace.taken_bit(idx),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.idx;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PackedIter<'_> {}

/// One columnar window of a [`PackedTrace`]: struct-of-arrays slices over
/// a contiguous run of records, produced by [`PackedTrace::chunks`].
///
/// `pcs` and `kinds` have one element per record. `eas` and `targets`
/// hold side-table entries for exactly the memory / branch records of this
/// chunk, in record order — a consumer walking `kinds` advances its own
/// cursor into each. `taken(i)` reads record `i`'s taken bit (defined for
/// every record, exactly as [`PackedIter`] yields it).
#[derive(Debug, Clone, Copy)]
pub struct TraceChunk<'a> {
    /// Absolute index of the chunk's first record in the source trace
    /// (addresses the shared taken bitset).
    base: usize,
    pcs: &'a [u64],
    kinds: &'a [u8],
    /// The whole trace's taken bitset words, indexed by absolute record
    /// index.
    taken: &'a [u64],
    eas: &'a [u64],
    targets: &'a [u64],
}

impl<'a> TraceChunk<'a> {
    /// Number of records in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when the chunk holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Per-record instruction addresses.
    #[inline]
    pub fn pcs(&self) -> &'a [u64] {
        self.pcs
    }

    /// Per-record [`InstrKind`] discriminants.
    #[inline]
    pub fn kinds(&self) -> &'a [u8] {
        self.kinds
    }

    /// Effective addresses of this chunk's memory records, in order.
    #[inline]
    pub fn eas(&self) -> &'a [u64] {
        self.eas
    }

    /// Targets of this chunk's branch records, in order.
    #[inline]
    pub fn targets(&self) -> &'a [u64] {
        self.targets
    }

    /// The taken bit of record `i` (chunk-relative).
    #[inline]
    pub fn taken(&self, i: usize) -> bool {
        debug_assert!(i < self.len());
        let idx = self.base + i;
        self.taken[idx / 64] >> (idx % 64) & 1 != 0
    }

    /// Splits the chunk into the first `k` records and the rest, keeping
    /// both halves' side tables consistent. Used by the simulator to open
    /// the measured window when the warmup boundary falls inside a chunk.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()`.
    pub fn split_at(&self, k: usize) -> (TraceChunk<'a>, TraceChunk<'a>) {
        let (mem, branch) = count_kinds(&self.kinds[..k]);
        let head = TraceChunk {
            base: self.base,
            pcs: &self.pcs[..k],
            kinds: &self.kinds[..k],
            taken: self.taken,
            eas: &self.eas[..mem],
            targets: &self.targets[..branch],
        };
        let tail = TraceChunk {
            base: self.base + k,
            pcs: &self.pcs[k..],
            kinds: &self.kinds[k..],
            taken: self.taken,
            eas: &self.eas[mem..],
            targets: &self.targets[branch..],
        };
        (head, tail)
    }

    /// Iterates the chunk's records, materialising each from the columns —
    /// the reference semantics the columnar consumers must match.
    pub fn records(&self) -> ChunkRecords<'a> {
        ChunkRecords { chunk: *self, idx: 0, ea: 0, target: 0 }
    }

    /// A streaming cursor over this chunk for block decoding; see
    /// [`ChunkCursor`].
    pub fn cursor(&self) -> ChunkCursor<'a> {
        ChunkCursor { chunk: *self, idx: 0, ea: 0, target: 0 }
    }
}

/// Dense struct-of-arrays scratch for a block of decoded records.
///
/// Unlike the packed side tables, every column here has one slot per
/// record: `eas[i]` is 0 unless record `i` is a memory access and
/// `targets[i]` is 0 unless it is a branch — exactly the canonical
/// [`TraceRecord`] field values. Consumers that software-pipeline several
/// traces (the lane engine in `chirp-sim`) decode a block per lane up
/// front, then walk the dense columns in an interleaved loop without any
/// side-table cursor bookkeeping on the hot path.
#[derive(Debug, Clone, Default)]
pub struct DecodedBlock {
    /// Instruction address per record.
    pub pcs: Vec<u64>,
    /// [`InstrKind`] per record.
    pub kinds: Vec<InstrKind>,
    /// Effective address per record (0 for non-memory records).
    pub eas: Vec<u64>,
    /// Branch target per record (0 for non-branch records).
    pub targets: Vec<u64>,
    /// Taken flag per record.
    pub taken: Vec<bool>,
}

impl DecodedBlock {
    /// An empty block with capacity for `n` records per column.
    pub fn with_capacity(n: usize) -> DecodedBlock {
        DecodedBlock {
            pcs: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            eas: Vec::with_capacity(n),
            targets: Vec::with_capacity(n),
            taken: Vec::with_capacity(n),
        }
    }

    /// Records currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when no records are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The record at `i`, reassembled from the columns.
    #[inline]
    pub fn record(&self, i: usize) -> TraceRecord {
        TraceRecord {
            pc: self.pcs[i],
            kind: self.kinds[i],
            effective_address: self.eas[i],
            target: self.targets[i],
            taken: self.taken[i],
        }
    }

    fn clear(&mut self) {
        self.pcs.clear();
        self.kinds.clear();
        self.eas.clear();
        self.targets.clear();
        self.taken.clear();
    }
}

/// Streaming block decoder over one [`TraceChunk`].
///
/// Produced by [`TraceChunk::cursor`]. Each [`decode_into`] call expands
/// the next `max` records of the chunk into a dense [`DecodedBlock`],
/// advancing the cursor's side-table positions — so a consumer can pull
/// the chunk in arbitrary block sizes and the concatenation of the blocks
/// reproduces [`TraceChunk::records`] exactly.
///
/// [`decode_into`]: ChunkCursor::decode_into
#[derive(Debug, Clone)]
pub struct ChunkCursor<'a> {
    chunk: TraceChunk<'a>,
    idx: usize,
    ea: usize,
    target: usize,
}

impl ChunkCursor<'_> {
    /// Records left to decode.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.chunk.len() - self.idx
    }

    /// Decodes up to `max` records into `block` (replacing its previous
    /// contents) and returns how many were decoded — 0 once the chunk is
    /// exhausted.
    pub fn decode_into(&mut self, block: &mut DecodedBlock, max: usize) -> usize {
        block.clear();
        let n = self.remaining().min(max);
        let start = self.idx;
        let pcs = &self.chunk.pcs[start..start + n];
        let kinds = &self.chunk.kinds[start..start + n];
        block.pcs.extend_from_slice(pcs);
        for (i, &k) in kinds.iter().enumerate() {
            let kind = InstrKind::from_u8(k).expect("builder stores only valid kind discriminants");
            block.kinds.push(kind);
            let ea = if kind.is_memory() {
                let ea = self.chunk.eas[self.ea];
                self.ea += 1;
                ea
            } else {
                0
            };
            block.eas.push(ea);
            let target = if kind.is_branch() {
                let t = self.chunk.targets[self.target];
                self.target += 1;
                t
            } else {
                0
            };
            block.targets.push(target);
            block.taken.push(self.chunk.taken(start + i));
        }
        self.idx += n;
        n
    }
}

/// Iterator over the [`TraceChunk`]s of a trace; see
/// [`PackedTrace::chunks`].
#[derive(Debug, Clone)]
pub struct TraceChunks<'a> {
    trace: &'a PackedTrace,
    chunk_size: usize,
    idx: usize,
    ea: usize,
    target: usize,
}

impl<'a> Iterator for TraceChunks<'a> {
    type Item = TraceChunk<'a>;

    fn next(&mut self) -> Option<TraceChunk<'a>> {
        let start = self.idx;
        if start >= self.trace.len() {
            return None;
        }
        let end = (start + self.chunk_size).min(self.trace.len());
        let (mem, branch) = count_kinds(&self.trace.kinds[start..end]);
        let chunk = TraceChunk {
            base: start,
            pcs: &self.trace.pcs[start..end],
            kinds: &self.trace.kinds[start..end],
            taken: &self.trace.taken,
            eas: &self.trace.eas[self.ea..self.ea + mem],
            targets: &self.trace.targets[self.target..self.target + branch],
        };
        self.idx = end;
        self.ea += mem;
        self.target += branch;
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.trace.len() - self.idx).div_ceil(self.chunk_size);
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceChunks<'_> {}

/// Records that carry a side-table entry in `kinds`: (memory, branch).
#[inline]
fn count_kinds(kinds: &[u8]) -> (usize, usize) {
    let mut mem = 0;
    let mut branch = 0;
    for &k in kinds {
        let kind = InstrKind::from_u8(k).expect("builder stores only valid kind discriminants");
        mem += usize::from(kind.is_memory());
        branch += usize::from(kind.is_branch());
    }
    (mem, branch)
}

/// Iterator over one chunk's records; see [`TraceChunk::records`].
#[derive(Debug, Clone)]
pub struct ChunkRecords<'a> {
    chunk: TraceChunk<'a>,
    idx: usize,
    ea: usize,
    target: usize,
}

impl Iterator for ChunkRecords<'_> {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        let idx = self.idx;
        if idx >= self.chunk.len() {
            return None;
        }
        self.idx += 1;
        let kind = InstrKind::from_u8(self.chunk.kinds[idx])
            .expect("builder stores only valid kind discriminants");
        let effective_address = if kind.is_memory() {
            let ea = self.chunk.eas[self.ea];
            self.ea += 1;
            ea
        } else {
            0
        };
        let target = if kind.is_branch() {
            let t = self.chunk.targets[self.target];
            self.target += 1;
            t
        } else {
            0
        };
        Some(TraceRecord {
            pc: self.chunk.pcs[idx],
            kind,
            effective_address,
            target,
            taken: self.chunk.taken(idx),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.chunk.len() - self.idx;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ChunkRecords<'_> {}

/// Anything the simulator can replay: a length plus a record stream.
///
/// Implemented for flat slices/vectors and for [`PackedTrace`], so
/// `Simulator::run` (and every experiment built on it) accepts either
/// representation through one code path.
pub trait TraceSource {
    /// Iterator type yielding the records in order.
    type Records<'a>: Iterator<Item = TraceRecord> + 'a
    where
        Self: 'a;

    /// Number of records.
    fn len(&self) -> usize;

    /// True when the trace holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The records, first to last.
    fn records(&self) -> Self::Records<'_>;
}

impl TraceSource for [TraceRecord] {
    type Records<'a> = std::iter::Copied<std::slice::Iter<'a, TraceRecord>>;

    fn len(&self) -> usize {
        <[TraceRecord]>::len(self)
    }

    fn records(&self) -> Self::Records<'_> {
        self.iter().copied()
    }
}

impl TraceSource for Vec<TraceRecord> {
    type Records<'a> = std::iter::Copied<std::slice::Iter<'a, TraceRecord>>;

    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn records(&self) -> Self::Records<'_> {
        self.as_slice().iter().copied()
    }
}

impl TraceSource for PackedTrace {
    type Records<'a> = PackedIter<'a>;

    fn len(&self) -> usize {
        PackedTrace::len(self)
    }

    fn records(&self) -> Self::Records<'_> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::size_of;

    fn mixed_trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord::alu(0x400000),
            TraceRecord::load(0x400004, 0x7fff_0000_1234),
            TraceRecord::store(0x400008, 0x1_0000_0000),
            TraceRecord::cond_branch(0x40000c, 0x400000, true),
            TraceRecord::cond_branch(0x40000c, 0x400010, false),
            TraceRecord::call(0x400010, 0x500000),
            TraceRecord::ret(0x500040, 0x400014),
            TraceRecord::indirect_jump(0x400014, 0x600000),
        ]
    }

    #[test]
    fn roundtrips_mixed_records() {
        let trace = mixed_trace();
        let packed = PackedTrace::from_records(&trace);
        assert_eq!(packed.len(), trace.len());
        assert_eq!(packed.to_records(), trace);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let packed = PackedTrace::from_records(&[]);
        assert!(packed.is_empty());
        assert_eq!(packed.iter().count(), 0);
        assert_eq!(packed.resident_bytes(), 0);
    }

    #[test]
    fn taken_bits_survive_across_word_boundaries() {
        // 200 records straddle three bitset words; alternate taken flags.
        let trace: Vec<TraceRecord> = (0..200)
            .map(|i| TraceRecord::cond_branch(0x400000 + i * 4, 0x400000, i % 3 == 0))
            .collect();
        assert_eq!(PackedTrace::from_records(&trace).to_records(), trace);
    }

    #[test]
    fn resident_bytes_beat_flat_storage_by_half() {
        // A representative mix: ~60 % ALU, ~25 % memory, ~15 % branches.
        let trace: Vec<TraceRecord> = (0..10_000u64)
            .map(|i| match i % 20 {
                0..=11 => TraceRecord::alu(0x400000 + i * 4),
                12..=16 => TraceRecord::load(0x400000 + i * 4, 0x7000_0000 + i * 8),
                _ => TraceRecord::cond_branch(0x400000 + i * 4, 0x400000, i % 2 == 0),
            })
            .collect();
        let packed = PackedTrace::from_records(&trace);
        let flat = (trace.len() * size_of::<TraceRecord>()) as u64;
        assert!(
            packed.resident_bytes() * 2 <= flat,
            "packed {} bytes vs flat {} bytes: must save at least half",
            packed.resident_bytes(),
            flat
        );
    }

    #[test]
    fn estimate_bounds_actual_usage() {
        let trace = mixed_trace();
        let packed = PackedTrace::from_records(&trace);
        assert!(packed.resident_bytes() <= PackedTrace::estimate_bytes(trace.len()));
        assert_eq!(PackedTrace::estimate_bytes(0), 0);
    }

    #[test]
    fn iterator_is_exact_size() {
        let packed = PackedTrace::from_records(&mixed_trace());
        let mut it = packed.iter();
        assert_eq!(it.len(), 8);
        it.next();
        assert_eq!(it.len(), 7);
    }

    #[test]
    fn chunks_partition_with_tail() {
        let trace = mixed_trace(); // 8 records
        let packed = PackedTrace::from_records(&trace);
        let chunks: Vec<_> = packed.chunks(3).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).collect::<Vec<_>>(), vec![3, 3, 2]);
        let rebuilt: Vec<TraceRecord> = chunks.iter().flat_map(|c| c.records()).collect();
        assert_eq!(rebuilt, trace);
    }

    #[test]
    fn chunks_of_empty_trace_yield_nothing() {
        let packed = PackedTrace::from_records(&[]);
        assert_eq!(packed.chunks(16).count(), 0);
    }

    #[test]
    fn chunk_split_at_keeps_side_tables_consistent() {
        let trace = mixed_trace();
        let packed = PackedTrace::from_records(&trace);
        let chunk = packed.chunks(trace.len()).next().expect("one chunk");
        for k in 0..=trace.len() {
            let (head, tail) = chunk.split_at(k);
            assert_eq!(head.len(), k);
            assert_eq!(tail.len(), trace.len() - k);
            let rebuilt: Vec<TraceRecord> = head.records().chain(tail.records()).collect();
            assert_eq!(rebuilt, trace, "split at {k} must not lose or shift records");
        }
    }

    #[test]
    fn cursor_block_decode_matches_record_iteration() {
        let trace = mixed_trace();
        let packed = PackedTrace::from_records(&trace);
        let chunk = packed.chunks(trace.len()).next().expect("one chunk");
        for block_size in 1..=trace.len() + 1 {
            let mut cursor = chunk.cursor();
            let mut block = DecodedBlock::with_capacity(block_size);
            let mut rebuilt = Vec::new();
            loop {
                let n = cursor.decode_into(&mut block, block_size);
                if n == 0 {
                    break;
                }
                assert_eq!(block.len(), n);
                for i in 0..n {
                    rebuilt.push(block.record(i));
                }
            }
            assert_eq!(cursor.remaining(), 0);
            assert_eq!(rebuilt, trace, "block size {block_size} must reproduce the chunk");
        }
    }

    #[test]
    fn cursor_survives_warmup_split_halves() {
        let trace = mixed_trace();
        let packed = PackedTrace::from_records(&trace);
        let chunk = packed.chunks(trace.len()).next().expect("one chunk");
        for k in 0..=trace.len() {
            let (head, tail) = chunk.split_at(k);
            let mut rebuilt = Vec::new();
            for part in [head, tail] {
                let mut cursor = part.cursor();
                let mut block = DecodedBlock::default();
                while cursor.decode_into(&mut block, 3) > 0 {
                    for i in 0..block.len() {
                        rebuilt.push(block.record(i));
                    }
                }
            }
            assert_eq!(rebuilt, trace, "cursor over split at {k} must not shift side tables");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = PackedTrace::from_records(&mixed_trace()).chunks(0);
    }

    #[test]
    fn trace_source_is_uniform_over_representations() {
        let trace = mixed_trace();
        let packed = PackedTrace::from_records(&trace);
        fn collect<T: TraceSource + ?Sized>(t: &T) -> Vec<TraceRecord> {
            t.records().collect()
        }
        assert_eq!(collect(trace.as_slice()), trace);
        assert_eq!(collect(&trace), trace);
        assert_eq!(collect(&packed), trace);
        assert_eq!(TraceSource::len(&packed), TraceSource::len(&trace));
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Canonical records: side-table fields zero unless the kind
        /// defines them — the invariant `TraceRecord` documents and the
        /// codec shares.
        fn arb_record() -> impl Strategy<Value = TraceRecord> {
            (0usize..InstrKind::ALL.len(), any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>())
                .prop_map(|(k, pc, ea, target, taken)| {
                    let kind = InstrKind::ALL[k];
                    TraceRecord {
                        pc,
                        kind,
                        effective_address: if kind.is_memory() { ea } else { 0 },
                        target: if kind.is_branch() { target } else { 0 },
                        taken,
                    }
                })
        }

        proptest! {
            #[test]
            fn pack_iterate_roundtrips_exactly(trace in vec(arb_record(), 0..300usize)) {
                let packed = PackedTrace::from_records(&trace);
                prop_assert_eq!(packed.len(), trace.len());
                prop_assert_eq!(packed.to_records(), trace);
            }

            #[test]
            fn packed_never_exceeds_estimate(trace in vec(arb_record(), 0..300usize)) {
                let packed = PackedTrace::from_records(&trace);
                prop_assert!(packed.resident_bytes() <= PackedTrace::estimate_bytes(trace.len()));
            }

            /// The columnar-path equivalence satellite: chunked iteration
            /// (any chunk size, tail chunks, empty traces) yields the
            /// identical record sequence as the per-record `TraceSource`
            /// path.
            #[test]
            fn chunked_iteration_matches_per_record_path(
                trace in vec(arb_record(), 0..300usize),
                chunk_size in 1usize..80,
            ) {
                let packed = PackedTrace::from_records(&trace);
                let per_record: Vec<TraceRecord> = packed.records().collect();
                let chunked: Vec<TraceRecord> =
                    packed.chunks(chunk_size).flat_map(|c| c.records()).collect();
                prop_assert_eq!(&chunked, &per_record);
                prop_assert_eq!(&chunked, &trace);
                // The chunks partition: lengths sum to the trace length and
                // every chunk except possibly the last is full.
                let lens: Vec<usize> = packed.chunks(chunk_size).map(|c| c.len()).collect();
                prop_assert_eq!(lens.iter().sum::<usize>(), trace.len());
                for (i, &l) in lens.iter().enumerate() {
                    if i + 1 < lens.len() {
                        prop_assert_eq!(l, chunk_size);
                    } else {
                        prop_assert!(l > 0 && l <= chunk_size);
                    }
                }
            }

            /// Block decoding through `ChunkCursor` at any block size over
            /// any chunking yields the identical record sequence — the
            /// contract the lane engine's per-lane decode phase rests on.
            #[test]
            fn cursor_decode_matches_per_record_path(
                trace in vec(arb_record(), 0..300usize),
                chunk_size in 1usize..80,
                block_size in 1usize..48,
            ) {
                let packed = PackedTrace::from_records(&trace);
                let mut rebuilt = Vec::new();
                let mut block = DecodedBlock::with_capacity(block_size);
                for chunk in packed.chunks(chunk_size) {
                    let mut cursor = chunk.cursor();
                    while cursor.decode_into(&mut block, block_size) > 0 {
                        for i in 0..block.len() {
                            rebuilt.push(block.record(i));
                        }
                    }
                }
                prop_assert_eq!(rebuilt, trace);
            }

            /// Splitting any chunk at any point preserves the sequence —
            /// the warmup-boundary case the simulator relies on.
            #[test]
            fn chunk_split_preserves_sequence(
                trace in vec(arb_record(), 1..200usize),
                split in 0usize..200,
            ) {
                let packed = PackedTrace::from_records(&trace);
                let chunk = packed.chunks(trace.len()).next().expect("non-empty");
                let k = split % (trace.len() + 1);
                let (head, tail) = chunk.split_at(k);
                let rebuilt: Vec<TraceRecord> =
                    head.records().chain(tail.records()).collect();
                prop_assert_eq!(rebuilt, trace);
            }
        }
    }
}
