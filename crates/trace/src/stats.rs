//! Summary statistics over a trace — used by tests, the suite builder and
//! the experiment reports to sanity-check generated workloads.

use crate::record::{InstrKind, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregate statistics for a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total records.
    pub instructions: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Taken conditional branches.
    pub cond_taken: u64,
    /// Unconditional control flow (jumps, calls, returns).
    pub uncond_branches: u64,
    /// Distinct instruction pages.
    pub code_pages: u64,
    /// Distinct data pages.
    pub data_pages: u64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    pub fn from_trace(trace: &[TraceRecord]) -> Self {
        let mut stats = TraceStats::default();
        let mut code = HashSet::new();
        let mut data = HashSet::new();
        for r in trace {
            stats.instructions += 1;
            code.insert(r.code_vpn());
            match r.kind {
                InstrKind::Load => {
                    stats.loads += 1;
                }
                InstrKind::Store => {
                    stats.stores += 1;
                }
                InstrKind::CondBranch => {
                    stats.cond_branches += 1;
                    if r.taken {
                        stats.cond_taken += 1;
                    }
                }
                InstrKind::Alu => {}
                _ => {
                    stats.uncond_branches += 1;
                }
            }
            if let Some(v) = r.data_vpn() {
                data.insert(v);
            }
        }
        stats.code_pages = code.len() as u64;
        stats.data_pages = data.len() as u64;
        stats
    }

    /// Fraction of instructions that access data memory.
    pub fn memory_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.instructions as f64
    }

    /// Fraction of instructions that are branches of any kind.
    pub fn branch_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.cond_branches + self.uncond_branches) as f64 / self.instructions as f64
    }

    /// Total data footprint in pages times the page size, in bytes.
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_pages * crate::PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_each_kind() {
        let trace = vec![
            TraceRecord::alu(0x1000),
            TraceRecord::load(0x1004, 0xa000),
            TraceRecord::store(0x1008, 0xb000),
            TraceRecord::cond_branch(0x100c, 0x1000, true),
            TraceRecord::cond_branch(0x100c, 0x1010, false),
            TraceRecord::call(0x1010, 0x2000),
            TraceRecord::ret(0x2004, 0x1014),
        ];
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.instructions, 7);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.cond_branches, 2);
        assert_eq!(s.cond_taken, 1);
        assert_eq!(s.uncond_branches, 2);
        assert_eq!(s.code_pages, 2);
        assert_eq!(s.data_pages, 2);
        assert!((s.memory_ratio() - 2.0 / 7.0).abs() < 1e-12);
        assert!((s.branch_ratio() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::from_trace(&[]);
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.memory_ratio(), 0.0);
        assert_eq!(s.branch_ratio(), 0.0);
    }
}
