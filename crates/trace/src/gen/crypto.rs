//! Crypto-style workload: a tight kernel that streams input/output while
//! repeatedly consulting resident lookup tables (key schedule, S-boxes).
//!
//! Table pages are live for the whole run; input/output pages die as soon
//! as the block cursor passes. Table and stream accesses use *different*
//! PCs here (a realistic cipher inlines its table lookups), so PC-based
//! prediction has a fair chance on this family — the suite deliberately
//! mixes families where PC signatures do and do not work.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the streaming cipher kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CryptoStream {
    /// Resident lookup-table pages (live working set).
    pub table_pages: u64,
    /// Streamed input region in pages.
    pub input_pages: u64,
    /// Table lookups per processed block.
    pub lookups_per_block: u32,
    /// Bytes per processed block (one input load + one output store).
    pub block_bytes: u64,
}

impl Default for CryptoStream {
    fn default() -> Self {
        CryptoStream {
            table_pages: 256,
            input_pages: 1 << 15,
            lookups_per_block: 4,
            block_bytes: 64,
        }
    }
}

impl WorkloadGen for CryptoStream {
    fn name(&self) -> String {
        format!("crypto.stream.t{}l{}", self.table_pages, self.lookups_per_block)
    }

    fn category(&self) -> Category {
        Category::Crypto
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut asp = AddressSpace::new();
        let kernel = CodeBlock::new(asp.code_region(1));
        let table_base = asp.data_region(self.table_pages);
        let input_base = asp.data_region(self.input_pages);
        let output_base = asp.data_region(self.input_pages);

        let mut cursor = 0u64;
        let blocks_per_page = PAGE_SIZE / self.block_bytes.max(1);

        while !em.is_full() {
            let page = cursor / blocks_per_page % self.input_pages;
            let off = cursor % blocks_per_page * self.block_bytes;
            cursor += 1;
            // Load input block.
            em.push(TraceRecord::load(kernel.pc(0), input_base + page * PAGE_SIZE + off));
            // Rounds: table lookups at a dedicated PC.
            for r in 0..self.lookups_per_block {
                let tpage = rng.gen_range(0..self.table_pages);
                let tslot = rng.gen_range(0..64u64);
                em.push(TraceRecord::alu(kernel.pc(1)));
                em.push(TraceRecord::load(
                    kernel.pc(2),
                    table_base + tpage * PAGE_SIZE + tslot * 64,
                ));
                let last = r + 1 == self.lookups_per_block;
                em.push(TraceRecord::cond_branch(kernel.pc(3), kernel.pc(1), !last));
            }
            // Store output block.
            em.push(TraceRecord::store(kernel.pc(4), output_base + page * PAGE_SIZE + off));
            // Outer block loop backedge.
            em.push(TraceRecord::cond_branch(kernel.pc(5), kernel.pc(0), true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InstrKind;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let g = CryptoStream::default();
        assert_eq!(g.generate(10_000, 4), g.generate(10_000, 4));
    }

    #[test]
    fn table_pages_dominate_reuse() {
        let g = CryptoStream { table_pages: 32, input_pages: 1 << 14, ..Default::default() };
        let t = g.generate(100_000, 5);
        let mut visits: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *visits.entry(v).or_insert(0) += 1;
            }
        }
        let mut sorted: Vec<u64> = visits.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // The 32 table pages absorb the most visits by far.
        assert!(sorted[31] > 10 * sorted[40.min(sorted.len() - 1)]);
    }

    #[test]
    fn stream_and_table_loads_use_distinct_pcs() {
        let g = CryptoStream::default();
        let t = g.generate(5_000, 0);
        let pcs: std::collections::HashSet<u64> =
            t.iter().filter(|r| r.kind == InstrKind::Load).map(|r| r.pc).collect();
        assert_eq!(pcs.len(), 2, "input loads and table loads have their own PCs");
    }
}
