//! Mixed-context copy kernel: the workload family that isolates the paper's
//! central claim.
//!
//! A shared leaf routine (`touch`: load + store + return) moves cache lines
//! on behalf of two different call sites:
//!
//! * **site A** copies inside a *resident* buffer that is re-visited phase
//!   after phase — its pages are live and worth keeping in the L2 TLB;
//! * **site B** streams through a huge region — its pages are dead the
//!   moment the cursor leaves them.
//!
//! Because the loads and stores execute at the *same PCs* for both sites, a
//! PC-indexed predictor (SHiP) cannot separate live from dead pages and its
//! counters saturate (paper Observation 2). The calling context is, however,
//! fully visible in control-flow history: each site drives the leaf from its
//! own loop, so the conditional-branch history (branch PC bits [11:4]) and
//! the path history differ between contexts — exactly the signal CHiRP's
//! signature is designed to capture (paper §II-E, §IV-B).

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the mixed-context copy kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextCopy {
    /// Pages in the resident (hot) buffer re-visited by site A.
    pub hot_pages: u64,
    /// Pages in the streaming region consumed by site B before wrapping.
    pub stream_pages: u64,
    /// Pages copied per call to the shared helper.
    pub pages_per_call: u64,
    /// Site-A calls per super-iteration (hot re-visits).
    pub hot_calls: u32,
    /// Site-B calls per super-iteration (streaming).
    pub stream_calls: u32,
    /// Copy granularity in bytes (one load + one store per line).
    pub line_bytes: u64,
    /// Every `verify_every` site-B calls, a verify pass re-reads the pages
    /// just streamed (through the same shared leaf, from its own call
    /// site). This gives streaming pages exactly one *delayed* reuse before
    /// they die — the coarse-granularity pattern of the paper's
    /// Observation 2 that saturates PC-indexed hit predictors. 0 disables.
    pub verify_every: u32,
}

impl Default for ContextCopy {
    fn default() -> Self {
        // Sized so several hot-reuse cycles complete within a 1M-instruction
        // window: one super-iteration is ~10K instructions, the hot buffer
        // is fully re-visited every 4 iterations.
        ContextCopy {
            hot_pages: 512,
            stream_pages: 1 << 16,
            pages_per_call: 8,
            hot_calls: 16,
            stream_calls: 32,
            line_bytes: 512,
            verify_every: 8,
        }
    }
}

impl WorkloadGen for ContextCopy {
    fn name(&self) -> String {
        format!("mixed.ctxcopy.h{}s{}c{}", self.hot_pages, self.stream_calls, self.pages_per_call)
    }

    fn category(&self) -> Category {
        Category::Mixed
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC7C0);
        let mut asp = AddressSpace::new();
        let main_fn = CodeBlock::new(asp.code_region(1));
        let site_a = CodeBlock::new(asp.code_region(1));
        let site_b = CodeBlock::new(asp.code_region(1));
        let site_v = CodeBlock::new(asp.code_region(1));
        let leaf = CodeBlock::new(asp.code_region(1));
        let hot_base = asp.data_region(self.hot_pages);
        let stream_base = asp.data_region(self.stream_pages);

        let lines_per_page = PAGE_SIZE / self.line_bytes.max(1);
        let mut hot_cursor = 0u64; // page index within hot buffer
        let mut stream_cursor = 0u64; // page index within stream region

        'outer: loop {
            // --- Site A phase: re-visit the resident buffer -------------
            for _ in 0..self.hot_calls {
                // main: a couple of dispatch instructions, then call site A.
                em.push(TraceRecord::alu(main_fn.pc(0)));
                em.push(TraceRecord::cond_branch(main_fn.pc(1), main_fn.pc(2), false));
                em.push(TraceRecord::call(main_fn.pc(2), site_a.entry()));
                let first_page = hot_cursor;
                self.emit_copy_loop(em, &mut rng, site_a, leaf, |page_off, line| {
                    let page = (first_page + page_off) % self.hot_pages;
                    hot_base + page * PAGE_SIZE + line * self.line_bytes
                });
                hot_cursor = (hot_cursor + self.pages_per_call) % self.hot_pages;
                em.push(TraceRecord::ret(site_a.pc(40), main_fn.pc(3)));
                if em.is_full() {
                    break 'outer;
                }
            }
            // --- Site B phase: stream through the big region ------------
            let mut calls_since_verify = 0u32;
            let mut group_start = stream_cursor;
            // Verify lags one group behind the copy cursor so its re-reads
            // land beyond L1 d-TLB reach but within L2 reach.
            let mut pending_verify: Option<u64> = None;
            for _ in 0..self.stream_calls {
                em.push(TraceRecord::alu(main_fn.pc(4)));
                em.push(TraceRecord::cond_branch(main_fn.pc(5), main_fn.pc(6), true));
                em.push(TraceRecord::call(main_fn.pc(6), site_b.entry()));
                let first_page = stream_cursor;
                self.emit_copy_loop(em, &mut rng, site_b, leaf, |page_off, line| {
                    let page = (first_page + page_off) % self.stream_pages;
                    stream_base + page * PAGE_SIZE + line * self.line_bytes
                });
                stream_cursor = (stream_cursor + self.pages_per_call) % self.stream_pages;
                em.push(TraceRecord::ret(site_b.pc(40), main_fn.pc(7)));
                calls_since_verify += 1;
                // Verify pass: one delayed re-read of each page just
                // streamed, driven from its own call site but touching
                // memory through the same shared leaf.
                if self.verify_every > 0 && calls_since_verify == self.verify_every {
                    let group_pages = u64::from(self.verify_every) * self.pages_per_call;
                    if let Some(start) = pending_verify {
                        em.push(TraceRecord::call(main_fn.pc(8), site_v.entry()));
                        for off in 0..group_pages {
                            let page = (start + off) % self.stream_pages;
                            let addr = stream_base + page * PAGE_SIZE;
                            em.push(TraceRecord::alu(site_v.pc(0)));
                            em.push(TraceRecord::call(site_v.pc(1), leaf.entry()));
                            em.push(TraceRecord::load(leaf.pc(0), addr));
                            em.push(TraceRecord::store(leaf.pc(1), addr + PAGE_SIZE / 2));
                            em.push(TraceRecord::ret(leaf.pc(2), site_v.pc(2)));
                            em.push(TraceRecord::cond_branch(
                                site_v.pc(3),
                                site_v.pc(0),
                                off + 1 != group_pages,
                            ));
                        }
                        em.push(TraceRecord::ret(site_v.pc(4), main_fn.pc(9)));
                    }
                    pending_verify = Some(group_start);
                    calls_since_verify = 0;
                    group_start = stream_cursor;
                }
                if em.is_full() {
                    break 'outer;
                }
            }
            let _ = lines_per_page;
        }
    }
}

impl ContextCopy {
    /// Emits one call's worth of copy iterations driven by `site`'s loop,
    /// with the actual memory accesses issued from the *shared* `leaf`
    /// routine. `addr(page_offset, line)` supplies the source address; the
    /// destination mirrors it at a half-page offset so both stay on the same
    /// page (one page touch per line pair).
    fn emit_copy_loop(
        &self,
        em: &mut Emitter,
        rng: &mut SmallRng,
        site: CodeBlock,
        leaf: CodeBlock,
        addr: impl Fn(u64, u64) -> u64,
    ) {
        let lines_per_page = PAGE_SIZE / self.line_bytes.max(1);
        // Touch every line of every page: load low half, store high half.
        for page_off in 0..self.pages_per_call {
            for line in 0..lines_per_page / 2 {
                let src = addr(page_off, line);
                let dst = src + PAGE_SIZE / 2;
                // Site-specific loop control: induction update + backedge.
                em.push(TraceRecord::alu(site.pc(0)));
                em.push(TraceRecord::call(site.pc(1), leaf.entry()));
                // Shared leaf: the PCs every policy sees on the d-side.
                em.push(TraceRecord::load(leaf.pc(0), src));
                em.push(TraceRecord::store(leaf.pc(1), dst));
                em.push(TraceRecord::ret(leaf.pc(2), site.pc(2)));
                // A data-dependent test (e.g. "byte was zero") whose outcome
                // is noise. Its *PC* is stable — CHiRP's histories record
                // branch PCs, not outcomes (§IV-B), so this only perturbs
                // outcome-based histories like GHRP's.
                em.push(TraceRecord::cond_branch(site.pc(5), site.pc(6), rng.gen_bool(0.3)));
                // Site-specific backedge (branch PC identifies the context).
                let last = page_off + 1 == self.pages_per_call && line + 1 == lines_per_page / 2;
                em.push(TraceRecord::cond_branch(site.pc(3), site.pc(0), !last));
                if em.is_full() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InstrKind;
    use crate::vpn;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let g = ContextCopy::default();
        assert_eq!(g.generate(5_000, 1), g.generate(5_000, 1));
    }

    #[test]
    fn exact_length() {
        let g = ContextCopy::default();
        assert_eq!(g.generate(12_345, 0).len(), 12_345);
    }

    #[test]
    fn shares_leaf_pcs_between_contexts() {
        let g = ContextCopy { hot_calls: 2, stream_calls: 2, ..Default::default() };
        let t = g.generate(200_000, 0);
        // Exactly one load PC and one store PC: the shared leaf.
        let load_pcs: HashSet<u64> =
            t.iter().filter(|r| r.kind == InstrKind::Load).map(|r| r.pc).collect();
        let store_pcs: HashSet<u64> =
            t.iter().filter(|r| r.kind == InstrKind::Store).map(|r| r.pc).collect();
        assert_eq!(load_pcs.len(), 1, "all loads must come from the shared leaf");
        assert_eq!(store_pcs.len(), 1, "all stores must come from the shared leaf");
    }

    #[test]
    fn contexts_use_distinct_branch_pcs() {
        let g = ContextCopy { hot_calls: 1, stream_calls: 1, ..Default::default() };
        let t = g.generate(100_000, 0);
        let branch_pcs: HashSet<u64> =
            t.iter().filter(|r| r.kind == InstrKind::CondBranch).map(|r| r.pc).collect();
        // main dispatch (2) + site A backedge + site B backedge.
        assert!(branch_pcs.len() >= 4, "expected per-site backedges, got {branch_pcs:?}");
    }

    #[test]
    fn hot_pages_are_revisited_and_stream_pages_are_not() {
        let g = ContextCopy {
            hot_pages: 8,
            stream_pages: 1 << 14,
            pages_per_call: 4,
            hot_calls: 4,
            stream_calls: 4,
            line_bytes: 512,
            verify_every: 0,
        };
        let t = g.generate(60_000, 0);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *counts.entry(v).or_insert(0u64) += 1;
            }
        }
        let mut revisited = 0;
        let mut single = 0;
        for (_, c) in counts {
            // 512-byte lines -> 4 line-pairs per page per visit.
            if c > 8 {
                revisited += 1;
            } else {
                single += 1;
            }
        }
        assert!(revisited >= 8, "hot pages must be re-visited (got {revisited})");
        assert!(single > 100, "stream pages must be touched once (got {single})");
    }

    #[test]
    fn code_and_data_pages_disjoint() {
        let g = ContextCopy::default();
        let t = g.generate(20_000, 0);
        let code: HashSet<u64> = t.iter().map(|r| vpn(r.pc)).collect();
        let data: HashSet<u64> = t.iter().filter_map(|r| r.data_vpn()).collect();
        assert!(code.is_disjoint(&data));
    }
}
