//! Web/server-style workload: a large instruction footprint of handler
//! functions dispatched with zipfian popularity.
//!
//! This family pressures the instruction side of the unified L2 TLB: hot
//! handlers' code pages are live, the long tail of cold handlers' pages die
//! after a single request. Each request also touches per-handler data and a
//! shared session region, mirroring asmDB-style front-end-bound server
//! behaviour the paper's introduction motivates.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen, Zipf};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the request-server workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebServe {
    /// Number of handler functions.
    pub handlers: u32,
    /// Code pages per handler.
    pub pages_per_handler: u64,
    /// Zipf exponent for handler popularity.
    pub zipf_s: f64,
    /// Instructions executed per handler code page per request.
    pub instrs_per_page: u32,
    /// Shared session pages (hot data).
    pub session_pages: u64,
    /// Probability (×100) that the next request repeats the same handler —
    /// request-type temporal locality, which makes the recent call chain a
    /// stable context for control-flow-history predictors.
    pub repeat_percent: u32,
}

impl Default for WebServe {
    fn default() -> Self {
        WebServe {
            handlers: 2048,
            pages_per_handler: 1,
            zipf_s: 0.8,
            instrs_per_page: 48,
            session_pages: 32,
            repeat_percent: 70,
        }
    }
}

impl WorkloadGen for WebServe {
    fn name(&self) -> String {
        format!("web.serve.h{}z{:.1}", self.handlers, self.zipf_s)
    }

    fn category(&self) -> Category {
        Category::Web
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x3EB);
        let mut asp = AddressSpace::new();
        let dispatcher = CodeBlock::new(asp.code_region(1));
        let handler_code: Vec<CodeBlock> = (0..self.handlers)
            .map(|_| CodeBlock::new(asp.code_region(self.pages_per_handler)))
            .collect();
        let handler_data: Vec<u64> = (0..self.handlers).map(|_| asp.data_region(1)).collect();
        let session_base = asp.data_region(self.session_pages);

        let zipf = Zipf::new(self.handlers as usize, self.zipf_s);
        let mut h = zipf.sample(&mut rng);

        while !em.is_full() {
            if rng.gen_range(0..100) >= self.repeat_percent {
                h = zipf.sample(&mut rng);
            }
            let code = handler_code[h];
            // Dispatch: table load + indirect call into the handler.
            em.push(TraceRecord::load(dispatcher.pc(0), handler_data[h])); // vtable-ish
            em.push(TraceRecord::indirect_call(dispatcher.pc(1), code.entry()));
            // Handler body: march through its code pages.
            for page in 0..self.pages_per_handler {
                let page_pc0 = code.entry() + page * PAGE_SIZE;
                for i in 0..u64::from(self.instrs_per_page) {
                    let pc = page_pc0 + i * 4;
                    match i % 8 {
                        2 => em.push(TraceRecord::load(
                            pc,
                            handler_data[h] + rng.gen_range(0..PAGE_SIZE / 64) * 64,
                        )),
                        5 => em.push(TraceRecord::load(
                            pc,
                            session_base
                                + rng.gen_range(0..self.session_pages) * PAGE_SIZE
                                + rng.gen_range(0..64) * 64,
                        )),
                        7 => em.push(TraceRecord::cond_branch(pc, pc + 4, rng.gen_bool(0.4))),
                        _ => em.push(TraceRecord::alu(pc)),
                    }
                }
            }
            // Store the response into session state, then return.
            em.push(TraceRecord::store(
                code.pc(u64::from(self.instrs_per_page)),
                session_base + rng.gen_range(0..self.session_pages) * PAGE_SIZE,
            ));
            em.push(TraceRecord::ret(
                code.pc(u64::from(self.instrs_per_page) + 1),
                dispatcher.pc(2),
            ));
            em.push(TraceRecord::cond_branch(dispatcher.pc(3), dispatcher.pc(0), true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpn;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let g = WebServe::default();
        assert_eq!(g.generate(20_000, 2), g.generate(20_000, 2));
        assert_ne!(g.generate(20_000, 2), g.generate(20_000, 3));
    }

    #[test]
    fn large_code_footprint_with_zipf_popularity() {
        let g = WebServe { handlers: 512, ..Default::default() };
        let t = g.generate(300_000, 7);
        let mut code_visits: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            *code_visits.entry(vpn(r.pc)).or_insert(0) += 1;
        }
        assert!(code_visits.len() > 200, "expected a wide code footprint");
        let max = *code_visits.values().max().unwrap();
        let median = {
            let mut v: Vec<u64> = code_visits.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(max > 10 * median, "popularity must be skewed: max={max} median={median}");
    }

    #[test]
    fn dispatch_uses_indirect_calls() {
        let g = WebServe::default();
        let t = g.generate(10_000, 1);
        assert!(t.iter().any(|r| r.kind == crate::record::InstrKind::IndirectCall));
        assert!(t.iter().any(|r| r.kind == crate::record::InstrKind::Return));
    }
}
