//! SPEC-style loop nests sweeping several arrays cyclically.
//!
//! The classic regime for replacement studies: when the combined footprint
//! exceeds TLB reach and pages are revisited cyclically, LRU degenerates to
//! ~0% reuse while thrash-resistant policies retain a resident subset. The
//! generator also keeps a small scalar/stack page set hot, and supports
//! footprints below reach (everything hits — the easy end of the paper's
//! S-curve in Figure 7).

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Parameters for the cyclic loop-nest workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecLoops {
    /// Number of distinct arrays swept in turn.
    pub arrays: u32,
    /// Pages per array.
    pub pages_per_array: u64,
    /// Stride within a page in bytes (one load per stride step).
    pub stride_bytes: u64,
    /// Accesses to the hot scalar page per array element processed.
    pub scalar_every: u32,
}

impl Default for SpecLoops {
    fn default() -> Self {
        SpecLoops { arrays: 4, pages_per_array: 512, stride_bytes: 256, scalar_every: 4 }
    }
}

impl SpecLoops {
    /// Total data footprint in pages (excluding the scalar page).
    pub fn footprint_pages(&self) -> u64 {
        u64::from(self.arrays) * self.pages_per_array
    }
}

impl WorkloadGen for SpecLoops {
    fn name(&self) -> String {
        format!("spec.loops.a{}p{}", self.arrays, self.pages_per_array)
    }

    fn category(&self) -> Category {
        Category::Spec
    }

    fn emit_into(&self, em: &mut Emitter, _seed: u64) {
        let mut asp = AddressSpace::new();
        let kernel = CodeBlock::new(asp.code_region(1));
        let scalar_base = asp.data_region(1);
        let bases: Vec<u64> =
            (0..self.arrays).map(|_| asp.data_region(self.pages_per_array)).collect();

        let steps_per_page = PAGE_SIZE / self.stride_bytes.max(1);
        let mut elem = 0u64;

        'outer: loop {
            for (ai, &base) in bases.iter().enumerate() {
                for page in 0..self.pages_per_array {
                    for step in 0..steps_per_page {
                        let addr = base + page * PAGE_SIZE + step * self.stride_bytes;
                        em.push(TraceRecord::load(kernel.pc(0), addr));
                        em.push(TraceRecord::alu(kernel.pc(1)));
                        if self.scalar_every > 0
                            && elem.is_multiple_of(u64::from(self.scalar_every))
                        {
                            em.push(TraceRecord::store(kernel.pc(2), scalar_base + 64));
                        }
                        elem += 1;
                        let last_step = step + 1 == steps_per_page;
                        em.push(TraceRecord::cond_branch(kernel.pc(3), kernel.pc(0), !last_step));
                    }
                    let last_page = page + 1 == self.pages_per_array;
                    em.push(TraceRecord::cond_branch(
                        kernel.pc(4 + ai as u64),
                        kernel.pc(0),
                        !last_page,
                    ));
                    if em.is_full() {
                        break 'outer;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let g = SpecLoops::default();
        assert_eq!(g.generate(30_000, 0), g.generate(30_000, 99));
    }

    #[test]
    fn footprint_matches_parameters() {
        let g = SpecLoops { arrays: 2, pages_per_array: 16, ..Default::default() };
        // Generate enough to cover both arrays fully.
        let t = g.generate(10_000, 0);
        let data: HashSet<u64> = t.iter().filter_map(|r| r.data_vpn()).collect();
        // 2 arrays x 16 pages + 1 scalar page.
        assert_eq!(data.len() as u64, g.footprint_pages() + 1);
    }

    #[test]
    fn pages_visited_cyclically() {
        let g = SpecLoops { arrays: 2, pages_per_array: 4, stride_bytes: 1024, scalar_every: 0 };
        let t = g.generate(2_000, 0);
        let pages: Vec<u64> = t.iter().filter_map(|r| r.data_vpn()).collect();
        // The same page sequence must repeat after one full sweep.
        let sweep = (4 * (4096 / 1024) * 2) as usize; // pages*steps*arrays = loads per cycle
        assert!(pages.len() > 2 * sweep);
        assert_eq!(pages[..sweep], pages[sweep..2 * sweep]);
    }
}
