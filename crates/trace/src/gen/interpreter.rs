//! Bytecode-interpreter workload: a dispatch loop driven by indirect
//! jumps, where data liveness correlates with the *indirect-branch
//! history* — the third CHiRP signature feature (§IV-B), which the other
//! generators exercise only lightly.
//!
//! The interpreter is *direct-threaded* (computed-goto style): each
//! handler's own epilogue performs the indirect dispatch to the next
//! handler, so the PCs of the last few indirect jumps encode the recent
//! opcode sequence — exactly what CHiRP's indirect history records
//! (branch PCs, not targets). Stack-manipulation opcodes touch a small
//! hot operand-stack region; allocation opcodes stream through a nursery
//! that is never revisited; field accesses hit a zipfian object heap. All
//! three go through the same memory-access helper PCs — only the opcode
//! context identifies which region the helper is about to touch.
//!
//! Not part of the default 870-benchmark grid (the committed experiment
//! numbers predate it); available to examples, tests and custom suites.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen, Zipf};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the interpreter workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interpreter {
    /// Distinct opcode handlers.
    pub opcodes: u32,
    /// Pages in the operand-stack region (hot).
    pub stack_pages: u64,
    /// Pages in the allocation nursery (streamed).
    pub nursery_pages: u64,
    /// Pages in the object heap (zipfian reuse).
    pub heap_pages: u64,
    /// Zipf exponent for heap-object popularity.
    pub heap_zipf: f64,
    /// Fraction (×100) of opcodes that are allocations.
    pub alloc_percent: u32,
    /// Fraction (×100) of opcodes that are field accesses.
    pub field_percent: u32,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            opcodes: 64,
            stack_pages: 96,
            nursery_pages: 1 << 14,
            heap_pages: 1024,
            heap_zipf: 0.9,
            alloc_percent: 25,
            field_percent: 35,
        }
    }
}

impl WorkloadGen for Interpreter {
    fn name(&self) -> String {
        format!("mixed.interp.o{}h{}", self.opcodes, self.heap_pages)
    }

    fn category(&self) -> Category {
        Category::Mixed
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1234_5678);
        let mut asp = AddressSpace::new();
        let dispatch = CodeBlock::new(asp.code_region(1));
        let handlers: Vec<CodeBlock> =
            (0..self.opcodes).map(|_| CodeBlock::new(asp.code_region(1))).collect();
        let touch = CodeBlock::new(asp.code_region(1)); // shared memory helper
        let stack_base = asp.data_region(self.stack_pages);
        let nursery_base = asp.data_region(self.nursery_pages);
        let heap_base = asp.data_region(self.heap_pages);

        let heap_zipf = Zipf::new(self.heap_pages.max(1) as usize, self.heap_zipf);
        let mut nursery_cursor = 0u64;
        let mut stack_depth = 0u64;
        // Direct threading: the dispatch jump executes at the *previous*
        // handler's epilogue PC (the loop header only bootstraps).
        let mut dispatch_pc = dispatch.pc(1);

        // Real bytecode repeats: pre-draw a set of opcode loop bodies; the
        // interpreter picks a body (zipfian) and runs it many times, so
        // dispatch-PC history windows form a small, learnable set of
        // contexts rather than i.i.d. noise.
        let bodies: Vec<Vec<u32>> = (0..16)
            .map(|_| {
                let body_len = rng.gen_range(6..20);
                (0..body_len)
                    .map(|_| {
                        let kind = rng.gen_range(0..100u32);
                        if kind < self.alloc_percent {
                            rng.gen_range(0..self.opcodes / 4) // alloc: low ids
                        } else if kind < self.alloc_percent + self.field_percent {
                            self.opcodes / 4 + rng.gen_range(0..self.opcodes / 4)
                        } else {
                            self.opcodes / 2 + rng.gen_range(0..self.opcodes / 2)
                        }
                    })
                    .collect()
            })
            .collect();
        let body_zipf = Zipf::new(bodies.len(), 0.8);
        let mut body = &bodies[0];
        let mut body_pos = 0usize;
        let mut body_runs = rng.gen_range(8..64u32);

        while !em.is_full() {
            if body_pos >= body.len() {
                body_pos = 0;
                if body_runs == 0 {
                    body = &bodies[body_zipf.sample(&mut rng)];
                    body_runs = rng.gen_range(8..64);
                } else {
                    body_runs -= 1;
                }
            }
            let op = body[body_pos];
            body_pos += 1;
            let kind = if op < self.opcodes / 4 {
                0 // alloc class
            } else if op < self.opcodes / 2 {
                self.alloc_percent // field class
            } else {
                self.alloc_percent + self.field_percent // stack class
            };
            let handler = handlers[op as usize];
            em.push(TraceRecord::load(dispatch.pc(0), stack_base + 8)); // opcode fetch
            em.push(TraceRecord::indirect_jump(dispatch_pc, handler.entry()));
            dispatch_pc = handler.pc(4); // next dispatch runs from this epilogue
                                         // Handler body: a few ALU ops, then the shared memory helper.
            em.push(TraceRecord::alu(handler.pc(0)));
            em.push(TraceRecord::alu(handler.pc(1)));
            em.push(TraceRecord::call(handler.pc(2), touch.entry()));
            let addr = if kind < self.alloc_percent {
                // Allocation: bump the nursery (dead pages).
                nursery_cursor = (nursery_cursor + 1) % (self.nursery_pages * 8);
                nursery_base + nursery_cursor / 8 * PAGE_SIZE + nursery_cursor % 8 * 512
            } else if kind < self.alloc_percent + self.field_percent {
                // Field access: zipfian heap object (live-ish pages).
                let page = heap_zipf.sample(&mut rng) as u64;
                heap_base + page * PAGE_SIZE + rng.gen_range(0..64u64) * 64
            } else {
                // Stack manipulation: hot operand stack.
                stack_depth = (stack_depth + 1) % (self.stack_pages * 32);
                stack_base + stack_depth / 32 * PAGE_SIZE + stack_depth % 32 * 128
            };
            em.push(TraceRecord::load(touch.pc(0), addr));
            em.push(TraceRecord::store(touch.pc(1), addr + 8));
            em.push(TraceRecord::ret(touch.pc(2), handler.pc(3)));
            // Fall through to the handler epilogue, which performs the
            // next dispatch (emitted at the top of the next iteration).
            em.push(TraceRecord::alu(handler.pc(3)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InstrKind;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let g = Interpreter::default();
        assert_eq!(g.generate(20_000, 5), g.generate(20_000, 5));
        assert_ne!(g.generate(20_000, 5), g.generate(20_000, 6));
    }

    #[test]
    fn dispatch_is_indirect_and_spread_over_handlers() {
        let g = Interpreter::default();
        let t = g.generate(60_000, 1);
        let targets: HashSet<u64> =
            t.iter().filter(|r| r.kind == InstrKind::IndirectJump).map(|r| r.target).collect();
        assert!(targets.len() > 32, "dispatch must reach many handlers, got {}", targets.len());
    }

    #[test]
    fn memory_helper_pcs_are_shared_across_opcode_classes() {
        let g = Interpreter::default();
        let t = g.generate(30_000, 1);
        let load_pcs: HashSet<u64> = t
            .iter()
            .filter(|r| r.kind == InstrKind::Load && r.effective_address > 1 << 40)
            .map(|r| r.pc)
            .collect();
        // One data-region load PC: the shared helper (dispatch fetch loads
        // from the stack region base too, same helper property holds).
        assert!(load_pcs.len() <= 2, "helper loads must share PCs, got {load_pcs:?}");
    }

    #[test]
    fn nursery_streams_and_stack_stays_hot() {
        let g = Interpreter { nursery_pages: 1 << 12, ..Default::default() };
        let t = g.generate(120_000, 2);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *counts.entry(v).or_insert(0u64) += 1;
            }
        }
        let max = *counts.values().max().unwrap();
        let singles = counts.values().filter(|&&c| c <= 2).count();
        assert!(max > 1000, "stack pages must be very hot, max {max}");
        assert!(singles > 200, "nursery pages must stream, singles {singles}");
    }
}
