//! Synthetic workload generators.
//!
//! Each generator models one workload family from the categories the CHiRP
//! paper evaluates (SPEC, database, crypto, scientific, web, big data, plus
//! mixed-context kernels). Generators are deterministic: the same
//! `(parameters, seed, length)` triple always yields the identical trace.
//!
//! The generators are built so that the *mechanisms* the paper identifies are
//! present in the instruction stream:
//!
//! * many PCs map onto few TLB entries (coarse 4 KB granularity), so PC-only
//!   signatures saturate (paper Observation 2);
//! * the liveness of a page is frequently a function of *calling context*
//!   (which call site invoked the shared helper that touches it), visible in
//!   branch-path history but invisible to a single PC (paper §II-E);
//! * streaming phases thrash LRU while resident hot sets want protection.

mod context_copy;
mod crypto;
mod gups;
mod interpreter;
mod pointer_chase;
mod scan_index;
mod scientific;
mod spec_loop;
mod web;

pub use context_copy::ContextCopy;
pub use crypto::CryptoStream;
pub use gups::Gups;
pub use interpreter::Interpreter;
pub use pointer_chase::PointerChase;
pub use scan_index::ScanIndex;
pub use scientific::TiledStencil;
pub use spec_loop::SpecLoops;
pub use web::WebServe;

use crate::packed::{PackedTrace, PackedTraceBuilder};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Workload category labels mirroring the paper's description of the CVP-1
/// suite ("SPEC, database, crypto, scientific, web, 'big data' and other
/// applications", §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Loop-nest compute kernels in the spirit of SPEC CPU.
    Spec,
    /// Index lookup + table scan database workloads.
    Database,
    /// Block ciphers / hashes over streaming input.
    Crypto,
    /// Tiled numeric kernels.
    Scientific,
    /// Large-code-footprint request servers.
    Web,
    /// Pointer-chasing and random-update "big data" kernels.
    BigData,
    /// Mixed-context kernels (shared helpers invoked from multiple sites).
    Mixed,
}

impl Category {
    /// All categories, in a stable order.
    pub const ALL: [Category; 7] = [
        Category::Spec,
        Category::Database,
        Category::Crypto,
        Category::Scientific,
        Category::Web,
        Category::BigData,
        Category::Mixed,
    ];

    /// Short lowercase label used in benchmark names.
    pub fn label(self) -> &'static str {
        match self {
            Category::Spec => "spec",
            Category::Database => "db",
            Category::Crypto => "crypto",
            Category::Scientific => "sci",
            Category::Web => "web",
            Category::BigData => "bigdata",
            Category::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic trace generator.
pub trait WorkloadGen {
    /// Human-readable name including the distinguishing parameters.
    fn name(&self) -> String;

    /// The workload category this generator belongs to.
    fn category(&self) -> Category;

    /// Emits records into `em` until [`Emitter::is_full`] reports true,
    /// using `seed` for all random choices. Must be deterministic in
    /// `(self, em.limit, seed)` — the emitter decides where the records
    /// go (an in-memory buffer or a bounded streaming channel), the
    /// generator only decides *what* they are. This is the one method a
    /// generator implements; both the materialized and the streaming
    /// trace paths are derived from it, which is what makes the two
    /// bit-identical by construction.
    fn emit_into(&self, em: &mut Emitter, seed: u64);

    /// Generates exactly `len` trace records in packed struct-of-arrays
    /// form using `seed` for all random choices. Materializes the whole
    /// trace; for bounded-memory production use
    /// [`crate::stream::GenStream`], which drives the same
    /// [`WorkloadGen::emit_into`] through a chunked channel.
    fn generate_packed(&self, len: usize, seed: u64) -> PackedTrace {
        let mut em = Emitter::new(len);
        self.emit_into(&mut em, seed);
        em.finish_packed()
    }

    /// Generates exactly `len` trace records as a flat vector. Convenience
    /// wrapper over [`WorkloadGen::generate_packed`] for callers that want
    /// slice access.
    fn generate(&self, len: usize, seed: u64) -> Vec<TraceRecord> {
        self.generate_packed(len, seed).to_records()
    }
}

/// Where an [`Emitter`] puts accepted records: a single in-memory builder
/// (the materialized path) or a bounded channel of chunk-sized batches
/// (the streaming path).
#[derive(Debug)]
enum EmitterSink {
    /// Everything accumulates into one builder.
    Buffer(PackedTraceBuilder),
    /// Full chunks are sent through `tx`; only the chunk under
    /// construction stays resident.
    Channel {
        builder: PackedTraceBuilder,
        chunk: usize,
        tx: std::sync::mpsc::SyncSender<PackedTrace>,
        /// Set when the receiver hung up; reads as full so the generator
        /// terminates promptly instead of emitting into the void.
        aborted: bool,
    },
}

/// Accumulates trace records up to a limit, packing them as they arrive.
///
/// Generators emit whole loop iterations and check [`Emitter::is_full`]
/// between them; records pushed past the limit are discarded, so the
/// finished trace holds exactly the requested length (the moral equivalent
/// of the old truncate-at-the-end, without buffering the overshoot).
///
/// An emitter built by [`Emitter::new`] buffers everything (the
/// materialized path). The streaming path (`crate::stream::GenStream`)
/// constructs one over a bounded channel instead; the acceptance logic —
/// which records are kept, in which order — is shared, so the chunk
/// concatenation is bit-identical to the buffered trace.
#[derive(Debug)]
pub struct Emitter {
    sink: EmitterSink,
    /// Records accepted so far (across all flushed chunks).
    emitted: usize,
    limit: usize,
}

impl Emitter {
    /// Creates an emitter that stops accepting records once `limit` is hit.
    pub fn new(limit: usize) -> Self {
        Emitter {
            sink: EmitterSink::Buffer(PackedTraceBuilder::with_capacity(limit)),
            emitted: 0,
            limit,
        }
    }

    /// Creates an emitter that flushes every `chunk` accepted records as
    /// one [`PackedTrace`] batch through `tx`, holding at most one
    /// chunk-in-progress resident. Used by `crate::stream::GenStream`.
    pub(crate) fn streaming(
        limit: usize,
        chunk: usize,
        tx: std::sync::mpsc::SyncSender<PackedTrace>,
    ) -> Self {
        let chunk = chunk.max(1);
        Emitter {
            sink: EmitterSink::Channel {
                builder: PackedTraceBuilder::with_capacity(chunk.min(limit)),
                chunk,
                tx,
                aborted: false,
            },
            emitted: 0,
            limit,
        }
    }

    /// True once at least `limit` records have been emitted (or the
    /// streaming receiver went away — nothing more can be delivered).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.emitted >= self.limit
            || matches!(self.sink, EmitterSink::Channel { aborted: true, .. })
    }

    /// Number of records emitted so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.emitted
    }

    /// True if nothing has been emitted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.emitted == 0
    }

    /// Appends one record; a no-op once the limit is reached.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.emitted >= self.limit {
            return;
        }
        match &mut self.sink {
            EmitterSink::Buffer(builder) => {
                self.emitted += 1;
                builder.push(rec);
            }
            EmitterSink::Channel { builder, chunk, tx, aborted } => {
                if *aborted {
                    return;
                }
                self.emitted += 1;
                builder.push(rec);
                if builder.len() >= *chunk {
                    let next_cap = (*chunk).min(self.limit - self.emitted);
                    let full =
                        std::mem::replace(builder, PackedTraceBuilder::with_capacity(next_cap));
                    if tx.send(full.finish()).is_err() {
                        *aborted = true;
                    }
                }
            }
        }
    }

    /// The finished packed trace, exactly `limit` records (or fewer if the
    /// generator stopped early). Only meaningful for buffered emitters.
    pub fn finish_packed(self) -> PackedTrace {
        match self.sink {
            EmitterSink::Buffer(builder) => builder.finish(),
            EmitterSink::Channel { .. } => {
                unreachable!("finish_packed on a streaming emitter — use finish_stream")
            }
        }
    }

    /// Flushes the trailing partial chunk of a streaming emitter and
    /// closes the channel (by dropping the sender).
    pub(crate) fn finish_stream(self) {
        if let EmitterSink::Channel { builder, tx, aborted, .. } = self.sink {
            if !aborted && !builder.is_empty() {
                let _ = tx.send(builder.finish());
            }
        }
    }

    /// The finished trace as a flat vector.
    pub fn finish(self) -> Vec<TraceRecord> {
        self.finish_packed().to_records()
    }
}

/// Hands out non-overlapping page-aligned code and data regions.
///
/// Code regions start at a conventional text base; data regions in a distant
/// heap area, so instruction and data pages never alias.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next_code: u64,
    next_data: u64,
    code_regions: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates a fresh layout with conventional text/heap bases.
    pub fn new() -> Self {
        AddressSpace { next_code: 0x0040_0000, next_data: 0x1000_0000_0000, code_regions: 0 }
    }

    /// Reserves `pages` pages of code and returns the base address.
    ///
    /// Bases carry a deterministic sub-page offset, the way a linker packs
    /// functions: without it every function would start at offset 0 and
    /// the PC bits \[11:4\] that branch-history predictors record would be
    /// identical across call sites. Offsets are 32-byte aligned, matching
    /// compilers' hot-loop alignment — so PC bits \[4:0\] coincide across
    /// functions while bits \[11:5\] differ (the paper's §III-A point that
    /// *which* PC bits a history folds in decides what it can see).
    pub fn code_region(&mut self, pages: u64) -> u64 {
        self.code_regions += 1;
        let offset = (self.code_regions.wrapping_mul(0x9E37_79B9) >> 9 & 0x7F) * 32;
        let base = self.next_code + offset;
        // One guard page between regions keeps regions from sharing pages
        // (the sub-page offset stays within the guard slack).
        self.next_code += (pages + 1) * PAGE_SIZE;
        base
    }

    /// Reserves `pages` pages of data and returns the base address.
    pub fn data_region(&mut self, pages: u64) -> u64 {
        let base = self.next_data;
        self.next_data += (pages + 1) * PAGE_SIZE;
        base
    }
}

/// A function placed in the code region: a base PC from which instruction
/// addresses are derived at 4-byte granularity.
#[derive(Debug, Clone, Copy)]
pub struct CodeBlock {
    base: u64,
}

impl CodeBlock {
    /// Wraps a base address (must be 4-byte aligned in practice).
    pub fn new(base: u64) -> Self {
        CodeBlock { base }
    }

    /// The entry PC.
    #[inline]
    pub fn entry(&self) -> u64 {
        self.base
    }

    /// PC of the `idx`-th 4-byte instruction slot.
    #[inline]
    pub fn pc(&self, idx: u64) -> u64 {
        self.base + idx * 4
    }
}

/// Zipfian sampler over `0..n` with exponent `s` (cumulative-table inversion).
///
/// A dedicated implementation keeps the dependency set to the approved
/// offline crates; `n` up to a few hundred thousand is fine.
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cum.push(total);
        }
        let norm = total;
        for c in &mut cum {
            *c /= norm;
        }
        Zipf { cum }
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cum.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cum.len() - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True if the domain is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn emitter_truncates_to_limit() {
        let mut em = Emitter::new(3);
        for i in 0..5 {
            em.push(TraceRecord::alu(i * 4));
        }
        assert!(em.is_full());
        let t = em.finish();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn address_space_regions_do_not_overlap() {
        let mut asp = AddressSpace::new();
        let a = asp.code_region(4);
        let b = asp.code_region(4);
        assert!(b >= a + 4 * PAGE_SIZE, "code regions must not overlap");
        let d1 = asp.data_region(100);
        let d2 = asp.data_region(1);
        assert!(d2 >= d1 + 100 * PAGE_SIZE);
        assert!(d1 > b, "data region must be disjoint from code");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Every sample must stay in-domain (implicitly checked by indexing).
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "counts {counts:?} not uniform");
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn code_block_pcs_are_sequential() {
        let f = CodeBlock::new(0x400000);
        assert_eq!(f.entry(), 0x400000);
        assert_eq!(f.pc(3), 0x40000c);
    }
}
