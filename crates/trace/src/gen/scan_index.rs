//! Database-style workload: sequential table scans interleaved with zipfian
//! index lookups, both fetching rows through a shared leaf routine.
//!
//! Scan pages are touched once per pass (dead on arrival at the L2 TLB);
//! index pages are re-visited with zipfian popularity (live). The row-fetch
//! loads execute at the same PCs for both phases, so only control-flow
//! context separates live from dead pages.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen, Zipf};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the scan + index-lookup workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanIndex {
    /// Pages in the scanned table (streamed).
    pub table_pages: u64,
    /// Pages in the index structure (zipfian reuse).
    pub index_pages: u64,
    /// Zipf exponent for index-page popularity.
    pub zipf_s: f64,
    /// Pages scanned per scan burst.
    pub scan_burst_pages: u64,
    /// Lookups per lookup burst.
    pub lookup_burst: u32,
    /// B-tree levels touched per lookup (pages per lookup).
    pub levels: u32,
    /// Rows fetched per scanned page.
    pub rows_per_page: u32,
    /// Re-fetch one row from each page of the *previous* scan burst after
    /// the current one (the projection pass of a filter-then-project scan).
    /// The delayed touch lands past L1 reach but inside L2 reach, giving
    /// scan pages exactly one L2 reuse before they die — the pattern that
    /// saturates PC-indexed hit predictors (paper Observation 2).
    pub project_pass: bool,
}

impl Default for ScanIndex {
    fn default() -> Self {
        ScanIndex {
            table_pages: 1 << 15,
            index_pages: 1024,
            zipf_s: 0.9,
            scan_burst_pages: 64,
            lookup_burst: 256,
            levels: 3,
            rows_per_page: 8,
            project_pass: true,
        }
    }
}

impl WorkloadGen for ScanIndex {
    fn name(&self) -> String {
        format!("db.scanidx.i{}z{:.1}b{}", self.index_pages, self.zipf_s, self.scan_burst_pages)
    }

    fn category(&self) -> Category {
        Category::Database
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15EA5E);
        let mut asp = AddressSpace::new();
        let scan_fn = CodeBlock::new(asp.code_region(1));
        let lookup_fn = CodeBlock::new(asp.code_region(1));
        let fetch_fn = CodeBlock::new(asp.code_region(1));
        let project_fn = CodeBlock::new(asp.code_region(1));
        let table_base = asp.data_region(self.table_pages);
        let index_base = asp.data_region(self.index_pages);

        let zipf = Zipf::new(self.index_pages.max(1) as usize, self.zipf_s);
        let mut scan_cursor = 0u64;
        let mut prev_burst_start: Option<u64> = None;

        'outer: loop {
            // --- Scan burst -------------------------------------------
            let burst_start = scan_cursor;
            for _ in 0..self.scan_burst_pages {
                let page = scan_cursor % self.table_pages;
                scan_cursor += 1;
                for row in 0..self.rows_per_page {
                    let addr = table_base
                        + page * PAGE_SIZE
                        + u64::from(row) * (PAGE_SIZE / u64::from(self.rows_per_page.max(1)));
                    em.push(TraceRecord::alu(scan_fn.pc(0)));
                    em.push(TraceRecord::call(scan_fn.pc(1), fetch_fn.entry()));
                    emit_fetch(em, fetch_fn, addr, scan_fn.pc(2));
                    let last = row + 1 == self.rows_per_page;
                    em.push(TraceRecord::cond_branch(scan_fn.pc(3), scan_fn.pc(0), !last));
                }
                if em.is_full() {
                    break 'outer;
                }
            }
            // --- Projection pass over the previous burst --------------
            if self.project_pass {
                if let Some(start) = prev_burst_start {
                    for off in 0..self.scan_burst_pages {
                        let page = (start + off) % self.table_pages;
                        let addr = table_addr(table_base, page, 1);
                        em.push(TraceRecord::alu(project_fn.pc(0)));
                        em.push(TraceRecord::call(project_fn.pc(1), fetch_fn.entry()));
                        emit_fetch(em, fetch_fn, addr, project_fn.pc(2));
                        em.push(TraceRecord::cond_branch(
                            project_fn.pc(3),
                            project_fn.pc(0),
                            off + 1 != self.scan_burst_pages,
                        ));
                    }
                    if em.is_full() {
                        break 'outer;
                    }
                }
                prev_burst_start = Some(burst_start);
            }
            // --- Lookup burst ----------------------------------------
            for _ in 0..self.lookup_burst {
                // Walk `levels` index pages, each chosen near a zipfian seed
                // page so tree levels cluster but stay distinct.
                let hot = zipf.sample(&mut rng) as u64;
                for level in 0..u64::from(self.levels) {
                    let page = (hot + level * 37) % self.index_pages;
                    let addr = table_addr(index_base, page, rng.gen_range(0..64));
                    em.push(TraceRecord::alu(lookup_fn.pc(0)));
                    em.push(TraceRecord::call(lookup_fn.pc(1), fetch_fn.entry()));
                    emit_fetch(em, fetch_fn, addr, lookup_fn.pc(2));
                    let last = level + 1 == u64::from(self.levels);
                    em.push(TraceRecord::cond_branch(lookup_fn.pc(3), lookup_fn.pc(0), !last));
                }
                if em.is_full() {
                    break 'outer;
                }
            }
        }
    }
}

#[inline]
fn table_addr(base: u64, page: u64, slot: u64) -> u64 {
    base + page * PAGE_SIZE + slot * 64
}

/// Shared row-fetch leaf: two loads and a return — the PCs both phases share.
fn emit_fetch(em: &mut Emitter, fetch_fn: CodeBlock, addr: u64, ret_to: u64) {
    em.push(TraceRecord::load(fetch_fn.pc(0), addr));
    em.push(TraceRecord::load(fetch_fn.pc(1), addr + 16));
    em.push(TraceRecord::ret(fetch_fn.pc(2), ret_to));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InstrKind;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn deterministic_per_seed() {
        let g = ScanIndex::default();
        assert_eq!(g.generate(20_000, 9), g.generate(20_000, 9));
        assert_ne!(g.generate(20_000, 9), g.generate(20_000, 10));
    }

    #[test]
    fn shared_fetch_pcs() {
        let g = ScanIndex::default();
        let t = g.generate(50_000, 1);
        let load_pcs: HashSet<u64> =
            t.iter().filter(|r| r.kind == InstrKind::Load).map(|r| r.pc).collect();
        assert_eq!(load_pcs.len(), 2, "both phases must fetch through the shared leaf");
    }

    #[test]
    fn index_pages_reused_scan_pages_not() {
        let g = ScanIndex { table_pages: 1 << 14, index_pages: 64, ..Default::default() };
        let t = g.generate(200_000, 3);
        let mut visits: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *visits.entry(v).or_insert(0) += 1;
            }
        }
        // With only 64 index pages and zipf popularity, some index page must
        // be visited orders of magnitude more than a scan page.
        let max = visits.values().copied().max().unwrap();
        let ones = visits.values().filter(|&&c| c <= 2 * u64::from(g.rows_per_page)).count();
        assert!(max > 100, "hot index page expected, max visits {max}");
        assert!(ones > 50, "scan pages should be visited once, got {ones} single-visit pages");
    }
}
