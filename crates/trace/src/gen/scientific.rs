//! Scientific tiled-stencil workload: per-tile resident operands combined
//! with a cyclically swept streaming operand.
//!
//! Within a tile step, the A-tile and C-tile pages are re-visited many
//! times (live); the B operand is swept front to back every step (cyclic —
//! the LRU-hostile regime). All three operands are read through the same
//! inner-product leaf routine, so PC identity again fails to separate the
//! live tiles from the streamed sweep.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Parameters for the tiled-stencil workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledStencil {
    /// Pages per resident tile (A and C each).
    pub tile_pages: u64,
    /// Pages in the streamed B operand (swept fully per step).
    pub sweep_pages: u64,
    /// Inner iterations per B page per step.
    pub inner: u32,
    /// Tile steps before the tile cursor advances.
    pub reuse_steps: u32,
}

impl Default for TiledStencil {
    fn default() -> Self {
        TiledStencil { tile_pages: 128, sweep_pages: 2048, inner: 2, reuse_steps: 4 }
    }
}

impl WorkloadGen for TiledStencil {
    fn name(&self) -> String {
        format!("sci.stencil.t{}s{}", self.tile_pages, self.sweep_pages)
    }

    fn category(&self) -> Category {
        Category::Scientific
    }

    fn emit_into(&self, em: &mut Emitter, _seed: u64) {
        let mut asp = AddressSpace::new();
        let outer_fn = CodeBlock::new(asp.code_region(1));
        let dot_fn = CodeBlock::new(asp.code_region(1));
        // Allocate a generous tile arena so the tile cursor can advance.
        let tile_arena_pages = self.tile_pages * 64;
        let a_base = asp.data_region(tile_arena_pages);
        let c_base = asp.data_region(tile_arena_pages);
        let b_base = asp.data_region(self.sweep_pages);

        let mut tile_idx = 0u64;
        let mut step = 0u32;

        'outer: loop {
            let a_tile = a_base + (tile_idx % 64) * self.tile_pages * PAGE_SIZE;
            let c_tile = c_base + (tile_idx % 64) * self.tile_pages * PAGE_SIZE;
            // One step: sweep all of B against the resident tile.
            for bp in 0..self.sweep_pages {
                for k in 0..u64::from(self.inner) {
                    let a_addr = a_tile + (bp * 7 + k) % (self.tile_pages * 64) * 64;
                    let b_addr = b_base + bp * PAGE_SIZE + k * 256;
                    let c_addr = c_tile + (bp * 13 + k) % (self.tile_pages * 64) * 64;
                    em.push(TraceRecord::alu(outer_fn.pc(0)));
                    em.push(TraceRecord::call(outer_fn.pc(1), dot_fn.entry()));
                    em.push(TraceRecord::load(dot_fn.pc(0), a_addr));
                    em.push(TraceRecord::load(dot_fn.pc(1), b_addr));
                    em.push(TraceRecord::store(dot_fn.pc(2), c_addr));
                    em.push(TraceRecord::ret(dot_fn.pc(3), outer_fn.pc(2)));
                    let last = k + 1 == u64::from(self.inner);
                    em.push(TraceRecord::cond_branch(outer_fn.pc(3), outer_fn.pc(0), !last));
                }
                em.push(TraceRecord::cond_branch(
                    outer_fn.pc(4),
                    outer_fn.pc(0),
                    bp + 1 != self.sweep_pages,
                ));
                if em.is_full() {
                    break 'outer;
                }
            }
            step += 1;
            if step >= self.reuse_steps {
                step = 0;
                tile_idx += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let g = TiledStencil::default();
        assert_eq!(g.generate(15_000, 0), g.generate(15_000, 5));
    }

    #[test]
    fn tile_pages_reused_within_step() {
        let g = TiledStencil { tile_pages: 4, sweep_pages: 256, inner: 2, reuse_steps: 4 };
        let t = g.generate(50_000, 0);
        let mut visits: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *visits.entry(v).or_insert(0) += 1;
            }
        }
        let max = *visits.values().max().unwrap();
        // Tiny tiles hammered for the whole step vs B pages touched
        // `inner` times per sweep.
        assert!(max > 100, "tile pages must absorb heavy reuse, max={max}");
    }

    #[test]
    fn shared_leaf_pcs_for_all_operands() {
        let g = TiledStencil::default();
        let t = g.generate(5_000, 0);
        let load_pcs: std::collections::HashSet<u64> =
            t.iter().filter(|r| r.kind == crate::record::InstrKind::Load).map(|r| r.pc).collect();
        assert_eq!(load_pcs.len(), 2, "A and B are loaded from the shared leaf");
    }
}
