//! GUPS-style random-update workload: read-modify-write to zipf-popular
//! pages of a large table, with a small hot parameter block consulted per
//! batch and a few ALU instructions of index hashing per update.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen, Zipf};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the random-update workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gups {
    /// Pages in the update table.
    pub table_pages: u64,
    /// Zipf exponent for page popularity (0 = uniform GUPS).
    pub zipf_s: f64,
    /// Updates per batch (between parameter-block touches).
    pub batch: u32,
    /// ALU instructions of index hashing per update.
    pub compute_per_update: u32,
    /// Hot parameter pages.
    pub param_pages: u64,
}

impl Default for Gups {
    fn default() -> Self {
        Gups { table_pages: 1 << 13, zipf_s: 1.0, batch: 32, compute_per_update: 6, param_pages: 8 }
    }
}

impl WorkloadGen for Gups {
    fn name(&self) -> String {
        format!("bigdata.gups.t{}z{:.1}", self.table_pages, self.zipf_s)
    }

    fn category(&self) -> Category {
        Category::BigData
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6057);
        let mut asp = AddressSpace::new();
        let kernel = CodeBlock::new(asp.code_region(1));
        let table_base = asp.data_region(self.table_pages);
        let param_base = asp.data_region(self.param_pages);

        let zipf = Zipf::new(self.table_pages.max(1) as usize, self.zipf_s);
        'outer: loop {
            // Refresh batch parameters (hot pages).
            for p in 0..self.param_pages.min(2) {
                em.push(TraceRecord::load(kernel.pc(0), param_base + p * PAGE_SIZE));
            }
            for u in 0..self.batch {
                let page = zipf.sample(&mut rng) as u64;
                let slot = rng.gen_range(0..512u64) * 8;
                let addr = table_base + page * PAGE_SIZE + slot;
                for c in 0..self.compute_per_update {
                    em.push(TraceRecord::alu(kernel.pc(8 + u64::from(c % 8))));
                }
                em.push(TraceRecord::load(kernel.pc(2), addr));
                em.push(TraceRecord::alu(kernel.pc(3))); // xor update
                em.push(TraceRecord::store(kernel.pc(4), addr));
                let last = u + 1 == self.batch;
                em.push(TraceRecord::cond_branch(kernel.pc(5), kernel.pc(1), !last));
                if em.is_full() {
                    break 'outer;
                }
            }
            em.push(TraceRecord::cond_branch(kernel.pc(6), kernel.pc(0), true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = Gups::default();
        assert_eq!(g.generate(8_000, 21), g.generate(8_000, 21));
        assert_ne!(g.generate(8_000, 21), g.generate(8_000, 22));
    }

    #[test]
    fn loads_and_stores_pair_on_same_page() {
        let g = Gups::default();
        let t = g.generate(20_000, 1);
        let mut last_load_page = None;
        for r in &t {
            if r.kind == crate::record::InstrKind::Load && r.data_vpn().is_some() {
                last_load_page = r.data_vpn();
            }
            if r.kind == crate::record::InstrKind::Store {
                assert_eq!(r.data_vpn(), last_load_page, "update must hit the loaded page");
            }
        }
    }

    #[test]
    fn popularity_skew_follows_zipf() {
        let g = Gups { zipf_s: 1.2, ..Default::default() };
        let t = g.generate(100_000, 5);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *counts.entry(v).or_insert(0u64) += 1;
            }
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert!(sorted[0] > 10 * sorted[sorted.len() / 2]);
    }
}
