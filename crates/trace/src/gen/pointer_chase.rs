//! Big-data pointer-chasing workload: random walks over a clustered node
//! pool with zipfian cluster popularity and periodic restarts from a hot
//! root set.
//!
//! Graph processing exhibits *community* locality: a walk stays inside a
//! cluster of pages for a while, then hops to another cluster whose
//! popularity is skewed. Popular clusters reward retention; the long tail
//! provides the high-MPKI right-hand side of the paper's Figure 7 S-curve.

use super::{AddressSpace, Category, CodeBlock, Emitter, WorkloadGen, Zipf};
use crate::record::TraceRecord;
use crate::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the random-walk workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointerChase {
    /// Pages in the node pool (divided into clusters).
    pub pool_pages: u64,
    /// Pages per cluster (community size).
    pub cluster_pages: u64,
    /// Zipf exponent for cluster popularity.
    pub zipf_s: f64,
    /// Walk steps between cluster hops, on average (×1000 gives the hop
    /// probability per step as `1000 / hop_interval`).
    pub hop_interval: u32,
    /// ALU instructions of per-node processing.
    pub compute_per_node: u32,
    /// Pages in the hot root set (re-visited at every restart).
    pub root_pages: u64,
    /// Walk steps between restarts.
    pub walk_len: u32,
    /// Probability of an indirect visitor dispatch per step (×1000).
    pub dispatch_per_mille: u32,
}

impl Default for PointerChase {
    fn default() -> Self {
        PointerChase {
            pool_pages: 1 << 13,
            cluster_pages: 64,
            zipf_s: 0.9,
            hop_interval: 24,
            compute_per_node: 8,
            root_pages: 128,
            walk_len: 64,
            dispatch_per_mille: 50,
        }
    }
}

impl WorkloadGen for PointerChase {
    fn name(&self) -> String {
        format!("bigdata.chase.p{}z{:.1}", self.pool_pages, self.zipf_s)
    }

    fn category(&self) -> Category {
        Category::BigData
    }

    fn emit_into(&self, em: &mut Emitter, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB16_DA7A);
        let mut asp = AddressSpace::new();
        let walker = CodeBlock::new(asp.code_region(1));
        let visitors: Vec<CodeBlock> = (0..4).map(|_| CodeBlock::new(asp.code_region(1))).collect();
        let pool_base = asp.data_region(self.pool_pages);
        let root_base = asp.data_region(self.root_pages);

        let clusters = (self.pool_pages / self.cluster_pages.max(1)).max(1);
        let zipf = Zipf::new(clusters as usize, self.zipf_s);
        let mut cluster = zipf.sample(&mut rng) as u64;

        'outer: loop {
            // Restart: touch a few root pages (hot metadata).
            for i in 0..4u64 {
                let page = rng.gen_range(0..self.root_pages);
                em.push(TraceRecord::load(walker.pc(0), root_base + page * PAGE_SIZE + i * 64));
                em.push(TraceRecord::alu(walker.pc(1)));
            }
            // Random walk with community locality.
            for step in 0..self.walk_len {
                if rng.gen_range(0..self.hop_interval.max(1)) == 0 {
                    cluster = zipf.sample(&mut rng) as u64;
                }
                let page =
                    cluster * self.cluster_pages + rng.gen_range(0..self.cluster_pages.max(1));
                let node = pool_base + page * PAGE_SIZE + rng.gen_range(0..32u64) * 128;
                em.push(TraceRecord::load(walker.pc(2), node)); // next pointer
                em.push(TraceRecord::load(walker.pc(3), node + 8)); // payload
                for c in 0..self.compute_per_node {
                    em.push(TraceRecord::alu(walker.pc(8 + u64::from(c % 8))));
                }
                if rng.gen_range(0..1000) < self.dispatch_per_mille {
                    let v = &visitors[rng.gen_range(0..visitors.len())];
                    em.push(TraceRecord::indirect_call(walker.pc(4), v.entry()));
                    em.push(TraceRecord::alu(v.pc(0)));
                    em.push(TraceRecord::ret(v.pc(1), walker.pc(5)));
                }
                let last = step + 1 == self.walk_len;
                em.push(TraceRecord::cond_branch(walker.pc(6), walker.pc(2), !last));
                if em.is_full() {
                    break 'outer;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let g = PointerChase::default();
        assert_eq!(g.generate(10_000, 11), g.generate(10_000, 11));
        assert_ne!(g.generate(10_000, 11), g.generate(10_000, 12));
    }

    #[test]
    fn cluster_popularity_is_skewed() {
        let g = PointerChase::default();
        let t = g.generate(200_000, 13);
        let mut cluster_visits: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                cluster_visits.entry(v / g.cluster_pages).and_modify(|c| *c += 1).or_insert(1);
            }
        }
        let mut counts: Vec<u64> = cluster_visits.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] > 4 * counts[counts.len() / 2], "popular clusters dominate");
    }

    #[test]
    fn walk_stays_local_between_hops() {
        let g = PointerChase { hop_interval: 1000, ..Default::default() };
        let t = g.generate(5_000, 3);
        let pages: Vec<u64> = t.iter().filter_map(|r| r.data_vpn()).collect();
        // With rare hops, consecutive pool accesses share a cluster.
        let pool: Vec<u64> = pages.iter().copied().filter(|p| *p < 1 << 40).collect();
        let mut same_cluster = 0;
        let mut total = 0;
        for w in pool.windows(2) {
            total += 1;
            if w[0] / 64 == w[1] / 64 {
                same_cluster += 1;
            }
        }
        assert!(
            same_cluster as f64 > total as f64 * 0.5,
            "walk should stay in-cluster: {same_cluster}/{total}"
        );
    }

    #[test]
    fn root_pages_hot() {
        let g = PointerChase { root_pages: 4, ..Default::default() };
        let t = g.generate(100_000, 13);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            if let Some(v) = r.data_vpn() {
                *counts.entry(v).or_insert(0u64) += 1;
            }
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert!(sorted[3] > 50, "the 4 root pages must absorb repeated visits");
    }
}
