//! The unified L2 TLB with a pluggable replacement policy.

use crate::efficiency::EfficiencyTracker;
use crate::policy::TlbReplacementPolicy;
use crate::stats::TlbStats;
use crate::types::{TlbAccess, TlbGeometry, TranslationKind};
use chirp_trace::BranchClass;

/// Result of one L2 TLB access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the translation was resident.
    pub hit: bool,
    /// The way that hit or was filled.
    pub way: usize,
    /// The VPN evicted to make room, if any.
    pub evicted: Option<u64>,
}

/// A set-associative TLB whose replacement decisions are delegated to a
/// [`TlbReplacementPolicy`].
pub struct L2Tlb {
    geometry: TlbGeometry,
    /// `sets * ways` VPN tags, flattened row-major by set.
    tags: Vec<u64>,
    valid: Vec<bool>,
    policy: Box<dyn TlbReplacementPolicy>,
    stats: TlbStats,
    efficiency: EfficiencyTracker,
}

impl std::fmt::Debug for L2Tlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L2Tlb")
            .field("geometry", &self.geometry)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl L2Tlb {
    /// Builds the TLB with `geometry` and the given policy.
    pub fn new(geometry: TlbGeometry, policy: Box<dyn TlbReplacementPolicy>) -> Self {
        let sets = geometry.sets();
        L2Tlb {
            geometry,
            tags: vec![0; sets * geometry.ways],
            valid: vec![false; sets * geometry.ways],
            policy,
            stats: TlbStats::default(),
            efficiency: EfficiencyTracker::new(sets, geometry.ways),
        }
    }

    /// The TLB geometry.
    pub fn geometry(&self) -> TlbGeometry {
        self.geometry
    }

    /// Looks up `vpn`, filling on a miss. `pc` is the instruction that
    /// caused the access (the PC the CHiRP signature uses, paper §IV-B).
    pub fn access(&mut self, pc: u64, vpn: u64, kind: TranslationKind) -> AccessOutcome {
        let set = self.geometry.set_of(vpn);
        let acc = TlbAccess { pc, vpn, kind, set };
        self.efficiency.tick();
        let ways = self.geometry.ways;
        let base = set * ways;

        for way in 0..ways {
            if self.valid[base + way] && self.tags[base + way] == vpn {
                self.stats.hits += 1;
                self.efficiency.on_hit(set, way);
                self.policy.on_hit(&acc, way);
                return AccessOutcome { hit: true, way, evicted: None };
            }
        }

        self.stats.misses += 1;
        // Fill an invalid way first; otherwise ask the policy for a victim.
        let (way, evicted) = match (0..ways).find(|&w| !self.valid[base + w]) {
            Some(free) => {
                self.stats.cold_fills += 1;
                (free, None)
            }
            None => {
                let victim = self.policy.choose_victim(&acc);
                assert!(victim < ways, "policy returned way {victim} of {ways}");
                let old = self.tags[base + victim];
                self.policy.on_evict(set, victim);
                (victim, Some(old))
            }
        };
        self.tags[base + way] = vpn;
        self.valid[base + way] = true;
        self.efficiency.on_insert(set, way);
        self.policy.on_fill(&acc, way);
        AccessOutcome { hit: false, way, evicted }
    }

    /// Forwards a retired branch to the policy's history registers.
    pub fn on_branch(&mut self, pc: u64, class: BranchClass, taken: bool) {
        self.policy.on_branch(pc, class, taken);
    }

    /// Forwards a misprediction event to the policy (wrong-path hook).
    pub fn on_mispredict(&mut self, pc: u64) {
        self.policy.on_mispredict(pc);
    }

    /// Accumulated statistics. `dead_evictions` is sourced live from the
    /// policy (predictive policies track which victims were dead-predicted).
    pub fn stats(&self) -> TlbStats {
        TlbStats { dead_evictions: self.policy.dead_eviction_count(), ..self.stats }
    }

    /// TLB efficiency so far (Figure 1 metric).
    pub fn efficiency(&self) -> f64 {
        self.efficiency.efficiency()
    }

    /// The policy driving replacement.
    pub fn policy(&self) -> &dyn TlbReplacementPolicy {
        self.policy.as_ref()
    }

    /// True if `vpn` is currently resident (no side effects).
    pub fn probe(&self, vpn: u64) -> bool {
        let set = self.geometry.set_of(vpn);
        let base = set * self.geometry.ways;
        (0..self.geometry.ways).any(|w| self.valid[base + w] && self.tags[base + w] == vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;

    fn tiny() -> L2Tlb {
        let geom = TlbGeometry { entries: 8, ways: 2 }; // 4 sets x 2 ways
        L2Tlb::new(geom, Box::new(Lru::new(geom)))
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = tiny();
        let first = tlb.access(0x400000, 42, TranslationKind::Data);
        assert!(!first.hit);
        let second = tlb.access(0x400000, 42, TranslationKind::Data);
        assert!(second.hit);
        assert_eq!(second.way, first.way);
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn eviction_reports_victim_vpn() {
        let mut tlb = tiny();
        // Set 2 receives vpns ≡ 2 (mod 4): 2, 6, 10.
        tlb.access(0, 2, TranslationKind::Data);
        tlb.access(0, 6, TranslationKind::Data);
        let out = tlb.access(0, 10, TranslationKind::Data);
        assert_eq!(out.evicted, Some(2), "LRU victim is the oldest vpn");
        assert!(!tlb.probe(2));
        assert!(tlb.probe(6));
        assert!(tlb.probe(10));
    }

    #[test]
    fn cold_fills_counted() {
        let mut tlb = tiny();
        tlb.access(0, 1, TranslationKind::Instruction);
        tlb.access(0, 5, TranslationKind::Instruction);
        assert_eq!(tlb.stats().cold_fills, 2);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut tlb = tiny();
        for vpn in 0..4 {
            tlb.access(0, vpn, TranslationKind::Data);
        }
        for vpn in 0..4 {
            assert!(tlb.probe(vpn), "vpn {vpn} sits in its own set");
        }
    }
}
