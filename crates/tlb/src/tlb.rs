//! The unified L2 TLB with a pluggable replacement policy.

use crate::efficiency::EfficiencyTracker;
use crate::policy::TlbReplacementPolicy;
use crate::stats::{DeadOutcomes, TlbStats};
use crate::types::{TlbAccess, TlbGeometry, TranslationKind};
use chirp_trace::BranchClass;

/// Telemetry scoreboard for dead-prediction outcomes: remembers, per
/// entry, the policy's fill-time dead/live prediction and whether the
/// entry has been hit since, and scores the pair when the entry is
/// evicted (see [`DeadOutcomes`]).
///
/// Purely observational: it queries the policy through the read-only
/// [`TlbReplacementPolicy::predicts_dead`] probe and keeps its own shadow
/// state, so enabling it cannot change hit/miss behaviour, victim choice
/// or any policy counter.
#[derive(Debug, Clone)]
struct OutcomeScoreboard {
    /// Fill-time prediction per (set, way); `None` for unpredicted fills.
    predicted_dead: Vec<Option<bool>>,
    /// Whether the entry was hit since its fill.
    hit_since_fill: Vec<bool>,
    outcomes: DeadOutcomes,
}

impl OutcomeScoreboard {
    fn new(entries: usize) -> OutcomeScoreboard {
        OutcomeScoreboard {
            predicted_dead: vec![None; entries],
            hit_since_fill: vec![false; entries],
            outcomes: DeadOutcomes::default(),
        }
    }

    fn on_fill(&mut self, idx: usize, prediction: Option<bool>) {
        self.predicted_dead[idx] = prediction;
        self.hit_since_fill[idx] = false;
    }

    fn on_hit(&mut self, idx: usize) {
        self.hit_since_fill[idx] = true;
    }

    fn on_evict(&mut self, idx: usize) {
        let Some(dead) = self.predicted_dead[idx] else { return };
        match (dead, self.hit_since_fill[idx]) {
            (true, false) => self.outcomes.true_dead += 1,
            (true, true) => self.outcomes.false_dead += 1,
            (false, true) => self.outcomes.true_live += 1,
            (false, false) => self.outcomes.false_live += 1,
        }
    }
}

/// Result of one L2 TLB access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the translation was resident.
    pub hit: bool,
    /// The way that hit or was filled.
    pub way: usize,
    /// The VPN evicted to make room, if any.
    pub evicted: Option<u64>,
}

/// A set-associative TLB whose replacement decisions are delegated to a
/// [`TlbReplacementPolicy`].
///
/// Generic over the policy type so hot loops can monomorphize the
/// `access → choose_victim` chain; the default `Box<dyn
/// TlbReplacementPolicy>` parameter keeps every dynamic-dispatch call
/// site compiling unchanged.
pub struct L2Tlb<P: TlbReplacementPolicy = Box<dyn TlbReplacementPolicy>> {
    geometry: TlbGeometry,
    /// `sets * ways` VPN tags, flattened row-major by set.
    tags: Vec<u64>,
    valid: Vec<bool>,
    policy: P,
    stats: TlbStats,
    efficiency: EfficiencyTracker,
    /// Dead-prediction outcome tracking; `None` (the default) keeps the
    /// access path free of telemetry work.
    scoreboard: Option<OutcomeScoreboard>,
}

impl<P: TlbReplacementPolicy> std::fmt::Debug for L2Tlb<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L2Tlb")
            .field("geometry", &self.geometry)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<P: TlbReplacementPolicy> L2Tlb<P> {
    /// Builds the TLB with `geometry` and the given policy.
    pub fn new(geometry: TlbGeometry, policy: P) -> Self {
        let sets = geometry.sets();
        L2Tlb {
            geometry,
            tags: vec![0; sets * geometry.ways],
            valid: vec![false; sets * geometry.ways],
            policy,
            stats: TlbStats::default(),
            efficiency: EfficiencyTracker::new(sets, geometry.ways),
            scoreboard: None,
        }
    }

    /// Turns on dead-prediction outcome scoring (telemetry). Observational
    /// only: the policy is queried through the read-only
    /// [`TlbReplacementPolicy::predicts_dead`] probe, so hit/miss
    /// behaviour and every policy counter stay bit-identical.
    pub fn enable_outcome_tracking(&mut self) {
        if self.scoreboard.is_none() {
            self.scoreboard = Some(OutcomeScoreboard::new(self.geometry.entries));
        }
    }

    /// Scored fill-time dead/live predictions so far; all-zero unless
    /// [`enable_outcome_tracking`](Self::enable_outcome_tracking) ran.
    pub fn dead_outcomes(&self) -> DeadOutcomes {
        self.scoreboard.as_ref().map(|s| s.outcomes).unwrap_or_default()
    }

    /// Fraction of ways currently holding a valid translation.
    pub fn occupancy(&self) -> f64 {
        let valid = self.valid.iter().filter(|&&v| v).count();
        valid as f64 / self.valid.len() as f64
    }

    /// The TLB geometry.
    pub fn geometry(&self) -> TlbGeometry {
        self.geometry
    }

    /// Looks up `vpn`, filling on a miss. `pc` is the instruction that
    /// caused the access (the PC the CHiRP signature uses, paper §IV-B).
    #[inline]
    pub fn access(&mut self, pc: u64, vpn: u64, kind: TranslationKind) -> AccessOutcome {
        let set = self.geometry.set_of(vpn);
        self.access_at(TlbAccess { pc, vpn, kind, set })
    }

    /// [`access`](Self::access) with the set index already computed — the
    /// entry point for factored back-end replay, where the front end
    /// batch-hashed the set indices of a whole event block. `acc.set`
    /// must equal `geometry.set_of(acc.vpn)`.
    #[inline]
    pub fn access_at(&mut self, acc: TlbAccess) -> AccessOutcome {
        let TlbAccess { vpn, set, .. } = acc;
        debug_assert_eq!(set, self.geometry.set_of(vpn));
        self.efficiency.tick();
        let ways = self.geometry.ways;
        let base = set * ways;

        for way in 0..ways {
            if self.valid[base + way] && self.tags[base + way] == vpn {
                self.stats.hits += 1;
                self.efficiency.on_hit(set, way);
                self.policy.on_hit(&acc, way);
                if let Some(sb) = &mut self.scoreboard {
                    sb.on_hit(base + way);
                }
                return AccessOutcome { hit: true, way, evicted: None };
            }
        }

        self.stats.misses += 1;
        // Fill an invalid way first; otherwise ask the policy for a victim.
        let (way, evicted) = match (0..ways).find(|&w| !self.valid[base + w]) {
            Some(free) => {
                self.stats.cold_fills += 1;
                (free, None)
            }
            None => {
                let victim = self.policy.choose_victim(&acc);
                assert!(victim < ways, "policy returned way {victim} of {ways}");
                let old = self.tags[base + victim];
                if let Some(sb) = &mut self.scoreboard {
                    sb.on_evict(base + victim);
                }
                self.policy.on_evict(set, victim);
                (victim, Some(old))
            }
        };
        self.tags[base + way] = vpn;
        self.valid[base + way] = true;
        self.efficiency.on_insert(set, way);
        self.policy.on_fill(&acc, way);
        if self.scoreboard.is_some() {
            // Query after `on_fill` so the prediction reflects the state
            // the policy just installed for the incoming entry.
            let prediction = self.policy.predicts_dead(set, way);
            if let Some(sb) = &mut self.scoreboard {
                sb.on_fill(base + way, prediction);
            }
        }
        AccessOutcome { hit: false, way, evicted }
    }

    /// Forwards a retired branch to the policy's history registers.
    #[inline]
    pub fn on_branch(&mut self, pc: u64, class: BranchClass, taken: bool) {
        self.policy.on_branch(pc, class, taken);
    }

    /// Forwards a misprediction event to the policy (wrong-path hook).
    #[inline]
    pub fn on_mispredict(&mut self, pc: u64) {
        self.policy.on_mispredict(pc);
    }

    /// Hands the policy a precomputed signature for the next access
    /// (factored replay; see [`TlbReplacementPolicy::supply_signature`]).
    #[inline]
    pub fn supply_signature(&mut self, sig: u16) {
        self.policy.supply_signature(sig);
    }

    /// Accumulated statistics. `dead_evictions` is sourced live from the
    /// policy (predictive policies track which victims were dead-predicted).
    pub fn stats(&self) -> TlbStats {
        TlbStats { dead_evictions: self.policy.dead_eviction_count(), ..self.stats }
    }

    /// TLB efficiency so far (Figure 1 metric).
    pub fn efficiency(&self) -> f64 {
        self.efficiency.efficiency()
    }

    /// The policy driving replacement. With the default boxed parameter
    /// this derefs to `&dyn TlbReplacementPolicy` exactly as before; for a
    /// concrete `P` it exposes the policy's own type.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// True if `vpn` is currently resident (no side effects).
    pub fn probe(&self, vpn: u64) -> bool {
        let set = self.geometry.set_of(vpn);
        let base = set * self.geometry.ways;
        (0..self.geometry.ways).any(|w| self.valid[base + w] && self.tags[base + w] == vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;

    fn tiny() -> L2Tlb {
        let geom = TlbGeometry { entries: 8, ways: 2 }; // 4 sets x 2 ways
        L2Tlb::new(geom, Box::new(Lru::new(geom)))
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = tiny();
        let first = tlb.access(0x400000, 42, TranslationKind::Data);
        assert!(!first.hit);
        let second = tlb.access(0x400000, 42, TranslationKind::Data);
        assert!(second.hit);
        assert_eq!(second.way, first.way);
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn eviction_reports_victim_vpn() {
        let mut tlb = tiny();
        // Set 2 receives vpns ≡ 2 (mod 4): 2, 6, 10.
        tlb.access(0, 2, TranslationKind::Data);
        tlb.access(0, 6, TranslationKind::Data);
        let out = tlb.access(0, 10, TranslationKind::Data);
        assert_eq!(out.evicted, Some(2), "LRU victim is the oldest vpn");
        assert!(!tlb.probe(2));
        assert!(tlb.probe(6));
        assert!(tlb.probe(10));
    }

    #[test]
    fn cold_fills_counted() {
        let mut tlb = tiny();
        tlb.access(0, 1, TranslationKind::Instruction);
        tlb.access(0, 5, TranslationKind::Instruction);
        assert_eq!(tlb.stats().cold_fills, 2);
    }

    /// A test policy that predicts every fill dead, so outcome scoring is
    /// fully exercised by plain LRU-shaped traffic.
    struct AlwaysDead {
        inner: Lru,
    }

    impl TlbReplacementPolicy for AlwaysDead {
        fn name(&self) -> &str {
            "always-dead"
        }
        fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
            self.inner.choose_victim(acc)
        }
        fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
            self.inner.on_hit(acc, way);
        }
        fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
            self.inner.on_fill(acc, way);
        }
        fn predicts_dead(&self, _set: usize, _way: usize) -> Option<bool> {
            Some(true)
        }
        fn storage(&self) -> crate::policy::PolicyStorage {
            self.inner.storage()
        }
    }

    #[test]
    fn outcome_tracking_scores_fill_predictions_at_eviction() {
        let geom = TlbGeometry { entries: 8, ways: 2 };
        let mut tlb = L2Tlb::new(geom, Box::new(AlwaysDead { inner: Lru::new(geom) }));
        tlb.enable_outcome_tracking();
        // Set 2: fill vpns 2 and 6, hit 2, then evict both via 10 and 14.
        tlb.access(0, 2, TranslationKind::Data);
        tlb.access(0, 6, TranslationKind::Data);
        tlb.access(0, 2, TranslationKind::Data); // hit: entry 2 proved live
        tlb.access(0, 10, TranslationKind::Data); // evicts 6 (LRU): never hit
        tlb.access(0, 14, TranslationKind::Data); // evicts 2: was hit
        let o = tlb.dead_outcomes();
        assert_eq!(o.true_dead, 1, "vpn 6 predicted dead, never hit");
        assert_eq!(o.false_dead, 1, "vpn 2 predicted dead but was hit");
        assert_eq!(o.true_live + o.false_live, 0, "this policy never predicts live");
    }

    #[test]
    fn outcome_tracking_defaults_off_and_unpredictive_policies_score_nothing() {
        let mut tlb = tiny();
        tlb.access(0, 2, TranslationKind::Data);
        tlb.access(0, 6, TranslationKind::Data);
        tlb.access(0, 10, TranslationKind::Data); // eviction, tracking off
        assert_eq!(tlb.dead_outcomes(), crate::stats::DeadOutcomes::default());
        let mut tracked = tiny();
        tracked.enable_outcome_tracking();
        tracked.access(0, 2, TranslationKind::Data);
        tracked.access(0, 6, TranslationKind::Data);
        tracked.access(0, 10, TranslationKind::Data);
        assert_eq!(
            tracked.dead_outcomes().total(),
            0,
            "LRU has no predictions, so nothing is scored"
        );
    }

    #[test]
    fn occupancy_rises_with_fills() {
        let mut tlb = tiny();
        assert_eq!(tlb.occupancy(), 0.0);
        tlb.access(0, 0, TranslationKind::Data);
        tlb.access(0, 1, TranslationKind::Data);
        assert!((tlb.occupancy() - 0.25).abs() < 1e-12, "2 of 8 ways valid");
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut tlb = tiny();
        for vpn in 0..4 {
            tlb.access(0, vpn, TranslationKind::Data);
        }
        for vpn in 0..4 {
            assert!(tlb.probe(vpn), "vpn {vpn} sits in its own set");
        }
    }
}
