//! TLB hierarchy, page walker and replacement-policy framework for the
//! CHiRP reproduction.
//!
//! The paper's system under study is the unified second-level TLB (1024
//! entries, 8-way, 4 KB pages) fed by 64-entry L1 instruction and data TLBs.
//! This crate provides:
//!
//! * the [`TlbReplacementPolicy`] trait through which every policy —
//!   including CHiRP from the `chirp-core` crate — plugs into the L2 TLB;
//! * baseline policies from the paper: true [`policies::Lru`],
//!   [`policies::RandomPolicy`], [`policies::Srrip`] \[Jaleel et al.\],
//!   [`policies::ShipTlb`] \[Wu et al., adapted per §II-B\] and
//!   [`policies::Ghrp`] \[Mirbagher et al., adapted per §II-C\], plus an
//!   offline [`policies::OptPolicy`] (Bélády) upper bound;
//! * per-entry liveness accounting for the paper's TLB-efficiency metric
//!   (Figure 1);
//! * the page-walk latency model with the paper's 20–360-cycle sweep.
//!
//! ```
//! use chirp_tlb::{L2Tlb, TlbAccess, TlbGeometry, TranslationKind};
//! use chirp_tlb::policies::Lru;
//!
//! let geom = TlbGeometry::default(); // 1024 entries, 8-way
//! let mut tlb = L2Tlb::new(geom, Box::new(Lru::new(geom)));
//! let miss = tlb.access(0x400000, 0x12345, TranslationKind::Data);
//! assert!(!miss.hit);
//! let hit = tlb.access(0x400000, 0x12345, TranslationKind::Data);
//! assert!(hit.hit);
//! ```

pub mod efficiency;
pub mod hierarchy;
pub mod mixed;
pub mod policies;
pub mod policy;
pub mod stats;
pub mod tlb;
pub mod types;
pub mod walker;

pub use hierarchy::{L1FrontEnd, TlbHierarchy, TlbHierarchyConfig, Translation};
pub use policy::{PolicyStorage, ReplayHints, TlbReplacementPolicy};
pub use stats::{DeadOutcomes, TlbStats};
pub use tlb::{AccessOutcome, L2Tlb};
pub use types::{TlbAccess, TlbGeometry, TranslationKind};
pub use walker::PageWalker;
