//! The two-level TLB hierarchy: L1 i-TLB and d-TLB in front of the unified
//! L2 TLB and the page walker (paper Table II).

use crate::policy::TlbReplacementPolicy;
use crate::tlb::L2Tlb;
use crate::types::{TlbGeometry, TranslationKind};
use crate::walker::PageWalker;
use chirp_mem::{order_init, order_lru, order_mask, order_touch};
use chirp_trace::BranchClass;
use serde::{Deserialize, Serialize};

/// Latency/geometry configuration for the TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbHierarchyConfig {
    /// L1 i-TLB geometry (Table II: 64-entry, 8-way).
    pub l1i: TlbGeometry,
    /// L1 d-TLB geometry (Table II: 64-entry, 8-way).
    pub l1d: TlbGeometry,
    /// L2 TLB geometry (Table II: 1024-entry, 8-way).
    pub l2: TlbGeometry,
    /// Extra cycles for an access that must consult the L2 TLB
    /// (Table II: 8-cycle L2 hit latency).
    pub l2_hit_latency: u64,
    /// Page-walk penalty in cycles (paper sweeps 20–360; 150 for the
    /// headline speedup).
    pub walk_penalty: u64,
    /// Optional paging-structure cache (Skylake-style MMU cache, paper §I):
    /// `(entries, hit_penalty)`. Walks whose PMD-level entry hits pay
    /// `hit_penalty` instead of the full penalty. `None` reproduces the
    /// paper's flat-penalty model.
    pub psc: Option<(usize, u64)>,
}

impl Default for TlbHierarchyConfig {
    fn default() -> Self {
        TlbHierarchyConfig {
            l1i: TlbGeometry::l1(),
            l1d: TlbGeometry::l1(),
            l2: TlbGeometry::default(),
            l2_hit_latency: 8,
            walk_penalty: 150,
            psc: None,
        }
    }
}

/// The result of translating one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Extra cycles beyond an L1 TLB hit (0 when the L1 hits).
    pub cycles: u64,
    /// Whether the access reached the L2 TLB and whether it hit there.
    pub l2: Option<bool>,
}

/// Simple L1 TLB: set-associative, true-LRU, no policy hooks. Mirrors
/// the `chirp_mem::Cache` layout: a flat `sets * ways` array of
/// `vpn << 1 | 1` tag words (0 when invalid — the valid bit keeps an
/// invalid slot from ever matching a key, and page numbers are at most
/// 52 bits so the shift cannot overflow) plus one packed LRU-order word
/// per set ([`chirp_mem::order_touch`]): a probe reads one contiguous
/// 64-byte tag run for the 8-way geometry, and the recency update is a
/// dozen ALU ops on a single word — tags stay read-only on hits. Fills
/// prefer the lowest free way; the victim is the back of the order
/// word, exact true LRU by construction. A per-set MRU memo collapses
/// the dominant repeated-page case to one compare.
#[derive(Debug, Clone)]
struct L1Tlb {
    geometry: TlbGeometry,
    /// `sets * ways` tag words (`vpn << 1 | 1`, 0 when invalid).
    meta: Vec<u64>,
    /// Per set: the packed LRU-order word.
    order: Vec<u64>,
    hits: u64,
    misses: u64,
    /// Per set: the most recently accessed vpn (hit or fill), `u64::MAX`
    /// before the first access. A match proves the vpn is resident and
    /// already MRU in its set — probe and recency stamp are skippable
    /// with zero simulated-state change. A 4 KiB page covers 1024
    /// sequential instruction fetches, making this the dominant i-side
    /// path.
    mru: Vec<u64>,
}

impl L1Tlb {
    fn new(geometry: TlbGeometry) -> Self {
        let sets = geometry.sets();
        assert!(geometry.ways <= 16, "packed LRU order supports at most 16 ways");
        L1Tlb {
            geometry,
            meta: vec![0; sets * geometry.ways],
            order: vec![order_init(geometry.ways); sets],
            hits: 0,
            misses: 0,
            mru: vec![u64::MAX; sets],
        }
    }

    /// Returns true on hit; fills (evicting LRU) on miss.
    #[inline]
    fn access(&mut self, vpn: u64) -> bool {
        let set = self.geometry.set_of(vpn);
        if vpn == self.mru[set] {
            self.hits += 1;
            return true;
        }
        self.mru[set] = vpn;
        if self.geometry.ways == 8 {
            self.access_sized::<8>(set, vpn)
        } else {
            self.access_dyn(set, vpn, self.geometry.ways)
        }
    }

    /// Probe with the associativity as a compile-time constant, so the
    /// scan fully unrolls.
    #[inline]
    fn access_sized<const W: usize>(&mut self, set: usize, vpn: u64) -> bool {
        let base = set * W;
        let tags: &mut [u64; W] =
            (&mut self.meta[base..base + W]).try_into().expect("slice spans W ways");
        let key = vpn << 1 | 1;
        let mask = order_mask(W);
        let mut free = usize::MAX;
        for (way, &tag) in tags.iter().enumerate() {
            if tag == key {
                self.order[set] = order_touch(self.order[set], way, mask);
                self.hits += 1;
                return true;
            }
            if tag == 0 {
                free = free.min(way);
            }
        }
        self.misses += 1;
        let order = self.order[set];
        // Lowest free way if the set has room, else the back of the
        // order word — the exact LRU way.
        let way = if free != usize::MAX { free } else { order_lru(order, W) };
        tags[way] = key;
        self.order[set] = order_touch(order, way, mask);
        false
    }

    /// Runtime-trip-count fallback for unusual geometries.
    fn access_dyn(&mut self, set: usize, vpn: u64, ways: usize) -> bool {
        let base = set * ways;
        let tags = &mut self.meta[base..base + ways];
        let key = vpn << 1 | 1;
        let mask = order_mask(ways);
        let mut free = usize::MAX;
        let mut hit = usize::MAX;
        for (way, &tag) in tags.iter().enumerate() {
            if tag == key {
                hit = way;
                break;
            }
            if tag == 0 {
                free = free.min(way);
            }
        }
        if hit != usize::MAX {
            self.order[set] = order_touch(self.order[set], hit, mask);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let order = self.order[set];
        let way = if free != usize::MAX { free } else { order_lru(order, ways) };
        tags[way] = key;
        self.order[set] = order_touch(order, way, mask);
        false
    }
}

/// The policy-free half of the hierarchy: just the L1 i/d TLBs.
///
/// The L1s are private true-LRU structures with no replacement-policy
/// hooks, so their hit/miss sequence is identical no matter which L2
/// policy runs behind them. A factored front end (see `chirp-sim`)
/// drives this pair once per trace to discover which accesses reach the
/// L2, then replays only those against each policy back-end. Built from
/// the same [`TlbHierarchyConfig`] as [`TlbHierarchy`], it produces the
/// exact same L1 filter the full hierarchy would.
#[derive(Debug, Clone)]
pub struct L1FrontEnd {
    l1i: L1Tlb,
    l1d: L1Tlb,
}

impl L1FrontEnd {
    /// Builds the L1 pair from the hierarchy configuration.
    pub fn new(config: &TlbHierarchyConfig) -> Self {
        L1FrontEnd { l1i: L1Tlb::new(config.l1i), l1d: L1Tlb::new(config.l1d) }
    }

    /// Looks up `vpn` in the L1 of the given kind, filling (true LRU) on
    /// a miss. Returns whether it hit — a miss is exactly an access that
    /// reaches the unified L2 in the full hierarchy.
    #[inline]
    pub fn hit(&mut self, vpn: u64, kind: TranslationKind) -> bool {
        match kind {
            TranslationKind::Instruction => self.l1i.access(vpn),
            TranslationKind::Data => self.l1d.access(vpn),
        }
    }

    /// L1 statistics: (i-TLB hits, i-TLB misses, d-TLB hits, d-TLB misses).
    pub fn l1_stats(&self) -> (u64, u64, u64, u64) {
        (self.l1i.hits, self.l1i.misses, self.l1d.hits, self.l1d.misses)
    }
}

/// L1 i/d TLBs + unified L2 TLB + page walker.
///
/// Generic over the L2 replacement policy (defaulting to the boxed trait
/// object) so the `translate → access → choose_victim` chain monomorphizes
/// when a concrete policy type is plugged in.
pub struct TlbHierarchy<P: TlbReplacementPolicy = Box<dyn TlbReplacementPolicy>> {
    l1i: L1Tlb,
    l1d: L1Tlb,
    l2: L2Tlb<P>,
    walker: PageWalker,
    config: TlbHierarchyConfig,
}

impl<P: TlbReplacementPolicy> std::fmt::Debug for TlbHierarchy<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlbHierarchy").field("config", &self.config).field("l2", &self.l2).finish()
    }
}

impl<P: TlbReplacementPolicy> TlbHierarchy<P> {
    /// Builds the hierarchy with the given L2 replacement policy.
    pub fn new(config: TlbHierarchyConfig, l2_policy: P) -> Self {
        let mut walker = PageWalker::new(config.walk_penalty);
        if let Some((entries, hit_penalty)) = config.psc {
            walker = walker.with_psc(entries, hit_penalty);
        }
        TlbHierarchy {
            l1i: L1Tlb::new(config.l1i),
            l1d: L1Tlb::new(config.l1d),
            l2: L2Tlb::new(config.l2, l2_policy),
            walker,
            config,
        }
    }

    /// Translates an address. `pc` is the instruction responsible (equal to
    /// the translated address for instruction fetches).
    #[inline]
    pub fn translate(&mut self, pc: u64, vpn: u64, kind: TranslationKind) -> Translation {
        let l1 = match kind {
            TranslationKind::Instruction => &mut self.l1i,
            TranslationKind::Data => &mut self.l1d,
        };
        if l1.access(vpn) {
            return Translation { cycles: 0, l2: None };
        }
        let outcome = self.l2.access(pc, vpn, kind);
        if outcome.hit {
            Translation { cycles: self.config.l2_hit_latency, l2: Some(true) }
        } else {
            let walk = self.walker.walk(vpn);
            Translation { cycles: self.config.l2_hit_latency + walk, l2: Some(false) }
        }
    }

    /// Forwards a retired branch to the L2 policy.
    #[inline]
    pub fn on_branch(&mut self, pc: u64, class: BranchClass, taken: bool) {
        self.l2.on_branch(pc, class, taken);
    }

    /// Forwards a misprediction event to the L2 policy (wrong-path
    /// modelling hook).
    #[inline]
    pub fn on_mispredict(&mut self, pc: u64) {
        self.l2.on_mispredict(pc);
    }

    /// The L2 TLB (stats, efficiency, policy access).
    pub fn l2(&self) -> &L2Tlb<P> {
        &self.l2
    }

    /// Mutable L2 TLB access, for enabling telemetry tracking
    /// ([`L2Tlb::enable_outcome_tracking`]) before a run.
    pub fn l2_mut(&mut self) -> &mut L2Tlb<P> {
        &mut self.l2
    }

    /// L1 statistics: (i-TLB hits, i-TLB misses, d-TLB hits, d-TLB misses).
    pub fn l1_stats(&self) -> (u64, u64, u64, u64) {
        (self.l1i.hits, self.l1i.misses, self.l1d.hits, self.l1d.misses)
    }

    /// The page walker (walk counts and cycles).
    pub fn walker(&self) -> &PageWalker {
        &self.walker
    }

    /// The configuration in use.
    pub fn config(&self) -> TlbHierarchyConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;

    fn hierarchy() -> TlbHierarchy {
        let config = TlbHierarchyConfig::default();
        TlbHierarchy::new(config, Box::new(Lru::new(config.l2)))
    }

    #[test]
    fn l1_hit_is_free() {
        let mut h = hierarchy();
        h.translate(0x400000, 7, TranslationKind::Data);
        let t = h.translate(0x400000, 7, TranslationKind::Data);
        assert_eq!(t, Translation { cycles: 0, l2: None });
    }

    #[test]
    fn l2_miss_pays_walk() {
        let mut h = hierarchy();
        let t = h.translate(0x400000, 7, TranslationKind::Data);
        assert_eq!(t.cycles, 8 + 150);
        assert_eq!(t.l2, Some(false));
        assert_eq!(h.walker().walks(), 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        // Fill L1 d-TLB set 0 (vpns ≡ 0 mod 8) beyond its 8 ways.
        for i in 0..9u64 {
            h.translate(0x400000, i * 8, TranslationKind::Data);
        }
        // vpn 0 fell out of L1 but is still in the 1024-entry L2.
        let t = h.translate(0x400000, 0, TranslationKind::Data);
        assert_eq!(t, Translation { cycles: 8, l2: Some(true) });
    }

    #[test]
    fn psc_option_discounts_neighbouring_walks() {
        let config = TlbHierarchyConfig { psc: Some((16, 30)), ..Default::default() };
        let mut h = TlbHierarchy::new(config, Box::new(Lru::new(config.l2)));
        // Two misses to neighbouring pages: the second walk hits the PSC.
        let t1 = h.translate(0, 0x1000, TranslationKind::Data);
        let t2 = h.translate(0, 0x1001, TranslationKind::Data);
        assert_eq!(t1.cycles, 8 + 150);
        assert_eq!(t2.cycles, 8 + 30);
    }

    #[test]
    fn instruction_and_data_l1_are_separate() {
        let mut h = hierarchy();
        h.translate(0x400000, 0x400, TranslationKind::Instruction);
        // Same vpn on the data side misses L1d but hits unified L2.
        let t = h.translate(0x400000, 0x400, TranslationKind::Data);
        assert_eq!(t, Translation { cycles: 8, l2: Some(true) });
    }
}
