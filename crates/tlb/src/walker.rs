//! Page-walk latency model.
//!
//! The paper treats the L2 TLB miss penalty as a configurable flat cost and
//! sweeps it from 20 to 360 cycles (§V, Figure 10), citing measured
//! penalties between 18 (Haswell) and 272 (Broadwell-Xeon) cycles. This
//! model reproduces that: a flat `penalty` per walk, with an optional
//! paging-structure cache (PSC) extension that discounts walks whose
//! upper-level entries were recently used — the Skylake-style MMU caches the
//! paper mentions in §I.

use chirp_mem::PackedLru;

/// Flat-latency page walker with an optional paging-structure cache.
#[derive(Debug, Clone)]
pub struct PageWalker {
    penalty: u64,
    psc: Option<Psc>,
    walks: u64,
    cycles: u64,
}

#[derive(Debug, Clone)]
struct Psc {
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: PackedLru,
    hit_penalty: u64,
}

impl PageWalker {
    /// A walker with a flat `penalty` per walk (the paper's model).
    pub fn new(penalty: u64) -> Self {
        PageWalker { penalty, psc: None, walks: 0, cycles: 0 }
    }

    /// Enables the PSC extension: walks whose PMD-level entry (vpn >> 9)
    /// hits a fully-associative `entries`-entry cache cost `hit_penalty`
    /// instead of the full penalty.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn with_psc(mut self, entries: usize, hit_penalty: u64) -> Self {
        assert!(entries > 0, "PSC needs at least one entry");
        self.psc = Some(Psc {
            tags: vec![0; entries],
            valid: vec![false; entries],
            lru: PackedLru::new(1, entries),
            hit_penalty,
        });
        self
    }

    /// Performs a walk for `vpn` and returns its cycle cost.
    #[inline]
    pub fn walk(&mut self, vpn: u64) -> u64 {
        self.walks += 1;
        let cost = match &mut self.psc {
            None => self.penalty,
            Some(psc) => {
                let pmd = vpn >> 9;
                let hit = (0..psc.tags.len()).find(|&i| psc.valid[i] && psc.tags[i] == pmd);
                match hit {
                    Some(i) => {
                        psc.lru.touch(0, i);
                        psc.hit_penalty
                    }
                    None => {
                        let victim = (0..psc.tags.len())
                            .find(|&i| !psc.valid[i])
                            .unwrap_or_else(|| psc.lru.lru(0));
                        psc.tags[victim] = pmd;
                        psc.valid[victim] = true;
                        psc.lru.touch(0, victim);
                        self.penalty
                    }
                }
            }
        };
        self.cycles += cost;
        cost
    }

    /// Flat penalty this walker was built with.
    pub fn penalty(&self) -> u64 {
        self.penalty
    }

    /// Number of walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total walk cycles accumulated.
    pub fn total_cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_penalty() {
        let mut w = PageWalker::new(150);
        assert_eq!(w.walk(1), 150);
        assert_eq!(w.walk(2), 150);
        assert_eq!(w.walks(), 2);
        assert_eq!(w.total_cycles(), 300);
    }

    #[test]
    fn psc_discounts_nearby_pages() {
        let mut w = PageWalker::new(150).with_psc(16, 30);
        assert_eq!(w.walk(0x1000), 150, "first walk misses the PSC");
        assert_eq!(w.walk(0x1001), 30, "same PMD region hits the PSC");
        assert_eq!(w.walk(0x9_0000), 150, "distant page misses again");
    }

    #[test]
    fn psc_evicts_lru() {
        let mut w = PageWalker::new(100).with_psc(2, 10);
        w.walk(0 << 9);
        w.walk(1 << 9);
        w.walk(2 << 9); // evicts PMD 0
        assert_eq!(w.walk(0), 100);
    }
}
