//! The replacement-policy interface every policy implements.
//!
//! The L2 TLB owns the tag/valid arrays; a policy owns whatever per-entry
//! metadata it needs (LRU stacks, RRPVs, signatures, dead bits) plus any
//! prediction tables, and reacts to the TLB's callbacks. The interface also
//! exposes the two accounting hooks the paper's evaluation needs:
//! prediction-table access counts (Figure 11) and storage overhead
//! (Table I / §VI-H).

use crate::types::TlbAccess;
use chirp_trace::BranchClass;

/// Storage accounting for a policy (Table I style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStorage {
    /// Bits of metadata stored per TLB entry, summed over all entries.
    pub metadata_bits: u64,
    /// Bits of global state (history registers).
    pub register_bits: u64,
    /// Bits of prediction tables.
    pub table_bits: u64,
}

impl PolicyStorage {
    /// Total storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.metadata_bits + self.register_bits + self.table_bits
    }

    /// Total storage in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// What a policy needs from the event stream when a factored back-end
/// replays pre-recorded L2 accesses instead of running inside the full
/// simulator (see `chirp-sim`'s front-end/back-end split).
///
/// The hints are a pure replay-time *optimization*: a policy that
/// declares `needs_branches: false` promises that skipping
/// [`TlbReplacementPolicy::on_branch`] calls cannot change any of its
/// observable behaviour (victim choices, counters, storage). The
/// conservative default ([`ReplayHints::conservative`]) keeps every
/// event, so policies that don't override
/// [`TlbReplacementPolicy::replay_hints`] are always replayed faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayHints {
    /// Replay must forward retired-branch events
    /// ([`TlbReplacementPolicy::on_branch`]).
    pub needs_branches: bool,
    /// Replay must forward misprediction events
    /// ([`TlbReplacementPolicy::on_mispredict`]).
    pub needs_mispredicts: bool,
    /// The policy consumes the stream's precomputed per-access signature
    /// via [`TlbReplacementPolicy::supply_signature`] instead of running
    /// its own history registers. Only meaningful when the policy has
    /// verified the stream's signature-configuration code matches its
    /// own.
    pub accepts_signatures: bool,
}

impl ReplayHints {
    /// Safe for every policy: forward all control events, precompute
    /// nothing.
    pub const fn conservative() -> Self {
        ReplayHints { needs_branches: true, needs_mispredicts: true, accepts_signatures: false }
    }

    /// For stateless-between-accesses policies (LRU, Random, RRIP
    /// family): no control events, no signatures.
    pub const fn none() -> Self {
        ReplayHints { needs_branches: false, needs_mispredicts: false, accepts_signatures: false }
    }

    /// For branch-history policies without wrong-path modelling (GHRP,
    /// perceptron reuse).
    pub const fn branches_only() -> Self {
        ReplayHints { needs_branches: true, needs_mispredicts: false, accepts_signatures: false }
    }
}

/// Replacement policy for a set-associative TLB.
///
/// Call protocol, per L2 TLB access:
///
/// 1. the TLB resolves hit/miss against its tags;
/// 2. on a hit, it calls [`on_hit`](Self::on_hit);
/// 3. on a miss with a free (invalid) way it calls
///    [`on_fill`](Self::on_fill) directly;
/// 4. on a miss with a full set it calls
///    [`choose_victim`](Self::choose_victim), then
///    [`on_evict`](Self::on_evict) for the chosen way, then
///    [`on_fill`](Self::on_fill) for the new entry in that way.
///
/// Independently, the driving simulator forwards every retired branch to
/// [`on_branch`](Self::on_branch) so history-based policies can maintain
/// their registers.
pub trait TlbReplacementPolicy {
    /// Short stable name for reports (e.g. `"lru"`, `"chirp"`).
    fn name(&self) -> &str;

    /// Picks the way to evict in `acc.set`. All ways are valid when this is
    /// called. Must return a way index `< ways`.
    fn choose_victim(&mut self, acc: &TlbAccess) -> usize;

    /// The access hit `way` in `acc.set`.
    fn on_hit(&mut self, acc: &TlbAccess, way: usize);

    /// A new entry for `acc.vpn` was installed in `way` of `acc.set`.
    fn on_fill(&mut self, acc: &TlbAccess, way: usize);

    /// The entry in (`set`, `way`) chosen by [`choose_victim`](Self::choose_victim)
    /// is being evicted (called before [`on_fill`](Self::on_fill)).
    fn on_evict(&mut self, _set: usize, _way: usize) {}

    /// A branch retired. History-based policies fold the PC into their
    /// registers (paper Algorithm 5, lines 22–26).
    fn on_branch(&mut self, _pc: u64, _class: BranchClass, _taken: bool) {}

    /// A branch mispredicted: the front end fetched down the wrong path
    /// before redirecting. Policies that maintain *speculative* histories
    /// without commit-time recovery model their pollution here; the
    /// paper's CHiRP keeps a committed history and ignores this (§VI-E).
    fn on_mispredict(&mut self, _pc: u64) {}

    /// Total reads + writes of prediction tables so far (Figure 11).
    fn prediction_table_accesses(&self) -> u64 {
        0
    }

    /// Evictions that picked a predicted-dead entry rather than the LRU
    /// fallback (0 for non-predictive policies).
    fn dead_eviction_count(&self) -> u64 {
        0
    }

    /// The policy's *current* reuse prediction for the entry in
    /// (`set`, `way`): `Some(true)` if it considers the entry dead,
    /// `Some(false)` if live, `None` for policies that keep no explicit
    /// prediction (LRU, Random, OPT).
    ///
    /// This is a read-only telemetry probe — implementations must not
    /// touch prediction tables or counters (in particular it must not
    /// count towards [`Self::prediction_table_accesses`]), so querying
    /// it cannot perturb
    /// simulation results. RRIP-family policies map a distant re-reference
    /// prediction (RRPV = max) to "dead".
    fn predicts_dead(&self, _set: usize, _way: usize) -> Option<bool> {
        None
    }

    /// Storage overhead breakdown (Table I / §VI-H).
    fn storage(&self) -> PolicyStorage;

    /// Which event classes this policy needs when a factored back-end
    /// replays a pre-recorded L2 access stream. `sig_code` identifies the
    /// signature configuration the stream's precomputed signatures were
    /// built with (see `ChirpConfig::signature_code` in `chirp-core`);
    /// a policy may only claim `accepts_signatures` when that code
    /// matches its own. The default is fully conservative, so policies
    /// that ignore this hook are always replayed faithfully.
    fn replay_hints(&self, _sig_code: u64) -> ReplayHints {
        ReplayHints::conservative()
    }

    /// Hands the policy the stream's precomputed signature for the next
    /// L2 access. Only called when [`Self::replay_hints`] returned
    /// `accepts_signatures: true`; the default implementation drops it.
    fn supply_signature(&mut self, _sig: u16) {}

    /// Downcast hook for diagnostics tooling; policies that expose internal
    /// state override this to return `self`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Forwarding impl so a boxed policy satisfies `P: TlbReplacementPolicy`
/// bounds — the compatibility shim that lets `Box<dyn
/// TlbReplacementPolicy>` remain the default type parameter of the generic
/// TLB/simulator stack while monomorphized callers plug concrete policies
/// in directly.
impl<T: TlbReplacementPolicy + ?Sized> TlbReplacementPolicy for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        (**self).choose_victim(acc)
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        (**self).on_hit(acc, way)
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        (**self).on_fill(acc, way)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        (**self).on_evict(set, way)
    }

    fn on_branch(&mut self, pc: u64, class: BranchClass, taken: bool) {
        (**self).on_branch(pc, class, taken)
    }

    fn on_mispredict(&mut self, pc: u64) {
        (**self).on_mispredict(pc)
    }

    fn prediction_table_accesses(&self) -> u64 {
        (**self).prediction_table_accesses()
    }

    fn dead_eviction_count(&self) -> u64 {
        (**self).dead_eviction_count()
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        (**self).predicts_dead(set, way)
    }

    fn storage(&self) -> PolicyStorage {
        (**self).storage()
    }

    fn replay_hints(&self, sig_code: u64) -> ReplayHints {
        (**self).replay_hints(sig_code)
    }

    fn supply_signature(&mut self, sig: u16) {
        (**self).supply_signature(sig)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_totals() {
        let s = PolicyStorage { metadata_bits: 10, register_bits: 3, table_bits: 4 };
        assert_eq!(s.total_bits(), 17);
        assert_eq!(s.total_bytes(), 3);
    }

    #[test]
    fn zero_storage_is_zero_bytes() {
        assert_eq!(PolicyStorage::default().total_bytes(), 0);
    }
}
