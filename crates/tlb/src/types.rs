//! Core TLB types: geometry and the per-access context handed to policies.

use serde::{Deserialize, Serialize};

/// Whether a translation serves an instruction fetch or a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TranslationKind {
    /// Instruction-side translation (L1 i-TLB missed).
    Instruction,
    /// Data-side translation (L1 d-TLB missed).
    Data,
}

/// Geometry of a set-associative TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbGeometry {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for TlbGeometry {
    /// The paper's L2 TLB: 1024 entries, 8-way.
    fn default() -> Self {
        TlbGeometry { entries: 1024, ways: 8 }
    }
}

impl TlbGeometry {
    /// The paper's L1 TLBs: 64 entries, 8-way.
    pub fn l1() -> Self {
        TlbGeometry { entries: 64, ways: 8 }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or the set count is not a power
    /// of two.
    pub fn sets(&self) -> usize {
        assert!(
            self.ways > 0 && self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        let sets = self.entries / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        sets
    }

    /// Set index for a virtual page number.
    #[inline]
    pub fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets() - 1)
    }
}

/// Context for one L2 TLB access, handed to the replacement policy.
///
/// `pc` is the address of the instruction that caused the access — for
/// instruction-side accesses that is the fetched PC itself; for data-side
/// accesses it is the load/store instruction. The CHiRP signature is built
/// from this PC (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbAccess {
    /// PC of the instruction causing the access.
    pub pc: u64,
    /// Virtual page number being translated.
    pub vpn: u64,
    /// Instruction- or data-side.
    pub kind: TranslationKind,
    /// Set index within the L2 TLB.
    pub set: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let g = TlbGeometry::default();
        assert_eq!(g.entries, 1024);
        assert_eq!(g.ways, 8);
        assert_eq!(g.sets(), 128);
    }

    #[test]
    fn l1_geometry_matches_paper() {
        let g = TlbGeometry::l1();
        assert_eq!(g.entries, 64);
        assert_eq!(g.ways, 8);
        assert_eq!(g.sets(), 8);
    }

    #[test]
    fn set_of_masks_low_bits() {
        let g = TlbGeometry::default();
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(127), 127);
        assert_eq!(g.set_of(128), 0);
        assert_eq!(g.set_of(0x12345), 0x45);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_rejected() {
        let _ = TlbGeometry { entries: 24, ways: 8 }.sets();
    }
}
