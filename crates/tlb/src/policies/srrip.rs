//! Static re-reference interval prediction (SRRIP), adapted to TLB entries.
//!
//! Each entry carries a 2-bit re-reference prediction value (RRPV). New
//! entries are inserted with a *long* re-reference prediction (RRPV =
//! 2^M − 2); hits promote to near-immediate (0); the victim is the first
//! entry with a *distant* prediction (RRPV = 2^M − 1), aging the whole set
//! until one exists \[Jaleel et al., ISCA 2010; paper §II-A\].

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};

const RRPV_BITS: u8 = 2;
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1; // 3: distant
const RRPV_LONG: u8 = RRPV_MAX - 1; // 2: insertion value

/// SRRIP with hit-promotion (HP) update.
#[derive(Debug, Clone)]
pub struct Srrip {
    rrpv: Vec<u8>,
    geometry: TlbGeometry,
}

impl Srrip {
    /// Creates SRRIP state for `geometry`.
    pub fn new(geometry: TlbGeometry) -> Self {
        Srrip { rrpv: vec![RRPV_MAX; geometry.entries], geometry }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }
}

impl TlbReplacementPolicy for Srrip {
    fn name(&self) -> &str {
        "srrip"
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        loop {
            for way in 0..self.geometry.ways {
                if self.rrpv[self.idx(acc.set, way)] == RRPV_MAX {
                    return way;
                }
            }
            // Age the set until a distant entry exists.
            for way in 0..self.geometry.ways {
                let i = self.idx(acc.set, way);
                self.rrpv[i] += 1;
            }
        }
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.rrpv[i] = 0;
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.rrpv[i] = RRPV_LONG;
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        // A distant re-reference prediction is RRIP's notion of "dead".
        Some(self.rrpv[self.idx(set, way)] == RRPV_MAX)
    }

    /// Keeps no branch history and consumes no signatures: replay can
    /// drop every control event.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::none()
    }

    fn storage(&self) -> PolicyStorage {
        PolicyStorage {
            metadata_bits: u64::from(RRPV_BITS) * self.geometry.entries as u64,
            register_bits: 0,
            table_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationKind;

    fn acc(set: usize) -> TlbAccess {
        TlbAccess { pc: 0, vpn: 0, kind: TranslationKind::Data, set }
    }

    #[test]
    fn fresh_insertions_age_before_reused_entries() {
        let geom = TlbGeometry { entries: 4, ways: 4 };
        let mut p = Srrip::new(geom);
        for way in 0..4 {
            p.on_fill(&acc(0), way);
        }
        p.on_hit(&acc(0), 1); // way 1 promoted to RRPV 0
                              // Victim: everyone but way 1 is at RRPV 2 → aged to 3; way 0 chosen
                              // (first scan order).
        let v = p.choose_victim(&acc(0));
        assert_ne!(v, 1, "recently reused entry must not be the victim");
    }

    #[test]
    fn aging_terminates_and_is_bounded() {
        let geom = TlbGeometry { entries: 2, ways: 2 };
        let mut p = Srrip::new(geom);
        p.on_fill(&acc(0), 0);
        p.on_hit(&acc(0), 0);
        p.on_fill(&acc(0), 1);
        p.on_hit(&acc(0), 1);
        // Both at 0; aging must raise both to RRPV_MAX and pick way 0.
        assert_eq!(p.choose_victim(&acc(0)), 0);
        assert!(p.rrpv.iter().all(|&r| r <= RRPV_MAX));
    }

    #[test]
    fn storage_two_bits_per_entry() {
        let p = Srrip::new(TlbGeometry::default());
        assert_eq!(p.storage().metadata_bits, 2 * 1024);
    }
}
