//! GHRP (Global History Reuse Prediction) adapted to the L2 TLB.
//!
//! GHRP \[Mirbagher et al., ISCA 2018\] is the state-of-the-art predictive
//! replacement policy for instruction caches and BTBs. Like a branch
//! predictor, it folds conditional-branch outcomes and low-order branch
//! address bits into a global history register, hashes the accessing PC
//! with that history into *three* prediction tables of saturating counters,
//! and sums them to classify an entry as dead (§II-C of the CHiRP paper).
//!
//! As in the original, the tables are read and trained on *every* access:
//! a hit decrements the counters under the entry's stored signature and
//! re-reads a prediction under the new one; an eviction increments the
//! victim's counters. This per-access traffic is GHRP's cost relative to
//! CHiRP (Figure 11), and its outcome-heavy history is what limits its
//! accuracy on TLB reuse (paper §III).

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};
use chirp_mem::PackedLru;
use chirp_trace::BranchClass;
use serde::{Deserialize, Serialize};

/// GHRP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhrpConfig {
    /// log2 entries per prediction table (three tables total).
    pub table_bits: u32,
    /// Sum-of-counters threshold; a strictly greater sum predicts dead.
    pub dead_threshold: u32,
}

impl Default for GhrpConfig {
    fn default() -> Self {
        // 3 tables x 4096 x 2-bit = 3 KB: the 8K-ish GHRP budget the paper
        // compares against (§VI-F notes an 8K GHRP reaches ~9%).
        GhrpConfig { table_bits: 12, dead_threshold: 7 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct EntryMeta {
    signature: u16,
    dead: bool,
}

/// GHRP adapted from BTB/i-cache replacement to TLB entries.
#[derive(Debug, Clone)]
pub struct Ghrp {
    meta: Vec<EntryMeta>,
    tables: [Vec<u8>; 3],
    lru: PackedLru,
    history: u64,
    config: GhrpConfig,
    geometry: TlbGeometry,
    table_accesses: u64,
    dead_evictions: u64,
}

impl Ghrp {
    /// Creates GHRP state for `geometry`.
    pub fn new(geometry: TlbGeometry, config: GhrpConfig) -> Self {
        assert!((1..=20).contains(&config.table_bits), "table_bits out of range");
        let n = 1usize << config.table_bits;
        Ghrp {
            meta: vec![EntryMeta::default(); geometry.entries],
            tables: [vec![0u8; n], vec![0u8; n], vec![0u8; n]],
            lru: PackedLru::new(geometry.sets(), geometry.ways),
            history: 0,
            config,
            geometry,
            table_accesses: 0,
            dead_evictions: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    /// 16-bit signature of (PC, outcome/path history).
    #[inline]
    fn signature(&self, pc: u64) -> u16 {
        let h = (pc >> 2) ^ self.history.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h ^ (h >> 17) ^ (h >> 33)) & 0xffff) as u16
    }

    /// Three distinct table indices derived from a signature.
    #[inline]
    fn indices(&self, sig: u16) -> [usize; 3] {
        let mask = (1usize << self.config.table_bits) - 1;
        let s = sig as u64;
        [
            (s.wrapping_mul(0x9E37_79B1) >> 4) as usize & mask,
            (s.wrapping_mul(0x85EB_CA77) >> 7) as usize & mask,
            (s.wrapping_mul(0xC2B2_AE3D) >> 9) as usize & mask,
        ]
    }

    fn counter_sum(&self, sig: u16) -> u32 {
        let idx = self.indices(sig);
        (0..3).map(|t| u32::from(self.tables[t][idx[t]])).sum()
    }

    fn bump(&mut self, sig: u16, up: bool) {
        let idx = self.indices(sig);
        for (t, &i) in idx.iter().enumerate() {
            let c = &mut self.tables[t][i];
            if up {
                if *c < 3 {
                    *c += 1;
                }
            } else {
                *c = c.saturating_sub(1);
            }
        }
        self.table_accesses += 1;
    }

    fn predict_dead(&mut self, sig: u16) -> bool {
        self.table_accesses += 1;
        self.counter_sum(sig) > self.config.dead_threshold
    }
}

impl TlbReplacementPolicy for Ghrp {
    fn name(&self) -> &str {
        "ghrp"
    }

    #[inline]
    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        // Prefer a predicted-dead entry, else LRU.
        for way in 0..self.geometry.ways {
            if self.meta[self.idx(acc.set, way)].dead {
                self.dead_evictions += 1;
                return way;
            }
        }
        self.lru.lru(acc.set)
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        let old_sig = self.meta[i].signature;
        // The entry proved live under its previous signature: train down.
        self.bump(old_sig, false);
        let new_sig = self.signature(acc.pc);
        let dead = self.predict_dead(new_sig);
        let m = &mut self.meta[i];
        m.signature = new_sig;
        m.dead = dead;
        self.lru.touch(acc.set, way);
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let sig = self.meta[self.idx(set, way)].signature;
        // Evicted ⇒ it was dead under its last signature: train up.
        self.bump(sig, true);
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        let sig = self.signature(acc.pc);
        let dead = self.predict_dead(sig);
        let m = &mut self.meta[i];
        m.signature = sig;
        m.dead = dead;
        self.lru.touch(acc.set, way);
    }

    fn on_branch(&mut self, pc: u64, class: BranchClass, taken: bool) {
        if class == BranchClass::Conditional {
            // Outcome bit plus three low-order branch-address bits, as the
            // original GHRP history does for instruction streams.
            self.history = (self.history << 4) | (((pc >> 2) & 0x7) << 1) | u64::from(taken);
        }
    }

    fn prediction_table_accesses(&self) -> u64 {
        self.table_accesses
    }

    fn dead_eviction_count(&self) -> u64 {
        self.dead_evictions
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        Some(self.meta[self.idx(set, way)].dead)
    }

    /// Needs every retired branch for its history register, but models
    /// no wrong-path pollution and consumes no precomputed signatures.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::branches_only()
    }

    fn storage(&self) -> PolicyStorage {
        let lru_bits = (self.geometry.ways as f64).log2().ceil() as u64;
        PolicyStorage {
            metadata_bits: (16 + 1 + lru_bits) * self.geometry.entries as u64,
            register_bits: 64,
            table_bits: 3 * 2 * (1u64 << self.config.table_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationKind;

    fn acc(pc: u64, set: usize) -> TlbAccess {
        TlbAccess { pc, vpn: 0, kind: TranslationKind::Data, set }
    }

    fn tiny() -> Ghrp {
        Ghrp::new(TlbGeometry { entries: 8, ways: 4 }, GhrpConfig::default())
    }

    #[test]
    fn repeated_evictions_mark_signature_dead() {
        let mut p = tiny();
        let pc = 0x400100;
        for _ in 0..12 {
            p.on_fill(&acc(pc, 0), 0);
            p.on_evict(0, 0);
        }
        p.on_fill(&acc(pc, 0), 0);
        assert!(p.meta[0].dead, "constantly evicted signature must predict dead");
    }

    #[test]
    fn dead_entry_preferred_over_lru() {
        let mut p = tiny();
        for way in 0..4 {
            p.on_fill(&acc(0x100 + way as u64 * 4, 0), way);
        }
        let i = p.idx(0, 2);
        p.meta[i].dead = true;
        assert_eq!(p.choose_victim(&acc(0, 0)), 2);
    }

    #[test]
    fn falls_back_to_lru_without_dead_entries() {
        let mut p = tiny();
        for way in 0..4 {
            p.on_fill(&acc(0x100, 0), way);
        }
        p.on_hit(&acc(0x100, 0), 0);
        // No dead bits set (fresh tables) → LRU way 1.
        for way in 0..4 {
            let i = p.idx(0, way);
            p.meta[i].dead = false;
        }
        assert_eq!(p.choose_victim(&acc(0, 0)), 1);
    }

    #[test]
    fn history_reacts_to_conditional_branches_only() {
        let mut p = tiny();
        let h0 = p.history;
        p.on_branch(0x400, BranchClass::UnconditionalDirect, true);
        assert_eq!(p.history, h0, "direct branches do not update GHRP history");
        p.on_branch(0x400, BranchClass::Conditional, true);
        assert_ne!(p.history, h0);
    }

    #[test]
    fn hits_train_down() {
        let mut p = tiny();
        let pc = 0x400200;
        // Saturate up.
        for _ in 0..12 {
            p.on_fill(&acc(pc, 0), 0);
            p.on_evict(0, 0);
        }
        let sig = p.signature(pc);
        let high = p.counter_sum(sig);
        p.on_fill(&acc(pc, 0), 0);
        p.on_hit(&acc(pc, 0), 0);
        assert!(p.counter_sum(sig) < high, "a hit must decrement the stored signature");
    }

    #[test]
    fn table_accesses_counted_per_access() {
        let mut p = tiny();
        p.on_fill(&acc(0x100, 0), 0); // 1 read
        p.on_hit(&acc(0x100, 0), 0); // 1 write + 1 read
        p.on_evict(0, 0); // 1 write
        assert_eq!(p.prediction_table_accesses(), 4);
    }
}
