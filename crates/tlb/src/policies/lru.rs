//! True least-recently-used replacement.

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};
use chirp_mem::PackedLru;

/// True LRU: per-set recency in one flat packed age array.
#[derive(Debug, Clone)]
pub struct Lru {
    stacks: PackedLru,
    geometry: TlbGeometry,
}

impl Lru {
    /// Creates LRU state for `geometry`.
    pub fn new(geometry: TlbGeometry) -> Self {
        Lru { stacks: PackedLru::new(geometry.sets(), geometry.ways), geometry }
    }
}

impl TlbReplacementPolicy for Lru {
    fn name(&self) -> &str {
        "lru"
    }

    #[inline]
    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        self.stacks.lru(acc.set)
    }

    #[inline]
    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        self.stacks.touch(acc.set, way);
    }

    #[inline]
    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        self.stacks.touch(acc.set, way);
    }

    /// Keeps no branch history and consumes no signatures: replay can
    /// drop every control event.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::none()
    }

    fn storage(&self) -> PolicyStorage {
        // ceil(log2(ways!)) bits per set is the information-theoretic cost;
        // hardware uses ~3 bits per entry for 8 ways (paper Table I).
        let bits_per_entry = (self.geometry.ways as f64).log2().ceil() as u64;
        PolicyStorage {
            metadata_bits: bits_per_entry * self.geometry.entries as u64,
            register_bits: 0,
            table_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationKind;

    fn acc(set: usize) -> TlbAccess {
        TlbAccess { pc: 0, vpn: set as u64, kind: TranslationKind::Data, set }
    }

    #[test]
    fn evicts_least_recent() {
        let geom = TlbGeometry { entries: 4, ways: 4 };
        let mut lru = Lru::new(geom);
        for way in 0..4 {
            lru.on_fill(&acc(0), way);
        }
        lru.on_hit(&acc(0), 0); // protect way 0
        assert_eq!(lru.choose_victim(&acc(0)), 1);
    }

    #[test]
    fn storage_is_three_bits_per_entry_for_eight_ways() {
        let lru = Lru::new(TlbGeometry::default());
        assert_eq!(lru.storage().metadata_bits, 3 * 1024);
    }
}
