//! SHiP (signature-based hit prediction) adapted to the L2 TLB.
//!
//! SHiP \[Wu et al., MICRO 2011\] associates each entry with the PC
//! signature of the access that inserted it and learns, per signature,
//! whether insertions are re-referenced. The original uses set sampling;
//! the paper finds sampling does not generalise in the L2 TLB (§II-B) and
//! evaluates SHiP with the signature kept as metadata in *every* TLB entry
//! — equivalent to a sampler as large as the structure. That is what this
//! implementation does.
//!
//! The Signature History Counter Table (SHCT) is updated on every hit
//! (increment) and on every eviction of a never-reused entry (decrement);
//! insertion consults it to choose the RRIP insertion value. This
//! every-access table traffic is exactly what Figure 11 of the paper
//! measures against CHiRP's selective updates.

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};
use serde::{Deserialize, Serialize};

const RRPV_MAX: u8 = 3;
const RRPV_LONG: u8 = 2;

/// SHiP-TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShipConfig {
    /// log2 of SHCT entries (14 → 16K counters, as in the original paper).
    pub shct_bits: u32,
    /// Counter width in bits (3 in the original).
    pub counter_bits: u32,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig { shct_bits: 14, counter_bits: 3 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct EntryMeta {
    signature: u16,
    reused: bool,
    rrpv: u8,
}

/// SHiP with per-entry PC signatures (the paper's TLB adaptation).
#[derive(Debug, Clone)]
pub struct ShipTlb {
    meta: Vec<EntryMeta>,
    shct: Vec<u8>,
    counter_max: u8,
    config: ShipConfig,
    geometry: TlbGeometry,
    table_accesses: u64,
}

impl ShipTlb {
    /// Creates SHiP state for `geometry`.
    pub fn new(geometry: TlbGeometry, config: ShipConfig) -> Self {
        assert!(config.shct_bits > 0 && config.shct_bits <= 24, "shct_bits out of range");
        assert!(config.counter_bits > 0 && config.counter_bits <= 8, "counter_bits out of range");
        ShipTlb {
            meta: vec![EntryMeta { signature: 0, reused: false, rrpv: RRPV_MAX }; geometry.entries],
            shct: vec![1; 1 << config.shct_bits],
            counter_max: ((1u16 << config.counter_bits) - 1) as u8,
            config,
            geometry,
            table_accesses: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    /// 14-bit (by default) hashed PC signature.
    #[inline]
    fn signature(&self, pc: u64) -> u16 {
        let h = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 16) & ((1 << self.config.shct_bits) - 1)) as u16
    }
}

impl TlbReplacementPolicy for ShipTlb {
    fn name(&self) -> &str {
        "ship"
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        loop {
            for way in 0..self.geometry.ways {
                let i = self.idx(acc.set, way);
                if self.meta[i].rrpv == RRPV_MAX {
                    return way;
                }
            }
            for way in 0..self.geometry.ways {
                let i = self.idx(acc.set, way);
                self.meta[i].rrpv += 1;
            }
        }
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        let new_sig = self.signature(acc.pc);
        let m = &mut self.meta[i];
        m.rrpv = 0;
        m.reused = true;
        let sig = m.signature;
        // SHiP re-signs the entry with the most recent accessor so training
        // reflects the latest use context.
        m.signature = new_sig;
        // Train: this signature's insertions do get reused.
        let c = &mut self.shct[sig as usize];
        if *c < self.counter_max {
            *c += 1;
        }
        self.table_accesses += 1;
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        let m = self.meta[i];
        if !m.reused {
            let c = &mut self.shct[m.signature as usize];
            *c = c.saturating_sub(1);
            self.table_accesses += 1;
        }
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        let sig = self.signature(acc.pc);
        let counter = self.shct[sig as usize];
        self.table_accesses += 1; // prediction read
        let m = &mut self.meta[i];
        m.signature = sig;
        m.reused = false;
        // Insertion maps SHCT confidence to an RRPV: never-reused
        // signatures insert distant, saturated-high signatures insert
        // near-immediate, the rest long. Because coarse TLB granularity
        // saturates the counters high (paper Observation 2), most inserts
        // land at RRPV 0 and SHiP degenerates towards LRU — the behaviour
        // the paper measures (0.88% over LRU, §VI-A).
        m.rrpv = if counter == 0 {
            RRPV_MAX
        } else if counter == self.counter_max {
            0
        } else {
            RRPV_LONG
        };
    }

    fn prediction_table_accesses(&self) -> u64 {
        self.table_accesses
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        // A distant re-reference prediction is RRIP's notion of "dead".
        Some(self.meta[self.idx(set, way)].rrpv == RRPV_MAX)
    }

    /// Keeps no branch history and consumes no signatures: replay can
    /// drop every control event.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::none()
    }

    fn storage(&self) -> PolicyStorage {
        let per_entry = u64::from(self.config.shct_bits) + 1 + 2; // sig + reused + rrpv
        PolicyStorage {
            metadata_bits: per_entry * self.geometry.entries as u64,
            register_bits: 0,
            table_bits: u64::from(self.config.counter_bits) * (1u64 << self.config.shct_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationKind;

    fn acc(pc: u64, set: usize) -> TlbAccess {
        TlbAccess { pc, vpn: 0, kind: TranslationKind::Data, set }
    }

    fn tiny() -> ShipTlb {
        ShipTlb::new(TlbGeometry { entries: 8, ways: 4 }, ShipConfig::default())
    }

    #[test]
    fn never_reused_signature_becomes_dead_on_insert() {
        let mut p = tiny();
        let streaming_pc = 0x400100;
        // Insert + evict without reuse repeatedly: counter decays to 0.
        for _ in 0..4 {
            p.on_fill(&acc(streaming_pc, 0), 0);
            p.on_evict(0, 0);
        }
        p.on_fill(&acc(streaming_pc, 0), 0);
        assert_eq!(
            p.meta[0].rrpv, RRPV_MAX,
            "a signature that never sees reuse must insert at distant RRPV"
        );
    }

    #[test]
    fn reused_signature_inserts_long_not_distant() {
        let mut p = tiny();
        let hot_pc = 0x400200;
        p.on_fill(&acc(hot_pc, 0), 0);
        p.on_hit(&acc(hot_pc, 0), 0);
        p.on_fill(&acc(hot_pc, 0), 1);
        assert_eq!(p.meta[1].rrpv, RRPV_LONG);
    }

    #[test]
    fn table_accessed_on_every_hit_and_fill() {
        let mut p = tiny();
        p.on_fill(&acc(1 << 2, 0), 0);
        p.on_hit(&acc(1 << 2, 0), 0);
        p.on_hit(&acc(1 << 2, 0), 0);
        assert_eq!(p.prediction_table_accesses(), 3, "1 fill read + 2 hit updates");
    }

    #[test]
    fn intra_burst_hits_saturate_counter() {
        // The paper's Observation 2: many hits from one residency saturate
        // the signature counter, masking the eventual death.
        let mut p = tiny();
        let pc = 0x400300;
        p.on_fill(&acc(pc, 0), 0);
        for _ in 0..16 {
            p.on_hit(&acc(pc, 0), 0);
        }
        let sig = p.signature(pc) as usize;
        assert_eq!(p.shct[sig], p.counter_max, "counter saturates high from burst hits");
        // Even after several dead evictions, the counter stays positive.
        for _ in 0..3 {
            p.on_fill(&acc(pc, 0), 1);
            p.on_evict(0, 1);
        }
        assert!(p.shct[sig] > 0, "the dead pattern is masked — SHiP's TLB failure mode");
    }

    #[test]
    fn storage_accounts_tables_and_metadata() {
        let p = ShipTlb::new(TlbGeometry::default(), ShipConfig::default());
        let s = p.storage();
        assert_eq!(s.table_bits, 3 << 14);
        assert_eq!(s.metadata_bits, (14 + 1 + 2) * 1024);
    }
}
