//! DRRIP: dynamic re-reference interval prediction (extension baseline).
//!
//! Not evaluated in the CHiRP paper, but the canonical thrash-resistant
//! member of the RRIP family \[Jaleel et al., ISCA 2010\]: set-dueling
//! picks between SRRIP insertion (long re-reference) and BRRIP insertion
//! (distant re-reference with occasional long), letting the policy adapt
//! to cyclic working sets that defeat plain SRRIP. Included so users can
//! compare CHiRP against the strongest non-predictive RRIP variant.

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};

const RRPV_MAX: u8 = 3;
const RRPV_LONG: u8 = 2;
/// BRRIP inserts at RRPV_LONG once every `BRRIP_EPSILON` fills.
const BRRIP_EPSILON: u32 = 32;
/// PSEL saturation.
const PSEL_MAX: i32 = 1023;

/// Which insertion policy a set duels for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderSrrip,
    LeaderBrrip,
    Follower,
}

/// Dynamic RRIP with set dueling.
#[derive(Debug, Clone)]
pub struct Drrip {
    rrpv: Vec<u8>,
    roles: Vec<SetRole>,
    psel: i32,
    brrip_counter: u32,
    geometry: TlbGeometry,
}

impl Drrip {
    /// Creates DRRIP state for `geometry`; every 8th set leads SRRIP and
    /// every 8th (offset by 4) leads BRRIP.
    pub fn new(geometry: TlbGeometry) -> Self {
        let sets = geometry.sets();
        let roles = (0..sets)
            .map(|s| match s % 8 {
                0 => SetRole::LeaderSrrip,
                4 => SetRole::LeaderBrrip,
                _ => SetRole::Follower,
            })
            .collect();
        Drrip {
            rrpv: vec![RRPV_MAX; geometry.entries],
            roles,
            psel: PSEL_MAX / 2,
            brrip_counter: 0,
            geometry,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    fn use_brrip(&self, set: usize) -> bool {
        match self.roles[set] {
            SetRole::LeaderSrrip => false,
            SetRole::LeaderBrrip => true,
            // PSEL above midpoint means SRRIP leaders miss more.
            SetRole::Follower => self.psel > PSEL_MAX / 2,
        }
    }
}

impl TlbReplacementPolicy for Drrip {
    fn name(&self) -> &str {
        "drrip"
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        // Leader sets vote through their misses.
        match self.roles[acc.set] {
            SetRole::LeaderSrrip => self.psel = (self.psel + 1).min(PSEL_MAX),
            SetRole::LeaderBrrip => self.psel = (self.psel - 1).max(0),
            SetRole::Follower => {}
        }
        loop {
            for way in 0..self.geometry.ways {
                if self.rrpv[self.idx(acc.set, way)] == RRPV_MAX {
                    return way;
                }
            }
            for way in 0..self.geometry.ways {
                let i = self.idx(acc.set, way);
                self.rrpv[i] += 1;
            }
        }
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.rrpv[i] = 0;
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.rrpv[i] = if self.use_brrip(acc.set) {
            self.brrip_counter = (self.brrip_counter + 1) % BRRIP_EPSILON;
            if self.brrip_counter == 0 {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        };
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        // A distant re-reference prediction is RRIP's notion of "dead".
        Some(self.rrpv[self.idx(set, way)] == RRPV_MAX)
    }

    /// Keeps no branch history and consumes no signatures: replay can
    /// drop every control event.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::none()
    }

    fn storage(&self) -> PolicyStorage {
        PolicyStorage {
            metadata_bits: 2 * self.geometry.entries as u64,
            register_bits: 10 + 5, // PSEL + BRRIP epsilon counter
            table_bits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::L2Tlb;
    use crate::types::TranslationKind;

    #[test]
    fn brrip_leaders_win_under_cyclic_thrash() {
        // Cyclic pattern over more pages than capacity: BRRIP retains a
        // subset, SRRIP does not, so DRRIP must beat plain SRRIP.
        let geom = TlbGeometry { entries: 64, ways: 8 }; // 8 sets
        let run = |policy: Box<dyn TlbReplacementPolicy>| {
            let mut tlb = L2Tlb::new(geom, policy);
            for _ in 0..200 {
                for v in 0..96u64 {
                    tlb.access(0x400000, v, TranslationKind::Data);
                }
            }
            tlb.stats().misses
        };
        let srrip = run(Box::new(crate::policies::Srrip::new(geom)));
        let drrip = run(Box::new(Drrip::new(geom)));
        assert!(
            drrip < srrip * 95 / 100,
            "DRRIP ({drrip}) must beat SRRIP ({srrip}) on cyclic thrash"
        );
    }

    #[test]
    fn hit_promotion_matches_rrip_family() {
        let geom = TlbGeometry { entries: 8, ways: 8 };
        let mut p = Drrip::new(geom);
        let acc = TlbAccess { pc: 0, vpn: 0, kind: TranslationKind::Data, set: 0 };
        p.on_fill(&acc, 3);
        p.on_hit(&acc, 3);
        assert_eq!(p.rrpv[3], 0);
    }

    #[test]
    fn psel_moves_with_leader_misses() {
        let geom = TlbGeometry { entries: 64, ways: 8 };
        let mut p = Drrip::new(geom);
        let start = p.psel;
        // Misses in the SRRIP leader (set 0) push PSEL up.
        for _ in 0..10 {
            for way in 0..8 {
                p.on_fill(&TlbAccess { pc: 0, vpn: 0, kind: TranslationKind::Data, set: 0 }, way);
            }
            p.choose_victim(&TlbAccess { pc: 0, vpn: 0, kind: TranslationKind::Data, set: 0 });
        }
        assert!(p.psel > start);
    }

    #[test]
    fn storage_is_two_bits_per_entry_plus_registers() {
        let p = Drrip::new(TlbGeometry::default());
        assert_eq!(p.storage().metadata_bits, 2 * 1024);
        assert!(p.storage().register_bits < 32);
    }
}
