//! Random replacement.

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random victim selection (seeded, so runs stay reproducible).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SmallRng,
    ways: usize,
}

impl RandomPolicy {
    /// Creates the policy for `geometry` with a deterministic `seed`.
    pub fn new(geometry: TlbGeometry, seed: u64) -> Self {
        RandomPolicy { rng: SmallRng::seed_from_u64(seed), ways: geometry.ways }
    }
}

impl TlbReplacementPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn choose_victim(&mut self, _acc: &TlbAccess) -> usize {
        self.rng.gen_range(0..self.ways)
    }

    fn on_hit(&mut self, _acc: &TlbAccess, _way: usize) {}

    fn on_fill(&mut self, _acc: &TlbAccess, _way: usize) {}

    /// Keeps no branch history and consumes no signatures: replay can
    /// drop every control event.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::none()
    }

    fn storage(&self) -> PolicyStorage {
        PolicyStorage::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationKind;

    #[test]
    fn victims_in_range_and_varied() {
        let mut p = RandomPolicy::new(TlbGeometry::default(), 1);
        let acc = TlbAccess { pc: 0, vpn: 0, kind: TranslationKind::Data, set: 0 };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let v = p.choose_victim(&acc);
            assert!(v < 8);
            seen.insert(v);
        }
        assert!(seen.len() > 4, "victims should spread over the ways");
    }

    #[test]
    fn deterministic_per_seed() {
        let acc = TlbAccess { pc: 0, vpn: 0, kind: TranslationKind::Data, set: 0 };
        let mut a = RandomPolicy::new(TlbGeometry::default(), 7);
        let mut b = RandomPolicy::new(TlbGeometry::default(), 7);
        for _ in 0..32 {
            assert_eq!(a.choose_victim(&acc), b.choose_victim(&acc));
        }
    }

    #[test]
    fn no_storage_cost() {
        let p = RandomPolicy::new(TlbGeometry::default(), 0);
        assert_eq!(p.storage().total_bits(), 0);
    }
}
