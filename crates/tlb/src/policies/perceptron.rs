//! Perceptron-based reuse prediction adapted to the L2 TLB (extension).
//!
//! The CHiRP paper draws its offline methodology from perceptron-based
//! reuse prediction for the LLC \[Teran, Wang & Jiménez, MICRO 2016;
//! cited in §II-D/§VII\]. This extension brings the *online* version to
//! the TLB for comparison: several feature tables of small signed weights
//! — indexed by the accessing PC and by segments of a path history — are
//! summed; a large positive sum predicts the entry dead. Training nudges
//! the weights on the same low-traffic events CHiRP uses (first qualifying
//! hit → towards live; LRU-fallback eviction → towards dead), with a
//! margin θ to stop updating confident predictions.
//!
//! Not part of the paper's lineup; exposed through
//! `chirp_sim::PolicyKind::PerceptronReuse` for extension studies.

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};
use chirp_mem::PackedLru;
use chirp_trace::BranchClass;
use serde::{Deserialize, Serialize};

/// Perceptron reuse predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerceptronConfig {
    /// log2 entries per feature table.
    pub table_bits: u32,
    /// Training margin θ: train whenever |sum| ≤ θ or the prediction was
    /// wrong.
    pub theta: i32,
    /// Sums strictly greater than this predict dead.
    pub dead_threshold: i32,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig { table_bits: 10, theta: 14, dead_threshold: 4 }
    }
}

const FEATURES: usize = 4;
const WEIGHT_MAX: i8 = 31;
const WEIGHT_MIN: i8 = -32;

#[derive(Debug, Clone, Copy, Default)]
struct EntryMeta {
    /// Feature indices captured at the entry's last training-relevant
    /// access, so training updates the exact weights that produced the
    /// prediction.
    feature_idx: [u16; FEATURES],
    dead: bool,
    first_hit_pending: bool,
}

/// Multi-feature perceptron reuse predictor for the L2 TLB.
#[derive(Debug, Clone)]
pub struct PerceptronReuse {
    tables: Vec<Vec<i8>>,
    meta: Vec<EntryMeta>,
    lru: PackedLru,
    /// Path history of L2-access PCs (2 bits per access, like CHiRP).
    path: u64,
    /// Conditional-branch PC history.
    cond: u64,
    config: PerceptronConfig,
    geometry: TlbGeometry,
    table_accesses: u64,
    dead_evictions: u64,
}

impl PerceptronReuse {
    /// Creates the predictor for `geometry`.
    pub fn new(geometry: TlbGeometry, config: PerceptronConfig) -> Self {
        assert!((4..=16).contains(&config.table_bits), "table_bits out of range");
        PerceptronReuse {
            tables: vec![vec![0i8; 1 << config.table_bits]; FEATURES],
            meta: vec![EntryMeta::default(); geometry.entries],
            lru: PackedLru::new(geometry.sets(), geometry.ways),
            path: 0,
            cond: 0,
            config,
            geometry,
            table_accesses: 0,
            dead_evictions: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    /// Feature vector: PC hash, PC⊕short-path, PC⊕long-path, PC⊕cond-hist.
    fn features(&self, pc: u64) -> [u16; FEATURES] {
        let mask = (1u64 << self.config.table_bits) - 1;
        let h = |x: u64| -> u16 {
            let m = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((m >> 40) & mask) as u16
        };
        [
            h(pc >> 2),
            h((pc >> 2) ^ (self.path & 0xffff)),
            h((pc >> 2) ^ self.path),
            h((pc >> 2) ^ self.cond),
        ]
    }

    fn sum(&mut self, idx: &[u16; FEATURES]) -> i32 {
        self.table_accesses += 1;
        idx.iter().zip(&self.tables).map(|(&i, table)| i32::from(table[i as usize])).sum()
    }

    /// Trains towards dead (`true`) or live (`false`).
    fn train(&mut self, idx: &[u16; FEATURES], dead: bool) {
        let sum = self.sum(idx);
        let predicted_dead = sum > self.config.dead_threshold;
        if predicted_dead != dead || (sum - self.config.dead_threshold).abs() <= self.config.theta {
            self.table_accesses += 1;
            for (&i, table) in idx.iter().zip(&mut self.tables) {
                let w = &mut table[i as usize];
                *w = if dead {
                    w.saturating_add(1).min(WEIGHT_MAX)
                } else {
                    w.saturating_sub(1).max(WEIGHT_MIN)
                };
            }
        }
    }
}

impl TlbReplacementPolicy for PerceptronReuse {
    fn name(&self) -> &str {
        "perceptron"
    }

    #[inline]
    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        for way in 0..self.geometry.ways {
            if self.meta[self.idx(acc.set, way)].dead {
                self.dead_evictions += 1;
                return way;
            }
        }
        self.lru.lru(acc.set)
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let m = self.meta[self.idx(set, way)];
        if !m.dead {
            // LRU fallback: the predictor missed a dead entry.
            self.train(&m.feature_idx, true);
        }
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        if self.meta[i].first_hit_pending {
            let old = self.meta[i].feature_idx;
            self.train(&old, false);
            self.meta[i].first_hit_pending = false;
        }
        let idx = self.features(acc.pc);
        let dead = self.sum(&idx) > self.config.dead_threshold;
        let m = &mut self.meta[i];
        m.feature_idx = idx;
        m.dead = dead;
        self.lru.touch(acc.set, way);
        self.path = (self.path << 4) | ((acc.pc >> 2) & 0x3);
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let idx = self.features(acc.pc);
        let dead = self.sum(&idx) > self.config.dead_threshold;
        let i = self.idx(acc.set, way);
        self.meta[i] = EntryMeta { feature_idx: idx, dead, first_hit_pending: true };
        self.lru.touch(acc.set, way);
        self.path = (self.path << 4) | ((acc.pc >> 2) & 0x3);
    }

    fn on_branch(&mut self, pc: u64, class: BranchClass, _taken: bool) {
        if class == BranchClass::Conditional {
            self.cond = (self.cond << 8) | ((pc >> 4) & 0xff);
        }
    }

    fn prediction_table_accesses(&self) -> u64 {
        self.table_accesses
    }

    fn dead_eviction_count(&self) -> u64 {
        self.dead_evictions
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        Some(self.meta[self.idx(set, way)].dead)
    }

    /// Needs every retired branch for its history register, but models
    /// no wrong-path pollution and consumes no precomputed signatures.
    fn replay_hints(&self, _sig_code: u64) -> crate::policy::ReplayHints {
        crate::policy::ReplayHints::branches_only()
    }

    fn storage(&self) -> PolicyStorage {
        let lru_bits = (self.geometry.ways as f64).log2().ceil() as u64;
        PolicyStorage {
            // Per entry: 4 feature indices + dead + pending + LRU bits.
            metadata_bits: (FEATURES as u64 * u64::from(self.config.table_bits) + 2 + lru_bits)
                * self.geometry.entries as u64,
            register_bits: 128,
            table_bits: FEATURES as u64 * 6 * (1u64 << self.config.table_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationKind;

    fn acc(pc: u64, set: usize) -> TlbAccess {
        TlbAccess { pc, vpn: 0, kind: TranslationKind::Data, set }
    }

    fn tiny() -> PerceptronReuse {
        PerceptronReuse::new(TlbGeometry { entries: 8, ways: 4 }, PerceptronConfig::default())
    }

    #[test]
    fn learns_dead_contexts() {
        let mut p = tiny();
        let pc = 0x400100;
        for _ in 0..40 {
            p.on_fill(&acc(pc, 0), 0);
            p.on_evict(0, 0);
        }
        p.on_fill(&acc(pc, 0), 0);
        assert!(p.meta[0].dead, "constantly evicted context must predict dead");
    }

    #[test]
    fn learns_live_contexts() {
        let mut p = tiny();
        let pc = 0x400200;
        for _ in 0..40 {
            p.on_fill(&acc(pc, 0), 0);
            p.on_fill(&acc(0x999000, 1), 0); // different set in between
            p.on_hit(&acc(pc, 0), 0);
        }
        p.on_fill(&acc(pc, 0), 0);
        assert!(!p.meta[0].dead, "reused context must predict live");
    }

    #[test]
    fn weights_stay_bounded() {
        let mut p = tiny();
        for i in 0..500u64 {
            p.on_fill(&acc(0x400000 + i * 4, 0), (i % 4) as usize);
            p.on_evict(0, (i % 4) as usize);
        }
        for table in &p.tables {
            assert!(table.iter().all(|&w| (WEIGHT_MIN..=WEIGHT_MAX).contains(&w)));
        }
    }

    #[test]
    fn victim_prefers_dead_entries() {
        let mut p = tiny();
        for way in 0..4 {
            p.on_fill(&acc(0x500000 + way as u64 * 4, 0), way);
        }
        let i = p.idx(0, 3);
        p.meta[i].dead = true;
        assert_eq!(p.choose_victim(&acc(0, 0)), 3);
        assert_eq!(p.dead_eviction_count(), 1);
    }

    #[test]
    fn margin_stops_training_confident_predictions() {
        let mut p = tiny();
        let idx = p.features(0x400300);
        // Saturate towards dead well past the margin.
        for _ in 0..100 {
            p.train(&idx, true);
        }
        let before: Vec<i8> = (0..FEATURES).map(|f| p.tables[f][idx[f] as usize]).collect();
        p.train(&idx, true);
        let after: Vec<i8> = (0..FEATURES).map(|f| p.tables[f][idx[f] as usize]).collect();
        assert_eq!(before, after, "confident correct predictions must not train");
    }
}
