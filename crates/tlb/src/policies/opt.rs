//! Bélády's optimal replacement (offline oracle).
//!
//! The paper cites Bélády's algorithm as the unreachable ideal for pure
//! replacement (§V). Because the L1 TLBs use a fixed LRU policy, the L2
//! access stream is identical across L2 policies, so an oracle recorded in
//! a first pass can drive an optimal second pass: on a miss, evict the
//! resident entry whose next use lies farthest in the future (or never
//! recurs).

use crate::policy::{PolicyStorage, TlbReplacementPolicy};
use crate::types::{TlbAccess, TlbGeometry};
use std::collections::{HashMap, VecDeque};

/// Future-knowledge oracle: for every VPN, the ordered list of access
/// positions in the L2 access stream.
#[derive(Debug, Clone, Default)]
pub struct OptOracle {
    positions: HashMap<u64, VecDeque<u64>>,
}

impl OptOracle {
    /// Builds the oracle from the L2 access stream (sequence of VPNs in
    /// access order).
    pub fn from_vpns<I: IntoIterator<Item = u64>>(vpns: I) -> Self {
        let mut positions: HashMap<u64, VecDeque<u64>> = HashMap::new();
        for (t, vpn) in vpns.into_iter().enumerate() {
            positions.entry(vpn).or_default().push_back(t as u64);
        }
        OptOracle { positions }
    }

    /// Number of distinct VPNs recorded.
    pub fn distinct_vpns(&self) -> usize {
        self.positions.len()
    }
}

/// Bélády-optimal replacement driven by an [`OptOracle`].
///
/// The driving access stream must match the oracle's exactly; the policy
/// panics (in debug builds) if it observes an access the oracle did not
/// record at that position.
#[derive(Debug, Clone)]
pub struct OptPolicy {
    oracle: OptOracle,
    /// VPN resident in each (set, way).
    resident: Vec<u64>,
    valid: Vec<bool>,
    time: u64,
    geometry: TlbGeometry,
}

impl OptPolicy {
    /// Creates the policy for `geometry` with future knowledge `oracle`.
    pub fn new(geometry: TlbGeometry, oracle: OptOracle) -> Self {
        OptPolicy {
            oracle,
            resident: vec![0; geometry.entries],
            valid: vec![false; geometry.entries],
            time: 0,
            geometry,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    /// Consumes the oracle position for the current access and advances
    /// time.
    fn advance(&mut self, vpn: u64) {
        if let Some(q) = self.oracle.positions.get_mut(&vpn) {
            // Drop the position of the access being processed.
            while let Some(&front) = q.front() {
                if front <= self.time {
                    q.pop_front();
                } else {
                    break;
                }
            }
        }
        self.time += 1;
    }

    /// Next use position of `vpn` strictly after the current access, or
    /// `u64::MAX` if it never recurs.
    fn next_use(&self, vpn: u64) -> u64 {
        self.oracle
            .positions
            .get(&vpn)
            .and_then(|q| q.iter().find(|&&t| t > self.time).copied())
            .unwrap_or(u64::MAX)
    }
}

impl TlbReplacementPolicy for OptPolicy {
    fn name(&self) -> &str {
        "opt"
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        let mut best_way = 0;
        let mut best_next = 0;
        for way in 0..self.geometry.ways {
            let i = self.idx(acc.set, way);
            debug_assert!(self.valid[i], "choose_victim requires a full set");
            let next = self.next_use(self.resident[i]);
            if next == u64::MAX {
                return way; // never used again: perfect victim
            }
            if next > best_next {
                best_next = next;
                best_way = way;
            }
        }
        best_way
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        debug_assert_eq!(self.resident[self.idx(acc.set, way)], acc.vpn);
        self.advance(acc.vpn);
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.resident[i] = acc.vpn;
        self.valid[i] = true;
        self.advance(acc.vpn);
    }

    fn storage(&self) -> PolicyStorage {
        // Offline oracle: not implementable in hardware; storage is
        // reported as zero to keep comparison tables meaningful.
        PolicyStorage::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::L2Tlb;
    use crate::types::TranslationKind;

    /// Runs a VPN stream through an L2 TLB under a given policy, returning
    /// the miss count.
    fn misses_with(policy: Box<dyn TlbReplacementPolicy>, geom: TlbGeometry, seq: &[u64]) -> u64 {
        let mut tlb = L2Tlb::new(geom, policy);
        for &vpn in seq {
            tlb.access(0, vpn, TranslationKind::Data);
        }
        tlb.stats().misses
    }

    #[test]
    fn opt_beats_lru_on_cyclic_pattern() {
        // Single set (1-way-indexed): 4 ways, cyclic over 5 pages — the
        // LRU-pathological case. Use vpns ≡ 0 mod sets so all collide.
        let geom = TlbGeometry { entries: 4, ways: 4 };
        let mut seq = Vec::new();
        for _ in 0..20 {
            for v in 0..5u64 {
                seq.push(v * geom.sets() as u64);
            }
        }
        let lru_misses = misses_with(Box::new(super::super::Lru::new(geom)), geom, &seq);
        let oracle = OptOracle::from_vpns(seq.iter().copied());
        let opt_misses = misses_with(Box::new(OptPolicy::new(geom, oracle)), geom, &seq);
        assert!(opt_misses < lru_misses, "OPT {opt_misses} must beat LRU {lru_misses}");
        // LRU thrashes completely: every access misses.
        assert_eq!(lru_misses, seq.len() as u64);
        // OPT keeps 3 of 5 pages resident: ~2 misses per 5-access cycle.
        assert!(opt_misses <= 2 * 20 + 5);
    }

    #[test]
    fn opt_never_worse_than_lru_on_random_streams() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let geom = TlbGeometry { entries: 8, ways: 4 };
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let seq: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..32u64)).collect();
            let lru = misses_with(Box::new(super::super::Lru::new(geom)), geom, &seq);
            let oracle = OptOracle::from_vpns(seq.iter().copied());
            let opt = misses_with(Box::new(OptPolicy::new(geom, oracle)), geom, &seq);
            assert!(opt <= lru, "seed {seed}: OPT {opt} worse than LRU {lru}");
        }
    }

    #[test]
    fn oracle_counts_distinct_vpns() {
        let oracle = OptOracle::from_vpns([1, 2, 1, 3]);
        assert_eq!(oracle.distinct_vpns(), 3);
    }
}
