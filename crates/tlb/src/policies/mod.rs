//! Baseline replacement policies the paper compares CHiRP against.
//!
//! * [`Lru`] — true LRU, the policy recent TLB literature assumes (§II).
//! * [`RandomPolicy`] — random victim; the paper notes it slightly
//!   outperforms LRU on average (§VI-A).
//! * [`Srrip`] — static re-reference interval prediction \[Jaleel et al.,
//!   ISCA 2010\] adapted to TLB entries (§II-A).
//! * [`ShipTlb`] — signature-based hit prediction \[Wu et al., MICRO 2011\]
//!   adapted per the paper's §II-B: PC bits are kept as per-entry metadata
//!   (sampler as large as the structure) because set sampling does not
//!   generalise in the L2 TLB.
//! * [`Ghrp`] — global-history reuse prediction \[Mirbagher et al., ISCA
//!   2018\] adapted from BTB/i-cache replacement to the TLB (§II-C).
//! * [`OptPolicy`] — Bélády's offline optimum, used as an upper bound in
//!   extension experiments (the paper cites Bélády as the unreachable ideal
//!   in §V).

mod drrip;
mod ghrp;
mod lru;
mod opt;
mod perceptron;
mod random;
mod ship;
mod srrip;

pub use drrip::Drrip;
pub use ghrp::{Ghrp, GhrpConfig};
pub use lru::Lru;
pub use opt::{OptOracle, OptPolicy};
pub use perceptron::{PerceptronConfig, PerceptronReuse};
pub use random::RandomPolicy;
pub use ship::{ShipConfig, ShipTlb};
pub use srrip::Srrip;
