//! TLB-efficiency accounting (paper Figure 1).
//!
//! Following Burger et al.'s cache-efficiency metric, the efficiency of an
//! entry's residency is the fraction of its lifetime during which it was
//! *live* — between insertion and its last hit. A policy that keeps dead
//! entries around scores low. Time is measured in L2 TLB accesses.

/// Tracks per-entry liveness over a simulation.
#[derive(Debug, Clone)]
pub struct EfficiencyTracker {
    insert_time: Vec<u64>,
    last_hit_time: Vec<u64>,
    occupied: Vec<bool>,
    ways: usize,
    now: u64,
    live_time: u64,
    total_time: u64,
    completed: u64,
}

impl EfficiencyTracker {
    /// Creates a tracker for `sets * ways` entries.
    pub fn new(sets: usize, ways: usize) -> Self {
        let n = sets * ways;
        EfficiencyTracker {
            insert_time: vec![0; n],
            last_hit_time: vec![0; n],
            occupied: vec![false; n],
            ways,
            now: 0,
            live_time: 0,
            total_time: 0,
            completed: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Advances the access clock; call once per L2 TLB access.
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Records an insertion into (`set`, `way`), closing out the previous
    /// resident entry if any.
    pub fn on_insert(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        if self.occupied[i] {
            self.close(i);
        }
        self.occupied[i] = true;
        self.insert_time[i] = self.now;
        self.last_hit_time[i] = self.now;
    }

    /// Records a hit on (`set`, `way`).
    pub fn on_hit(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.last_hit_time[i] = self.now;
    }

    fn close(&mut self, i: usize) {
        let total = self.now.saturating_sub(self.insert_time[i]);
        let live = self.last_hit_time[i].saturating_sub(self.insert_time[i]);
        self.total_time += total;
        self.live_time += live;
        self.completed += 1;
        self.occupied[i] = false;
    }

    /// Efficiency over all completed residencies plus currently-resident
    /// entries (closed out against the current clock).
    pub fn efficiency(&self) -> f64 {
        let mut live = self.live_time;
        let mut total = self.total_time;
        for i in 0..self.occupied.len() {
            if self.occupied[i] {
                total += self.now.saturating_sub(self.insert_time[i]);
                live += self.last_hit_time[i].saturating_sub(self.insert_time[i]);
            }
        }
        if total == 0 {
            0.0
        } else {
            live as f64 / total as f64
        }
    }

    /// Number of residencies that ended in an eviction so far.
    pub fn completed_residencies(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_live_entry_scores_one() {
        let mut t = EfficiencyTracker::new(1, 1);
        t.tick();
        t.on_insert(0, 0);
        for _ in 0..9 {
            t.tick();
            t.on_hit(0, 0);
        }
        assert!((t.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_entry_scores_zero() {
        let mut t = EfficiencyTracker::new(1, 1);
        t.on_insert(0, 0);
        for _ in 0..10 {
            t.tick(); // entry sits dead
        }
        assert_eq!(t.efficiency(), 0.0);
    }

    #[test]
    fn half_live_entry() {
        let mut t = EfficiencyTracker::new(1, 1);
        t.on_insert(0, 0);
        for _ in 0..5 {
            t.tick();
            t.on_hit(0, 0);
        }
        for _ in 0..5 {
            t.tick();
        }
        // live 5 of 10.
        assert!((t.efficiency() - 0.5).abs() < 1e-12);
        // Replacement closes the residency.
        t.on_insert(0, 0);
        assert_eq!(t.completed_residencies(), 1);
        assert!((t.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_entries_average_by_time() {
        let mut t = EfficiencyTracker::new(1, 2);
        t.on_insert(0, 0);
        t.on_insert(0, 1);
        for i in 0..10 {
            t.tick();
            if i < 5 {
                t.on_hit(0, 0); // way 0 live for the first half
            }
        }
        // way 0: 5/10 live; way 1: 0/10 → pooled 5/20.
        assert!((t.efficiency() - 0.25).abs() < 1e-12);
    }
}
