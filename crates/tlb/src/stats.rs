//! TLB access statistics.

use serde::{Deserialize, Serialize};

/// Hit/miss accounting for one TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses satisfied by evicting a predicted-dead entry rather than the
    /// LRU fallback (0 for non-predictive policies).
    pub dead_evictions: u64,
    /// Misses that filled an invalid way (no eviction at all).
    pub cold_fills: u64,
}

impl TlbStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Misses per 1000 instructions — the paper's primary metric.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Outcome counts for fill-time dead/live predictions, scored at
/// eviction (telemetry; see `L2Tlb::enable_outcome_tracking`).
///
/// When an entry whose policy issued a prediction at fill time is
/// evicted, the prediction is scored against what actually happened:
/// "dead" was right iff the entry saw no hit between fill and eviction.
/// Entries of non-predictive policies (and entries still resident at the
/// end of a run) are not scored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadOutcomes {
    /// Predicted dead at fill; never hit before eviction. Correct.
    pub true_dead: u64,
    /// Predicted dead at fill; hit at least once before eviction. Wrong —
    /// the policy would have evicted a live entry.
    pub false_dead: u64,
    /// Predicted live at fill; hit at least once before eviction. Correct.
    pub true_live: u64,
    /// Predicted live at fill; never hit before eviction. Wrong — the
    /// entry occupied a way for nothing.
    pub false_live: u64,
}

impl DeadOutcomes {
    /// Total scored evictions.
    pub fn total(&self) -> u64 {
        self.true_dead + self.false_dead + self.true_live + self.false_live
    }

    /// Fraction of scored predictions that were correct, 0 when none.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_dead + self.true_live) as f64 / total as f64
        }
    }

    /// Field-wise sum.
    pub fn merged(&self, other: &DeadOutcomes) -> DeadOutcomes {
        DeadOutcomes {
            true_dead: self.true_dead + other.true_dead,
            false_dead: self.false_dead + other.false_dead,
            true_live: self.true_live + other.true_live,
            false_live: self.false_live + other.false_live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_outcome_accuracy() {
        let o = DeadOutcomes { true_dead: 6, false_dead: 1, true_live: 2, false_live: 1 };
        assert_eq!(o.total(), 10);
        assert!((o.accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(DeadOutcomes::default().accuracy(), 0.0);
        let sum = o.merged(&o);
        assert_eq!(sum.total(), 20);
        assert_eq!(sum.true_dead, 12);
    }

    #[test]
    fn mpki_and_ratio() {
        let s = TlbStats { hits: 900, misses: 100, dead_evictions: 10, cold_fills: 5 };
        assert_eq!(s.accesses(), 1000);
        assert!((s.mpki(100_000) - 1.0).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_instruction_guard() {
        assert_eq!(TlbStats::default().mpki(0), 0.0);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }
}
