//! TLB access statistics.

use serde::{Deserialize, Serialize};

/// Hit/miss accounting for one TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses satisfied by evicting a predicted-dead entry rather than the
    /// LRU fallback (0 for non-predictive policies).
    pub dead_evictions: u64,
    /// Misses that filled an invalid way (no eviction at all).
    pub cold_fills: u64,
}

impl TlbStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Misses per 1000 instructions — the paper's primary metric.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_and_ratio() {
        let s = TlbStats { hits: 900, misses: 100, dead_evictions: 10, cold_fills: 5 };
        assert_eq!(s.accesses(), 1000);
        assert!((s.mpki(100_000) - 1.0).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_instruction_guard() {
        assert_eq!(TlbStats::default().mpki(0), 0.0);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }
}
