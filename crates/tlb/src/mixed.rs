//! Mixed page-size TLB support — the paper's stated future work (§VIII).
//!
//! The paper defers replacement with mixed page sizes: "imagine, when one
//! entry covers 4KB and another covers 2MB, which one is more important to
//! keep?" This module provides an exploratory implementation kept separate
//! from the calibrated 4 KB-only main path:
//!
//! * [`PageSize`] and [`ThpMapper`], a deterministic transparent-huge-page
//!   model: each 2 MB-aligned heap region is backed by a huge page with a
//!   probability controlled by a fragmentation parameter (the paper notes
//!   fragmentation is what complicates huge-page studies);
//! * [`MixedTlb`], a set-associative TLB whose entries are tagged with
//!   `(vpn, size)` and share capacity across sizes, as the paper describes
//!   real L2 TLBs doing;
//! * three replacement flavours: plain LRU, reuse-prediction (a compact
//!   CHiRP-style dead bit driven by a signature the caller supplies), and
//!   *size-aware* reuse prediction that prefers evicting dead 4 KB entries
//!   before dead 2 MB entries, since a huge-page entry shields 512× the
//!   reach (the cost-aware replacement the paper points to via
//!   Bélády-with-costs).

use crate::types::TlbGeometry;
use chirp_mem::LruStack;
use serde::{Deserialize, Serialize};

/// Page sizes supported by the mixed TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// 4 KB base pages.
    Base4K,
    /// 2 MB huge pages.
    Huge2M,
}

impl PageSize {
    /// Number of address bits covered by the page offset.
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
        }
    }

    /// Bytes covered by one page.
    pub fn bytes(self) -> u64 {
        1 << self.shift()
    }
}

/// Maps virtual addresses to (vpn, size) pairs — the role the OS page
/// tables play.
pub trait PageMapper {
    /// The page (number and size) backing `va`.
    fn page_of(&self, va: u64) -> (u64, PageSize);
}

/// All-4K mapping (the paper's main configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct Base4KMapper;

impl PageMapper for Base4KMapper {
    fn page_of(&self, va: u64) -> (u64, PageSize) {
        (va >> 12, PageSize::Base4K)
    }
}

/// Transparent-huge-page model: each 2 MB-aligned region is backed by a
/// huge page unless fragmentation prevented its allocation. The decision
/// is a deterministic hash of the region number, so a given
/// `fragmentation_percent` yields a stable mapping.
#[derive(Debug, Clone, Copy)]
pub struct ThpMapper {
    /// Percentage (0–100) of 2 MB regions that could *not* be backed by a
    /// huge page (fragmentation).
    pub fragmentation_percent: u32,
}

impl PageMapper for ThpMapper {
    fn page_of(&self, va: u64) -> (u64, PageSize) {
        let region = va >> 21;
        let h = (region.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % 100;
        if (h as u32) < self.fragmentation_percent {
            (va >> 12, PageSize::Base4K)
        } else {
            (region, PageSize::Huge2M)
        }
    }
}

/// Replacement flavour for the mixed TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixedPolicy {
    /// True LRU, size-blind.
    Lru,
    /// Dead-prediction with LRU fallback, size-blind (CHiRP-style).
    ReusePrediction,
    /// Dead-prediction preferring dead 4 KB victims over dead 2 MB victims.
    SizeAwareReuse,
}

#[derive(Debug, Clone, Copy, Default)]
struct MixedEntry {
    vpn: u64,
    size_is_huge: bool,
    valid: bool,
    signature: u16,
    dead: bool,
    first_hit_pending: bool,
}

/// Statistics for the mixed TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedStats {
    /// Hits on 4 KB entries.
    pub hits_4k: u64,
    /// Hits on 2 MB entries.
    pub hits_2m: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Evictions of 2 MB entries (each sacrifices 512x the reach).
    pub huge_evictions: u64,
}

impl MixedStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits_4k + self.hits_2m + self.misses
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A set-associative TLB holding a mix of 4 KB and 2 MB entries.
///
/// Entries of both sizes share every set (the L2 TLB "is not partitioned
/// among page sizes", paper §V); the set index is derived from the VPN at
/// the entry's own granularity, and lookups probe both candidate sets.
#[derive(Debug, Clone)]
pub struct MixedTlb {
    geometry: TlbGeometry,
    entries: Vec<MixedEntry>,
    lru: Vec<LruStack>,
    policy: MixedPolicy,
    table: Vec<u8>,
    dead_threshold: u8,
    stats: MixedStats,
}

impl MixedTlb {
    /// Creates the TLB with the given replacement flavour and a 4096-entry
    /// 2-bit prediction table (the CHiRP main budget).
    pub fn new(geometry: TlbGeometry, policy: MixedPolicy) -> Self {
        let sets = geometry.sets();
        MixedTlb {
            geometry,
            entries: vec![MixedEntry::default(); sets * geometry.ways],
            lru: (0..sets).map(|_| LruStack::new(geometry.ways)).collect(),
            policy,
            table: vec![0; 4096],
            dead_threshold: 2,
            stats: MixedStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.geometry.sets() - 1)
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    #[inline]
    fn table_idx(sig: u16) -> usize {
        usize::from(sig) & 4095
    }

    /// Translates `va` through `mapper`, learning reuse with `signature`
    /// (a caller-provided control-flow signature, e.g. from
    /// `chirp_core::SignatureBuilder`). Returns `true` on hit.
    pub fn access<M: PageMapper>(&mut self, mapper: &M, va: u64, signature: u16) -> bool {
        let (vpn, size) = mapper.page_of(va);
        let huge = size == PageSize::Huge2M;
        let set = self.set_of(vpn);
        // Hit check in the set indexed at this entry's own granularity.
        for way in 0..self.geometry.ways {
            let i = self.idx(set, way);
            let e = self.entries[i];
            if e.valid && e.vpn == vpn && e.size_is_huge == huge {
                if huge {
                    self.stats.hits_2m += 1;
                } else {
                    self.stats.hits_4k += 1;
                }
                if self.policy != MixedPolicy::Lru && self.entries[i].first_hit_pending {
                    let old = Self::table_idx(self.entries[i].signature);
                    self.table[old] = self.table[old].saturating_sub(1);
                    self.entries[i].first_hit_pending = false;
                    self.entries[i].dead =
                        self.table[Self::table_idx(signature)] > self.dead_threshold;
                }
                self.entries[i].signature = signature;
                self.lru[set].touch(way);
                return true;
            }
        }
        // Miss: fill.
        self.stats.misses += 1;
        let way = self.choose_victim(set);
        let i = self.idx(set, way);
        if self.entries[i].valid {
            if self.entries[i].size_is_huge {
                self.stats.huge_evictions += 1;
            }
            if self.policy != MixedPolicy::Lru && !self.entries[i].dead {
                // LRU-fallback eviction trains the table up (CHiRP rule).
                let old = Self::table_idx(self.entries[i].signature);
                if self.table[old] < 3 {
                    self.table[old] += 1;
                }
            }
        }
        let dead = self.policy != MixedPolicy::Lru
            && self.table[Self::table_idx(signature)] > self.dead_threshold;
        self.entries[i] = MixedEntry {
            vpn,
            size_is_huge: huge,
            valid: true,
            signature,
            dead,
            first_hit_pending: true,
        };
        self.lru[set].touch(way);
        false
    }

    fn choose_victim(&mut self, set: usize) -> usize {
        // Invalid ways first.
        if let Some(way) = (0..self.geometry.ways).find(|&w| !self.entries[self.idx(set, w)].valid)
        {
            return way;
        }
        match self.policy {
            MixedPolicy::Lru => self.lru[set].lru(),
            MixedPolicy::ReusePrediction => (0..self.geometry.ways)
                .find(|&w| self.entries[self.idx(set, w)].dead)
                .unwrap_or_else(|| self.lru[set].lru()),
            MixedPolicy::SizeAwareReuse => {
                // Dead 4K first (cheap to lose), then dead 2M, then LRU.
                let dead_4k = (0..self.geometry.ways).find(|&w| {
                    let e = self.entries[self.idx(set, w)];
                    e.dead && !e.size_is_huge
                });
                dead_4k
                    .or_else(|| {
                        (0..self.geometry.ways).find(|&w| self.entries[self.idx(set, w)].dead)
                    })
                    .unwrap_or_else(|| self.lru[set].lru())
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MixedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_cover_expected_ranges() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 << 20);
    }

    #[test]
    fn thp_mapper_is_deterministic_and_respects_fragmentation() {
        let all_huge = ThpMapper { fragmentation_percent: 0 };
        let all_base = ThpMapper { fragmentation_percent: 100 };
        for va in [0u64, 0x20_0000, 0x1234_5678, 0xFFFF_F000] {
            assert_eq!(all_huge.page_of(va).1, PageSize::Huge2M);
            assert_eq!(all_base.page_of(va).1, PageSize::Base4K);
            assert_eq!(all_huge.page_of(va), all_huge.page_of(va));
        }
        // Mid fragmentation: both sizes appear over many regions.
        let mid = ThpMapper { fragmentation_percent: 50 };
        let mut huge = 0;
        let mut base = 0;
        for region in 0..1000u64 {
            match mid.page_of(region << 21).1 {
                PageSize::Huge2M => huge += 1,
                PageSize::Base4K => base += 1,
            }
        }
        assert!(huge > 300 && base > 300, "split {huge}/{base} too skewed");
    }

    #[test]
    fn huge_page_covers_512_base_pages() {
        let geom = TlbGeometry { entries: 16, ways: 4 };
        let mut tlb = MixedTlb::new(geom, MixedPolicy::Lru);
        let mapper = ThpMapper { fragmentation_percent: 0 };
        // First touch misses; every other 4K page within the same 2MB
        // region hits the same entry.
        assert!(!tlb.access(&mapper, 0x40_0000, 1));
        for p in 1..32u64 {
            assert!(tlb.access(&mapper, 0x40_0000 + p * 4096, 1), "page {p} must hit");
        }
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().hits_2m, 31);
    }

    #[test]
    fn base_pages_miss_individually_under_full_fragmentation() {
        let geom = TlbGeometry { entries: 16, ways: 4 };
        let mut tlb = MixedTlb::new(geom, MixedPolicy::Lru);
        let mapper = ThpMapper { fragmentation_percent: 100 };
        for p in 0..8u64 {
            assert!(!tlb.access(&mapper, 0x40_0000 + p * 4096, 1));
        }
        assert_eq!(tlb.stats().misses, 8);
    }

    #[test]
    fn size_aware_policy_protects_huge_entries() {
        let geom = TlbGeometry { entries: 4, ways: 4 };
        let mut tlb = MixedTlb::new(geom, MixedPolicy::SizeAwareReuse);
        // Install one huge entry and three base entries in set 0, then mark
        // everything dead and insert: the 4K entries must go first.
        let frag0 = ThpMapper { fragmentation_percent: 0 };
        let frag100 = ThpMapper { fragmentation_percent: 100 };
        // huge vpn: region 0 (set 0)
        tlb.access(&frag0, 0x10_0000, 1);
        // base vpns congruent to 0 mod 1 (1 set)... geometry has 1 set.
        tlb.access(&frag100, 4096 * 4, 2);
        tlb.access(&frag100, 4096 * 8, 3);
        tlb.access(&frag100, 4096 * 12, 4);
        for e in &mut tlb.entries {
            e.dead = true;
        }
        // Insert a new base page: a dead 4K way must be chosen, never the
        // huge entry.
        tlb.access(&frag100, 4096 * 16, 5);
        assert_eq!(tlb.stats().huge_evictions, 0, "huge entry must be protected");
        let still_huge = tlb.entries.iter().filter(|e| e.valid && e.size_is_huge).count();
        assert_eq!(still_huge, 1);
    }

    #[test]
    fn reuse_prediction_learns_dead_signatures_in_mixed_tlb() {
        let geom = TlbGeometry { entries: 8, ways: 4 };
        let mut tlb = MixedTlb::new(geom, MixedPolicy::ReusePrediction);
        let mapper = ThpMapper { fragmentation_percent: 100 };
        // Stream with signature 7 through one set until the counter
        // saturates via LRU-fallback evictions; then its inserts are dead.
        for p in 0..64u64 {
            tlb.access(&mapper, p * 2 * 4096, 7);
        }
        let dead_now = tlb.entries.iter().filter(|e| e.valid && e.dead).count();
        assert!(dead_now > 0, "streaming signature must become dead-predicted");
    }
}
