//! The tentpole equivalence gates for the fast execution paths.
//!
//! Three layers, all pinning bit-identical `RunResult`s (which embed the
//! measured `TlbStats`), L2 totals and CHiRP's internal counters:
//!
//! 1. **Lane matrix** (always on): the multi-lane software-pipelined
//!    engine ([`chirp_sim::run_columnar_lanes`]) must reproduce a
//!    sequential `run_columnar` of every unit, for every in-tree policy
//!    on suite benchmarks, across lane widths (including widths that do
//!    not divide the unit count) and warmup fractions that cut
//!    mid-chunk.
//! 2. **Factored matrix** (always on): the shared front-end +
//!    per-policy replay back-ends ([`chirp_sim::run_factored_group`],
//!    materialized and streamed) must reproduce the sequential
//!    `run_columnar` of every unit, across warmup cuts, chunk sizes,
//!    signature-config mismatches and wrong-path-pollution
//!    configurations — plus the policy-invariance gate: the front-end
//!    event stream is byte-identical no matter which policy (if any)
//!    consumes it.
//! 3. **Legacy shim** (behind the `legacy-dyn` feature): the retired
//!    dynamic-dispatch path (`Simulator::new` over
//!    `Box<dyn TlbReplacementPolicy>` + per-record `run`) must agree
//!    with the monomorphized columnar path — run via
//!    `cargo test --features legacy-dyn` (CI does) to prove the shim.

use chirp_core::{Chirp, ChirpConfig};
use chirp_sim::{run_columnar_lanes, LaneUnit, PolicyKind, RunResult, SimConfig, Simulator};
use chirp_tlb::{TlbReplacementPolicy, TlbStats};
use chirp_trace::suite::{build_suite, SuiteConfig};
use chirp_trace::PackedTrace;
use proptest::prelude::*;

const INSTRUCTIONS: usize = 30_000;
const BENCHMARKS: usize = 4;

/// The 9-policy lineup: the paper's six plus the three extension
/// baselines (DRRIP, perceptron reuse, short-history CHiRP).
fn lineup9() -> Vec<PolicyKind> {
    let mut policies = PolicyKind::paper_lineup();
    policies.push(PolicyKind::Drrip);
    policies.push(PolicyKind::PerceptronReuse);
    policies.push(PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }));
    policies
}

#[derive(PartialEq, Debug)]
struct PathOutcome {
    result: RunResult,
    stats_total: TlbStats,
    chirp: Option<chirp_core::policy::ChirpCounters>,
}

fn outcome_of(sim: Simulator<chirp_sim::PolicyDispatch>, result: RunResult) -> PathOutcome {
    let stats_total = sim.tlbs().l2().stats();
    let chirp = sim
        .tlbs()
        .l2()
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Chirp>())
        .map(|c| c.counters());
    PathOutcome { result, stats_total, chirp }
}

fn columnar_path(
    policy: &PolicyKind,
    config: &SimConfig,
    trace: &PackedTrace,
    seed: u64,
) -> PathOutcome {
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, seed));
    let result = sim.run_columnar(trace, config.warmup_fraction);
    outcome_of(sim, result)
}

/// Runs one unit per (trace, policy) pair through the lane engine at the
/// given width and returns each unit's outcome, in input order.
fn lane_path(
    pairs: &[(&PackedTrace, &PolicyKind, u64)],
    config: &SimConfig,
    lanes: usize,
) -> Vec<RunResult> {
    let units = pairs
        .iter()
        .map(|(trace, policy, seed)| {
            LaneUnit::new(
                Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, *seed)),
                trace,
                config.warmup_fraction,
            )
        })
        .collect();
    run_columnar_lanes(units, lanes)
}

/// The tentpole gate: every (benchmark × policy) unit through the lane
/// engine, at widths 1/2/4/8, must be bit-identical to its sequential
/// `run_columnar`. The 9-policy × `BENCHMARKS` grid gives 36 units, so
/// widths 8 and (after retirements) 4 exercise unit counts that do not
/// divide the lane width and traces retiring mid-flight.
#[test]
fn lane_engine_matches_sequential_for_every_policy_and_benchmark() {
    let suite = build_suite(&SuiteConfig { benchmarks: BENCHMARKS });
    let config = SimConfig::default();
    let policies = lineup9();
    assert_eq!(policies.len(), 9);

    let traces: Vec<(String, u64, PackedTrace)> = suite
        .iter()
        .map(|b| (b.name.to_string(), b.seed, b.generate_packed(INSTRUCTIONS)))
        .collect();
    let mut pairs = Vec::new();
    let mut expected = Vec::new();
    for (name, seed, trace) in &traces {
        for policy in &policies {
            pairs.push((trace, policy, *seed));
            expected.push((
                format!("{} on {}", policy.name(), name),
                columnar_path(policy, &config, trace, *seed),
            ));
        }
    }
    for lanes in [1, 2, 4, 8] {
        let got = lane_path(&pairs, &config, lanes);
        for (result, (label, want)) in got.into_iter().zip(&expected) {
            assert_eq!(result, want.result, "RunResult diverged at lanes={lanes}: {label}");
        }
    }
}

/// Lane-engine policy state must match too, not just the run totals: the
/// CHiRP counters and L2 stats of a laned unit agree with sequential.
#[test]
fn lane_engine_preserves_policy_state() {
    let suite = build_suite(&SuiteConfig { benchmarks: 2 });
    let config = SimConfig::default();
    let policy = PolicyKind::Chirp(ChirpConfig::default());
    let traces: Vec<PackedTrace> = suite.iter().map(|b| b.generate_packed(INSTRUCTIONS)).collect();

    let units = traces
        .iter()
        .zip(&suite)
        .map(|(trace, bench)| {
            LaneUnit::new(
                Simulator::with_policy(&config, policy.build_dispatch(config.tlb.l2, bench.seed)),
                trace,
                config.warmup_fraction,
            )
        })
        .collect();
    let laned = chirp_sim::run_columnar_lanes_outcomes(units, 2);
    for ((trace, bench), (result, sim)) in traces.iter().zip(&suite).zip(laned) {
        let got = outcome_of(sim, result);
        let want = columnar_path(&policy, &config, trace, bench.seed);
        assert_eq!(got, want, "policy state diverged on {}", bench.name);
        assert!(got.chirp.is_some(), "CHiRP counters must be reachable");
    }
}

/// An empty trace, a warmup-only unit and a normal unit must coexist in
/// one lane group without panicking or diverging.
#[test]
fn lane_engine_handles_empty_and_degenerate_units() {
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let bench = &suite[0];
    let trace = bench.generate_packed(10_000);
    let empty = PackedTrace::from_records(&[]);
    let config = SimConfig::default();
    let policy = PolicyKind::Lru;

    let pairs =
        [(&trace, &policy, bench.seed), (&empty, &policy, 0), (&trace, &policy, bench.seed)];
    for lanes in [1, 2, 3, 8] {
        let got = lane_path(&pairs, &config, lanes);
        assert_eq!(got[0], columnar_path(&policy, &config, &trace, bench.seed).result);
        assert_eq!(got[1].instructions, 0, "empty trace must measure zero instructions");
        assert_eq!(got[0], got[2], "identical units must produce identical results");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random warmup fractions (cutting mid-chunk at arbitrary record
    /// indices, including at lane-burst boundaries), random lane widths
    /// and random trace lengths straddling the 4096-record chunk size:
    /// every laned unit stays bit-identical to its sequential run.
    #[test]
    fn lane_engine_matches_sequential_under_random_warmup_cuts(
        warmup_pm in 0u32..1001,
        lanes in 1usize..9,
        lens in proptest::collection::vec(1usize..9_000, 1..6),
    ) {
        let warmup = f64::from(warmup_pm) / 1000.0;
        let suite = build_suite(&SuiteConfig { benchmarks: 1 });
        let bench = &suite[0];
        let config = SimConfig { warmup_fraction: warmup, ..SimConfig::default() };
        let policies = lineup9();
        let traces: Vec<PackedTrace> =
            lens.iter().map(|&n| bench.generate_packed(n)).collect();
        let pairs: Vec<(&PackedTrace, &PolicyKind, u64)> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| (t, &policies[i % policies.len()], bench.seed))
            .collect();
        let got = lane_path(&pairs, &config, lanes);
        for ((trace, policy, seed), result) in pairs.iter().zip(got) {
            let want = columnar_path(policy, &config, trace, *seed);
            prop_assert_eq!(&result, &want.result, "lanes={}, warmup={}", lanes, warmup);
        }
    }
}

/// One streamed unit: fresh simulator fed from a generator stream with
/// the given chunk size, compared field-for-field (including policy
/// state) against the sequential columnar run of the materialized trace.
fn streamed_path(
    policy: &PolicyKind,
    config: &SimConfig,
    bench: &chirp_trace::suite::BenchmarkSpec,
    len: usize,
    chunk: usize,
) -> PathOutcome {
    let mut stream = bench.stream(len, chunk);
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, bench.seed));
    let result = sim.run_stream(&mut stream, config.warmup_fraction).expect("generator stream");
    outcome_of(sim, result)
}

/// The streaming gate: every policy in the lineup, fed the suite
/// benchmarks through bounded generator streams, must be bit-identical —
/// run totals, L2 stats and CHiRP internal counters — to the sequential
/// columnar run over the materialized trace. Chunk sizes cover the
/// 1-record degenerate case, sizes that do not divide the trace length,
/// and a chunk larger than the whole trace (single-batch stream).
#[test]
fn streamed_matches_materialized_for_every_policy_and_benchmark() {
    let suite = build_suite(&SuiteConfig { benchmarks: BENCHMARKS });
    let config = SimConfig::default();
    let policies = lineup9();

    for bench in &suite {
        let trace = bench.generate_packed(INSTRUCTIONS);
        for policy in &policies {
            let want = columnar_path(policy, &config, &trace, bench.seed);
            for chunk in [977, 4_096, INSTRUCTIONS + 1] {
                let got = streamed_path(policy, &config, bench, INSTRUCTIONS, chunk);
                assert_eq!(
                    got,
                    want,
                    "streamed diverged: {} on {} at chunk {chunk}",
                    policy.name(),
                    bench.name
                );
            }
        }
    }
}

/// Lockstep streaming — several policies sharing one stream pass — must
/// equal each policy's independent materialized run, including policy
/// state.
#[test]
fn lockstep_stream_matches_independent_materialized_runs() {
    let suite = build_suite(&SuiteConfig { benchmarks: 2 });
    let config = SimConfig::default();
    let policies = lineup9();

    for bench in &suite {
        let trace = bench.generate_packed(INSTRUCTIONS);
        let mut sims: Vec<_> = policies
            .iter()
            .map(|p| Simulator::with_policy(&config, p.build_dispatch(config.tlb.l2, bench.seed)))
            .collect();
        let mut stream = bench.stream(INSTRUCTIONS, 1_111);
        let results =
            chirp_sim::run_stream_units(&mut sims, &mut stream, config.warmup_fraction).unwrap();
        for ((policy, sim), result) in policies.iter().zip(sims).zip(results) {
            let got = outcome_of(sim, result);
            let want = columnar_path(policy, &config, &trace, bench.seed);
            assert_eq!(got, want, "lockstep diverged: {} on {}", policy.name(), bench.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random chunk sizes (from the 1-record degenerate case up through
    /// sizes that do not divide the trace), random trace lengths and
    /// random warmup fractions whose cut lands mid-chunk and mid-batch:
    /// the streamed run stays bit-identical to the materialized columnar
    /// run for every policy in the lineup.
    #[test]
    fn streamed_matches_materialized_under_random_chunks_and_warmup(
        warmup_pm in 0u32..1001,
        chunk in 1usize..9_000,
        len in 1usize..9_000,
        policy_ix in 0usize..9,
    ) {
        let warmup = f64::from(warmup_pm) / 1000.0;
        let suite = build_suite(&SuiteConfig { benchmarks: 1 });
        let bench = &suite[0];
        let config = SimConfig { warmup_fraction: warmup, ..SimConfig::default() };
        let policy = &lineup9()[policy_ix];
        let trace = bench.generate_packed(len);
        let want = columnar_path(policy, &config, &trace, bench.seed);
        let got = streamed_path(policy, &config, bench, len, chunk);
        prop_assert_eq!(
            got, want,
            "policy={} len={} chunk={} warmup={}", policy.name(), len, chunk, warmup
        );
    }
}

/// One factored group: shared front end + per-policy replay back-ends
/// over a materialized trace, each unit's outcome (result, L2 totals,
/// CHiRP counters) in input order.
fn factored_group_path(
    policies: &[PolicyKind],
    config: &SimConfig,
    trace: &PackedTrace,
    seed: u64,
) -> Vec<PathOutcome> {
    let sig_config = chirp_sim::group_sig_config(policies.iter());
    let built: Vec<chirp_sim::PolicyDispatch> =
        policies.iter().map(|p| p.build_dispatch(config.tlb.l2, seed)).collect();
    chirp_sim::run_factored_group(config, trace, config.warmup_fraction, &sig_config, built)
        .into_iter()
        .map(|(result, backend)| backend_outcome(result, &backend))
        .collect()
}

fn backend_outcome(
    result: RunResult,
    backend: &chirp_sim::Backend<chirp_sim::PolicyDispatch>,
) -> PathOutcome {
    let stats_total = backend.l2().stats();
    let chirp = backend
        .l2()
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Chirp>())
        .map(|c| c.counters());
    PathOutcome { result, stats_total, chirp }
}

/// The factored gate: the whole 9-policy lineup as one group (one front
/// end, nine back-ends) on every suite benchmark, at warmup extremes and
/// a mid-chunk cut, must be bit-identical per unit to its sequential
/// `run_columnar` — run totals, L2 stats and CHiRP internal counters.
#[test]
fn factored_engine_matches_sequential_for_every_policy_and_benchmark() {
    let suite = build_suite(&SuiteConfig { benchmarks: BENCHMARKS });
    let policies = lineup9();

    for bench in &suite {
        let trace = bench.generate_packed(INSTRUCTIONS);
        for warmup in [0.0, 0.1337, 0.5, 1.0] {
            let config = SimConfig { warmup_fraction: warmup, ..SimConfig::default() };
            let got = factored_group_path(&policies, &config, &trace, bench.seed);
            for (policy, outcome) in policies.iter().zip(got) {
                let want = columnar_path(policy, &config, &trace, bench.seed);
                assert_eq!(
                    outcome,
                    want,
                    "factored diverged: {} on {} at warmup {warmup}",
                    policy.name(),
                    bench.name
                );
                if matches!(policy, PolicyKind::Chirp(_)) {
                    assert!(outcome.chirp.is_some(), "CHiRP counters must be reachable");
                }
            }
        }
    }
}

/// Signature-config corner cases: a group whose stream is computed under
/// a wrong-path-pollution configuration (front end must fold the pseudo
/// wrong-path events), containing a second CHiRP whose signature code
/// does NOT match (must fall back to its local registers) plus policies
/// needing branches and needing nothing.
#[test]
fn factored_engine_handles_pollution_and_mismatched_signature_configs() {
    let suite = build_suite(&SuiteConfig { benchmarks: 2 });
    let config = SimConfig::default();
    let polluted = ChirpConfig { wrong_path_pollution: 3, ..ChirpConfig::default() };
    let groups: Vec<Vec<PolicyKind>> = vec![
        // Polluted CHiRP first: the stream carries polluted signatures;
        // the default-config CHiRP must reject them and self-compute.
        vec![
            PolicyKind::Chirp(polluted),
            PolicyKind::Chirp(ChirpConfig::default()),
            PolicyKind::Ghrp,
            PolicyKind::Lru,
        ],
        // No CHiRP at all: stream signatures are computed under the
        // default config and nobody consumes them.
        vec![PolicyKind::Ghrp, PolicyKind::PerceptronReuse, PolicyKind::Srrip],
        // Only the short-history CHiRP: its own config drives the stream.
        vec![
            PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }),
            PolicyKind::Random,
        ],
    ];
    for bench in &suite {
        let trace = bench.generate_packed(INSTRUCTIONS);
        for group in &groups {
            let got = factored_group_path(group, &config, &trace, bench.seed);
            for (policy, outcome) in group.iter().zip(got) {
                let want = columnar_path(policy, &config, &trace, bench.seed);
                assert_eq!(
                    outcome,
                    want,
                    "factored diverged: {} on {} in group {:?}",
                    policy.name(),
                    bench.name,
                    group.iter().map(PolicyKind::name).collect::<Vec<_>>()
                );
            }
        }
    }
}

/// An empty trace and a single-policy group must pass through the
/// factored engine without panicking or diverging.
#[test]
fn factored_engine_handles_empty_and_degenerate_groups() {
    let config = SimConfig::default();
    let empty = PackedTrace::from_records(&[]);
    let got = factored_group_path(&lineup9(), &config, &empty, 0);
    for outcome in &got {
        assert_eq!(outcome.result.instructions, 0, "empty trace must measure zero instructions");
    }
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let bench = &suite[0];
    let trace = bench.generate_packed(10_000);
    let solo = [PolicyKind::Chirp(ChirpConfig::default())];
    let got = factored_group_path(&solo, &config, &trace, bench.seed);
    assert_eq!(got[0], columnar_path(&solo[0], &config, &trace, bench.seed));
}

/// The streamed factored gate: the lineup through
/// [`chirp_sim::run_stream_factored`] over generator streams must equal
/// each policy's sequential columnar run of the materialized trace, at
/// chunk sizes that do not divide the trace, the chunk boundary itself
/// and a single-batch stream.
#[test]
fn factored_stream_matches_materialized_for_every_policy() {
    let suite = build_suite(&SuiteConfig { benchmarks: 2 });
    let config = SimConfig::default();
    let policies = lineup9();

    for bench in &suite {
        let trace = bench.generate_packed(INSTRUCTIONS);
        let wants: Vec<PathOutcome> =
            policies.iter().map(|p| columnar_path(p, &config, &trace, bench.seed)).collect();
        for chunk in [977, 4_096, INSTRUCTIONS + 1] {
            let sig_config = chirp_sim::group_sig_config(policies.iter());
            let built: Vec<chirp_sim::PolicyDispatch> =
                policies.iter().map(|p| p.build_dispatch(config.tlb.l2, bench.seed)).collect();
            let mut stream = bench.stream(INSTRUCTIONS, chunk);
            let got = chirp_sim::run_stream_factored(
                &config,
                &sig_config,
                built,
                &mut stream,
                config.warmup_fraction,
            )
            .expect("generator stream");
            for ((policy, want), (result, backend)) in policies.iter().zip(&wants).zip(got) {
                let outcome = backend_outcome(result, &backend);
                assert_eq!(
                    &outcome,
                    want,
                    "factored stream diverged: {} on {} at chunk {chunk}",
                    policy.name(),
                    bench.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random warmup fractions (cutting mid-chunk and mid-burst) and
    /// random trace lengths straddling the 4096-record chunk size: the
    /// factored group stays bit-identical per unit to its sequential run.
    #[test]
    fn factored_engine_matches_sequential_under_random_warmup_cuts(
        warmup_pm in 0u32..1001,
        len in 1usize..9_000,
    ) {
        let warmup = f64::from(warmup_pm) / 1000.0;
        let suite = build_suite(&SuiteConfig { benchmarks: 1 });
        let bench = &suite[0];
        let config = SimConfig { warmup_fraction: warmup, ..SimConfig::default() };
        let policies = lineup9();
        let trace = bench.generate_packed(len);
        let got = factored_group_path(&policies, &config, &trace, bench.seed);
        for (policy, outcome) in policies.iter().zip(got) {
            let want = columnar_path(policy, &config, &trace, bench.seed);
            prop_assert_eq!(
                &outcome, &want,
                "policy={} len={} warmup={}", policy.name(), len, warmup
            );
        }
    }

    /// The policy-invariance gate (the cut line's defining property): the
    /// front-end event stream serializes to the same bytes no matter
    /// which policy — or none at all — later consumes it, and rebuilding
    /// it is deterministic. Streams under different signature configs
    /// agree on everything except the signature values: same event
    /// counts, same instructions.
    #[test]
    fn frontend_event_stream_is_byte_identical_regardless_of_policy(
        warmup_pm in 0u32..1001,
        len in 1usize..9_000,
    ) {
        let warmup = f64::from(warmup_pm) / 1000.0;
        let suite = build_suite(&SuiteConfig { benchmarks: 1 });
        let bench = &suite[0];
        let config = SimConfig::default();
        let sig_config = ChirpConfig::default();
        let trace = bench.generate_packed(len);

        let stream = chirp_sim::FactoredTrace::build(&config, &trace, warmup, &sig_config);
        let bytes = stream.wire_bytes();

        // Replay through every policy in the lineup (and through nobody),
        // rebuilding the stream after each: the bytes never change.
        for policy in &lineup9() {
            let built = vec![policy.build_dispatch(config.tlb.l2, bench.seed)];
            let _ = chirp_sim::replay_factored(&config, &stream, built);
            let rebuilt = chirp_sim::FactoredTrace::build(&config, &trace, warmup, &sig_config);
            prop_assert_eq!(
                rebuilt.wire_bytes(), bytes.clone(),
                "front-end stream depends on {} being attached", policy.name()
            );
        }
        let unconsumed = chirp_sim::FactoredTrace::build(&config, &trace, warmup, &sig_config);
        prop_assert_eq!(unconsumed.wire_bytes(), bytes.clone());

        // A different signature config changes signature values only:
        // the invariant skeleton (event counts, instructions) is fixed.
        let other = ChirpConfig { path_length: 8, use_cond: false, ..ChirpConfig::default() };
        let reconfigured = chirp_sim::FactoredTrace::build(&config, &trace, warmup, &other);
        prop_assert_eq!(reconfigured.access_events(), stream.access_events());
        prop_assert_eq!(reconfigured.control_events(), stream.control_events());
        prop_assert_eq!(reconfigured.instructions(), stream.instructions());
    }
}

/// The retired dynamic-dispatch path must still agree with the columnar
/// path while the `legacy-dyn` shim exists.
#[cfg(feature = "legacy-dyn")]
mod legacy_shim {
    use super::*;

    fn legacy_path(
        policy: &PolicyKind,
        config: &SimConfig,
        trace: &PackedTrace,
        seed: u64,
    ) -> PathOutcome {
        let mut sim = Simulator::new(config, policy.build(config.tlb.l2, seed));
        let result = sim.run(trace, config.warmup_fraction);
        let stats_total = sim.tlbs().l2().stats();
        let chirp = sim
            .tlbs()
            .l2()
            .policy()
            .as_any()
            .and_then(|a| a.downcast_ref::<Chirp>())
            .map(|c| c.counters());
        PathOutcome { result, stats_total, chirp }
    }

    #[test]
    fn columnar_dispatch_matches_legacy_for_every_policy_and_benchmark() {
        let suite = build_suite(&SuiteConfig { benchmarks: BENCHMARKS });
        let config = SimConfig::default();
        let policies = lineup9();

        for bench in &suite {
            let trace = bench.generate_packed(INSTRUCTIONS);
            for policy in &policies {
                let legacy = legacy_path(policy, &config, &trace, bench.seed);
                let columnar = columnar_path(policy, &config, &trace, bench.seed);
                let label = format!("{} on {}", policy.name(), bench.name);
                assert_eq!(columnar, legacy, "paths diverged: {label}");
                if matches!(policy, PolicyKind::Chirp(_)) {
                    assert!(columnar.chirp.is_some(), "CHiRP counters must be reachable: {label}");
                }
            }
        }
    }

    /// Warmup edge cases: 0% (whole trace measured), 100% (empty window)
    /// and a fraction that cuts mid-chunk must all agree between the paths.
    #[test]
    fn columnar_matches_legacy_at_warmup_extremes() {
        let suite = build_suite(&SuiteConfig { benchmarks: 1 });
        let bench = &suite[0];
        let trace = bench.generate_packed(10_000);
        let policy = PolicyKind::Chirp(ChirpConfig::default());
        for warmup in [0.0, 0.1337, 0.5, 1.0] {
            let config = SimConfig { warmup_fraction: warmup, ..SimConfig::default() };
            let legacy = legacy_path(&policy, &config, &trace, bench.seed);
            let columnar = columnar_path(&policy, &config, &trace, bench.seed);
            assert_eq!(columnar, legacy, "warmup={warmup}");
        }
    }

    /// An empty trace must produce the same (all-zero window) result on
    /// both paths without panicking.
    #[test]
    fn columnar_handles_empty_trace() {
        let trace = PackedTrace::from_records(&[]);
        let config = SimConfig::default();
        let policy = PolicyKind::Lru;
        let legacy = legacy_path(&policy, &config, &trace, 0);
        let columnar = columnar_path(&policy, &config, &trace, 0);
        assert_eq!(columnar.result, legacy.result);
        assert_eq!(columnar.result.instructions, 0);
    }
}
