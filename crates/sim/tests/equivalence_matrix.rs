//! The tentpole equivalence gate for the monomorphized columnar hot loop:
//! for every in-tree policy on every suite benchmark, the new path
//! (`Simulator::with_policy` over [`PolicyDispatch`] + `run_columnar`)
//! must reproduce the legacy path (`Simulator::new` over
//! `Box<dyn TlbReplacementPolicy>` + per-record `run`) bit for bit —
//! `RunResult` (which embeds the measured `TlbStats`), the L2 totals, and
//! CHiRP's internal counters.

use chirp_core::{Chirp, ChirpConfig};
use chirp_sim::{PolicyKind, RunResult, SimConfig, Simulator};
use chirp_tlb::{TlbReplacementPolicy, TlbStats};
use chirp_trace::suite::{build_suite, SuiteConfig};
use chirp_trace::PackedTrace;

const INSTRUCTIONS: usize = 30_000;
const BENCHMARKS: usize = 4;

/// The 9-policy lineup: the paper's six plus the three extension
/// baselines (DRRIP, perceptron reuse, short-history CHiRP).
fn lineup9() -> Vec<PolicyKind> {
    let mut policies = PolicyKind::paper_lineup();
    policies.push(PolicyKind::Drrip);
    policies.push(PolicyKind::PerceptronReuse);
    policies.push(PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }));
    policies
}

struct PathOutcome {
    result: RunResult,
    stats_total: TlbStats,
    chirp: Option<chirp_core::policy::ChirpCounters>,
}

fn legacy_path(
    policy: &PolicyKind,
    config: &SimConfig,
    trace: &PackedTrace,
    seed: u64,
) -> PathOutcome {
    let mut sim = Simulator::new(config, policy.build(config.tlb.l2, seed));
    let result = sim.run(trace, config.warmup_fraction);
    let stats_total = sim.tlbs().l2().stats();
    let chirp = sim
        .tlbs()
        .l2()
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Chirp>())
        .map(|c| c.counters());
    PathOutcome { result, stats_total, chirp }
}

fn columnar_path(
    policy: &PolicyKind,
    config: &SimConfig,
    trace: &PackedTrace,
    seed: u64,
) -> PathOutcome {
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, seed));
    let result = sim.run_columnar(trace, config.warmup_fraction);
    let stats_total = sim.tlbs().l2().stats();
    let chirp = sim
        .tlbs()
        .l2()
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Chirp>())
        .map(|c| c.counters());
    PathOutcome { result, stats_total, chirp }
}

#[test]
fn columnar_dispatch_matches_legacy_for_every_policy_and_benchmark() {
    let suite = build_suite(&SuiteConfig { benchmarks: BENCHMARKS });
    let config = SimConfig::default();
    let policies = lineup9();
    assert_eq!(policies.len(), 9);

    for bench in &suite {
        let trace = bench.generate_packed(INSTRUCTIONS);
        for policy in &policies {
            let legacy = legacy_path(policy, &config, &trace, bench.seed);
            let columnar = columnar_path(policy, &config, &trace, bench.seed);
            let label = format!("{} on {}", policy.name(), bench.name);
            assert_eq!(columnar.result, legacy.result, "RunResult diverged: {label}");
            assert_eq!(columnar.stats_total, legacy.stats_total, "TlbStats diverged: {label}");
            assert_eq!(columnar.chirp, legacy.chirp, "ChirpCounters diverged: {label}");
            if matches!(policy, PolicyKind::Chirp(_)) {
                assert!(columnar.chirp.is_some(), "CHiRP counters must be reachable: {label}");
            }
        }
    }
}

/// Warmup edge cases: 0% (whole trace measured), 100% (empty window) and a
/// fraction that cuts mid-chunk must all agree between the paths.
#[test]
fn columnar_matches_legacy_at_warmup_extremes() {
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let bench = &suite[0];
    let trace = bench.generate_packed(10_000);
    let policy = PolicyKind::Chirp(ChirpConfig::default());
    for warmup in [0.0, 0.1337, 0.5, 1.0] {
        let config = SimConfig { warmup_fraction: warmup, ..SimConfig::default() };
        let legacy = legacy_path(&policy, &config, &trace, bench.seed);
        let columnar = columnar_path(&policy, &config, &trace, bench.seed);
        assert_eq!(columnar.result, legacy.result, "warmup={warmup}");
        assert_eq!(columnar.stats_total, legacy.stats_total, "warmup={warmup}");
        assert_eq!(columnar.chirp, legacy.chirp, "warmup={warmup}");
    }
}

/// An empty trace must produce the same (all-zero window) result on both
/// paths without panicking.
#[test]
fn columnar_handles_empty_trace() {
    let trace = PackedTrace::from_records(&[]);
    let config = SimConfig::default();
    let policy = PolicyKind::Lru;
    let legacy = legacy_path(&policy, &config, &trace, 0);
    let columnar = columnar_path(&policy, &config, &trace, 0);
    assert_eq!(columnar.result, legacy.result);
    assert_eq!(columnar.result.instructions, 0);
}
