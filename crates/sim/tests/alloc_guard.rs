//! Zero-allocation guard for the monomorphized columnar hot loop.
//!
//! A counting global allocator wraps the system allocator; the test then
//! measures `Simulator::run_columnar` on a short and a long trace with the
//! same policy. Every per-run constant (the policy-name `String` in the
//! result, for instance) appears in both counts, so the counts can only
//! differ if something inside the per-instruction loop allocates — which
//! is exactly what the packed-age/flat-array rework eliminated. This file
//! is a separate integration test so the allocator swap owns its process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use chirp_core::ChirpConfig;
use chirp_sim::{PolicyKind, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, SuiteConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of one `run_columnar` call, simulator construction
/// excluded.
fn allocs_for_run(policy: &PolicyKind, config: &SimConfig, instructions: usize, seed: u64) -> u64 {
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let trace = suite[0].generate_packed(instructions);
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, seed));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = sim.run_columnar(&trace, config.warmup_fraction);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(result.instructions > 0 || instructions == 0);
    after - before
}

#[test]
fn hot_loop_does_not_allocate_per_instruction() {
    let config = SimConfig::default();
    let policies = {
        let mut p = PolicyKind::paper_lineup();
        p.push(PolicyKind::Drrip);
        p.push(PolicyKind::PerceptronReuse);
        p.push(PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }));
        p
    };
    for policy in &policies {
        let short = allocs_for_run(policy, &config, 4_000, 7);
        let long = allocs_for_run(policy, &config, 40_000, 7);
        assert_eq!(
            long,
            short,
            "policy {} allocates per instruction: {short} allocations over 4k instructions \
             vs {long} over 40k",
            policy.name()
        );
    }
}
