//! Zero-allocation guard for the monomorphized columnar hot loop.
//!
//! A counting global allocator wraps the system allocator; the test then
//! measures `Simulator::run_columnar` on a short and a long trace with the
//! same policy. Every per-run constant (the policy-name `String` in the
//! result, for instance) appears in both counts, so the counts can only
//! differ if something inside the per-instruction loop allocates — which
//! is exactly what the packed-age/flat-array rework eliminated. This file
//! is a separate integration test so the allocator swap owns its process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use chirp_core::ChirpConfig;
use chirp_sim::{run_columnar_lanes, LaneUnit, PolicyKind, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, SuiteConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `ALLOCATIONS` is process-global, but libtest runs the two tests below
/// on separate threads: one test's setup allocations can land inside the
/// other's measured window and fail it spuriously. Each test holds this
/// lock for its whole body so a measured window owns the counter.
static GATE: Mutex<()> = Mutex::new(());

/// Allocation count of one `run_columnar` call, simulator construction
/// excluded.
fn allocs_for_run(policy: &PolicyKind, config: &SimConfig, instructions: usize, seed: u64) -> u64 {
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let trace = suite[0].generate_packed(instructions);
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, seed));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = sim.run_columnar(&trace, config.warmup_fraction);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(result.instructions > 0 || instructions == 0);
    after - before
}

fn lineup9() -> Vec<PolicyKind> {
    let mut p = PolicyKind::paper_lineup();
    p.push(PolicyKind::Drrip);
    p.push(PolicyKind::PerceptronReuse);
    p.push(PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }));
    p
}

#[test]
fn hot_loop_does_not_allocate_per_instruction() {
    let _counter = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let config = SimConfig::default();
    for policy in &lineup9() {
        let short = allocs_for_run(policy, &config, 4_000, 7);
        let long = allocs_for_run(policy, &config, 40_000, 7);
        assert_eq!(
            long,
            short,
            "policy {} allocates per instruction: {short} allocations over 4k instructions \
             vs {long} over 40k",
            policy.name()
        );
    }
}

/// Allocation count of one `run_columnar_lanes` call over all 9 policies
/// at the given trace length, unit/simulator construction excluded.
fn allocs_for_lane_run(config: &SimConfig, instructions: usize, lanes: usize) -> u64 {
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let trace = suite[0].generate_packed(instructions);
    let units: Vec<_> = lineup9()
        .iter()
        .map(|policy| {
            let sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, 7));
            LaneUnit::new(sim, &trace, config.warmup_fraction)
        })
        .collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let results = run_columnar_lanes(units, lanes);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(results.len(), 9);
    after - before
}

/// The lane engine's interleaved loop must not allocate per instruction
/// either: its per-lane decode blocks and vpn columns are allocated once
/// per lane (covered by both counts), so a longer trace may not add
/// allocations. 9 units at width 4 exercises lane retirement and refill
/// (three waves) inside the measured window.
#[test]
fn lane_engine_does_not_allocate_per_instruction() {
    let _counter = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let config = SimConfig::default();
    let short = allocs_for_lane_run(&config, 4_000, 4);
    let long = allocs_for_lane_run(&config, 40_000, 4);
    assert_eq!(
        long, short,
        "lane engine allocates per instruction: {short} allocations over 4k instructions \
         vs {long} over 40k"
    );
}

/// Allocation count of replaying a prebuilt front-end event stream
/// through all 9 policy back-ends (`chirp_sim::replay_factored`). The
/// stream and the trace are built outside the measured window; backend
/// construction, the per-segment control cursors and the policy-name
/// `String`s in the results are per-run constants appearing in both
/// counts.
fn allocs_for_factored_replay(config: &SimConfig, instructions: usize) -> u64 {
    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let trace = suite[0].generate_packed(instructions);
    let policies = lineup9();
    let sig_config = chirp_sim::group_sig_config(policies.iter());
    let stream =
        chirp_sim::FactoredTrace::build(config, &trace, config.warmup_fraction, &sig_config);
    let built: Vec<_> = policies.iter().map(|p| p.build_dispatch(config.tlb.l2, 7)).collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let outcomes = chirp_sim::replay_factored(config, &stream, built);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(outcomes.len(), 9);
    after - before
}

/// The factored back-end replay must do zero per-instruction (and
/// per-event) allocations: a 10× longer event stream may not add a
/// single allocation over the short one.
#[test]
fn factored_replay_does_not_allocate_per_instruction() {
    let _counter = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let config = SimConfig::default();
    let short = allocs_for_factored_replay(&config, 4_000);
    let long = allocs_for_factored_replay(&config, 40_000);
    assert_eq!(
        long, short,
        "factored replay allocates per instruction: {short} allocations over 4k instructions \
         vs {long} over 40k"
    );
}
