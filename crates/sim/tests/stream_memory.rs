//! Peak-residency gauge for the streaming path.
//!
//! A live-bytes tracking global allocator wraps the system allocator and
//! records the high-water mark of outstanding heap bytes (across all
//! threads, so the generator's producer thread is counted). The test
//! streams a trace two orders of magnitude larger than the chunk size
//! through a simulator and asserts the peak heap growth during the run
//! is a small multiple of one chunk — i.e. O(chunk), not O(trace). The
//! materialized path would retain the whole packed trace (~13 bytes per
//! record), so an accidental materialization anywhere in the pipeline
//! trips the bound immediately. Separate integration test so the
//! allocator swap owns its process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use chirp_sim::{PolicyKind, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, SuiteConfig};
use chirp_trace::PackedTrace;

struct LiveBytesAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn grow(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for LiveBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        grow(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        grow(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        grow(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: LiveBytesAlloc = LiveBytesAlloc;

#[test]
fn streamed_run_keeps_trace_residency_proportional_to_chunk() {
    const LEN: usize = 400_000;
    const CHUNK: usize = 4_096;

    let suite = build_suite(&SuiteConfig { benchmarks: 1 });
    let bench = &suite[0];
    let config = SimConfig::default();
    let policy = PolicyKind::Lru;
    // Simulator construction (TLB arrays, policy tables) happens outside
    // the measured window; only the streaming itself is gauged.
    let mut sim = Simulator::with_policy(&config, policy.build_dispatch(config.tlb.l2, bench.seed));

    let mut stream = bench.stream(LEN, CHUNK);
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let result = sim.run_stream(&mut stream, config.warmup_fraction).unwrap();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(before);

    assert_eq!(result.instructions as usize, LEN - LEN / 2, "measured window covers half");

    let chunk_bytes = PackedTrace::estimate_bytes(CHUNK);
    let trace_bytes = PackedTrace::estimate_bytes(LEN);
    // Pipeline depth is a handful of chunks (producer builds one, the
    // channel buffers STREAM_PIPELINE_CHUNKS, the consumer holds one);
    // 16× leaves slack for builder growth doubling and per-batch scratch
    // while staying ~6× under the materialized trace size.
    let bound = chunk_bytes * 16;
    assert!(
        bound * 4 < trace_bytes,
        "test is vacuous: bound {bound} must sit well under the trace size {trace_bytes}"
    );
    assert!(
        peak <= bound,
        "streamed peak residency {peak} bytes exceeds O(chunk) bound {bound} \
         (chunk {chunk_bytes} bytes, materialized trace would be {trace_bytes} bytes)"
    );
}
