//! Work-stealing scheduler for (benchmark × policy) simulation units.
//!
//! The suite runner's unit of work used to be a whole benchmark: one
//! worker generated (or decoded) the trace and then ran *every* policy
//! over it serially. With more policies than benchmarks that leaves
//! threads idle, and with more benchmarks than memory it gives no control
//! over how many traces sit resident at once. This module splits the
//! matrix the other way:
//!
//! * each (benchmark × policy) pair is an independent **simulation task**;
//! * each benchmark's trace is fetched once by a **fetch task** and shared
//!   behind an [`Arc<PackedTrace>`] by every policy that needs it;
//! * a trace is dropped the moment its last policy task finishes;
//! * an optional **memory budget** bounds the bytes of packed trace in
//!   flight — fetches are admitted only while estimated + resident bytes
//!   fit, except that one trace is always allowed so progress is
//!   guaranteed even when a single trace exceeds the budget.
//!
//! Workers pull whatever is runnable: ready simulation tasks first (they
//! retire resident bytes), then an admissible fetch, otherwise they block
//! on a condvar until a peer changes the state. Fetches run *outside* the
//! scheduler lock, so two workers needing different traces decode or
//! generate concurrently.
//!
//! Results land in fixed `[work item][policy position]` slots, so output
//! order is deterministic regardless of interleaving.

use chirp_store::StoreError;
use chirp_telemetry::{Gauge, HistogramSnapshot, Log2Histogram};
use chirp_trace::PackedTrace;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One unit of trace-fetch work: a benchmark index plus the policy indices
/// to simulate over its trace. Index spaces are the caller's (the runner
/// uses suite order and policy-lineup order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// Caller's benchmark index; used only to route callbacks.
    pub bench: usize,
    /// Caller's policy indices to run over this benchmark's trace.
    pub policies: Vec<usize>,
}

/// What one scheduler invocation did — printed by the harness binaries as
/// a one-line summary and recorded for [`last_scheduler_summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSummary {
    /// Work items executed (benchmarks needing at least one policy).
    pub work_units: usize,
    /// Simulation tasks executed ((benchmark × policy) pairs).
    pub sim_tasks: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Logical CPUs available to this process when the run executed —
    /// context for interpreting thread-scaling numbers (an 8-thread run on
    /// one CPU cannot be expected to speed up).
    pub cpus: usize,
    /// Most traces resident at any instant.
    pub peak_resident_traces: usize,
    /// Most packed-trace bytes resident at any instant.
    pub peak_resident_bytes: u64,
    /// Most fetches in flight at any instant (decode/generate overlap).
    pub concurrent_fetch_peak: usize,
    /// Most runnable simulation tasks queued at any instant (high values
    /// mean workers, not fetch admission, are the bottleneck).
    pub peak_ready_queue: i64,
    /// Wall-clock latency of each simulation task, in microseconds, as a
    /// log2 histogram.
    pub sim_latency_us: HistogramSnapshot,
    /// Wall-clock time of the whole scheduler run.
    pub wall: Duration,
}

impl SchedulerSummary {
    /// One-line human-readable rendering for harness output.
    pub fn render(&self) -> String {
        format!(
            "{} work units ({} sims) on {} threads / {} cpus | peak {} traces / {:.1} MiB in \
             flight | peak {} concurrent fetches, {} queued sims | sim latency p50 {} us / p99 \
             {} us | {:.2}s wall",
            self.work_units,
            self.sim_tasks,
            self.threads,
            self.cpus,
            self.peak_resident_traces,
            self.peak_resident_bytes as f64 / (1024.0 * 1024.0),
            self.concurrent_fetch_peak,
            self.peak_ready_queue,
            self.sim_latency_us.quantile(0.5),
            self.sim_latency_us.quantile(0.99),
            self.wall.as_secs_f64(),
        )
    }
}

/// The last summary recorded by [`run_units`] in this process, for
/// harnesses that want to report scheduling behaviour after an experiment
/// without threading the value through every figure helper.
pub fn last_scheduler_summary() -> Option<SchedulerSummary> {
    LAST.lock().expect("summary lock").clone()
}

static LAST: Mutex<Option<SchedulerSummary>> = Mutex::new(None);

/// Shared scheduler state, guarded by one mutex; workers sleep on the
/// paired condvar whenever nothing is runnable for them.
struct State {
    /// Next work item not yet claimed for fetching.
    next: usize,
    /// Simulation tasks whose trace is resident: (work index, position in
    /// that item's `policies`).
    ready: VecDeque<(usize, usize)>,
    /// Resident traces by work index.
    traces: HashMap<usize, Arc<PackedTrace>>,
    /// Outstanding simulation tasks per work item (drop trace at zero).
    remaining: Vec<usize>,
    /// Actual bytes of resident packed traces.
    resident_bytes: u64,
    /// Estimated bytes of fetches in flight (admission accounting).
    reserved_bytes: u64,
    /// Fetch tasks currently executing.
    fetching: usize,
    /// Simulation tasks currently executing.
    active: usize,
    /// First fetch error; set once, terminates admission.
    error: Option<StoreError>,
    peak_traces: usize,
    peak_bytes: u64,
    fetch_peak: usize,
}

enum Task {
    Fetch(usize),
    /// A group of same-work-item simulation tasks (positions into the
    /// item's `policies`), claimed together for lane dispatch.
    Sim(usize, Vec<usize>),
    Done,
}

/// Runs every (work item × policy) pair and returns the results in
/// `[work item][policy position]` order plus a scheduling summary.
///
/// `fetch` produces a work item's packed trace and runs **outside** the
/// scheduler lock — callers doing archive I/O must do their own index
/// bookkeeping under their own (briefly held) lock. `simulate` receives
/// `(work index, policy position, trace)` and also runs unlocked.
///
/// `est_bytes` is the per-trace size estimate used for budget admission
/// before a trace's true [`PackedTrace::resident_bytes`] is known;
/// `budget` of `None` means unbounded. The first fetch error aborts
/// admission and is returned after in-flight tasks drain.
pub fn run_units<F, S, R>(
    work: &[WorkItem],
    threads: usize,
    est_bytes: u64,
    budget: Option<u64>,
    fetch: F,
    simulate: S,
) -> Result<(Vec<Vec<R>>, SchedulerSummary), StoreError>
where
    F: Fn(&WorkItem) -> Result<PackedTrace, StoreError> + Sync,
    S: Fn(usize, usize, &PackedTrace) -> R + Sync,
    R: Send,
{
    run_unit_groups(work, threads, est_bytes, budget, 1, fetch, |w, positions, trace| {
        positions.iter().map(|&pos| simulate(w, pos, trace)).collect()
    })
}

/// [`run_units`] with multi-lane dispatch: ready simulation tasks that
/// share a work item's trace are claimed in groups of up to `lanes` and
/// handed to `simulate_group` together, so the callee can software-
/// pipeline them through one interleaved instruction loop
/// ([`crate::run_columnar_lanes`]) instead of running them back to back.
///
/// `simulate_group` receives `(work index, policy positions, trace)` and
/// must return one result per position, in order. Grouping only ever
/// merges tasks of the *same* work item (they share the `Arc<PackedTrace>`
/// by construction), and any partition of a work item's tasks into groups
/// is result-identical because the units are independent — so budget
/// admission, trace retirement and output order are exactly those of
/// `run_units`. One latency sample is recorded per group.
pub fn run_unit_groups<F, S, R>(
    work: &[WorkItem],
    threads: usize,
    est_bytes: u64,
    budget: Option<u64>,
    lanes: usize,
    fetch: F,
    simulate_group: S,
) -> Result<(Vec<Vec<R>>, SchedulerSummary), StoreError>
where
    F: Fn(&WorkItem) -> Result<PackedTrace, StoreError> + Sync,
    S: Fn(usize, &[usize], &PackedTrace) -> Vec<R> + Sync,
    R: Send,
{
    let lanes = lanes.max(1);
    let started = Instant::now();
    let threads = threads.max(1);
    let state = Mutex::new(State {
        next: 0,
        ready: VecDeque::new(),
        traces: HashMap::new(),
        remaining: work.iter().map(|w| w.policies.len()).collect(),
        resident_bytes: 0,
        reserved_bytes: 0,
        fetching: 0,
        active: 0,
        error: None,
        peak_traces: 0,
        peak_bytes: 0,
        fetch_peak: 0,
    });
    let cvar = Condvar::new();
    let results: Mutex<Vec<Vec<Option<R>>>> =
        Mutex::new(work.iter().map(|w| (0..w.policies.len()).map(|_| None).collect()).collect());
    // Scheduler telemetry: runnable-queue depth (with peak) and per-task
    // wall latency. Atomic primitives, so workers record without extending
    // any lock hold.
    let queue_depth = Gauge::new();
    let sim_latency = Log2Histogram::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let state = &state;
            let cvar = &cvar;
            let results = &results;
            let fetch = &fetch;
            let simulate_group = &simulate_group;
            let queue_depth = &queue_depth;
            let sim_latency = &sim_latency;
            scope.spawn(move || loop {
                let task = {
                    let mut st = state.lock().expect("scheduler lock");
                    loop {
                        if let Some((w, pos)) = st.ready.pop_front() {
                            // Claim up to `lanes` ready tasks that share
                            // this task's trace. Same-item tasks are
                            // enqueued contiguously, so a front-run scan
                            // finds them; whatever a concurrent worker
                            // already claimed simply isn't there.
                            let mut group = vec![pos];
                            while group.len() < lanes
                                && st.ready.front().is_some_and(|&(w2, _)| w2 == w)
                            {
                                let (_, p) = st.ready.pop_front().expect("front checked");
                                group.push(p);
                            }
                            st.active += 1;
                            queue_depth.add(-(group.len() as i64));
                            break Task::Sim(w, group);
                        }
                        if st.next < work.len() && st.error.is_none() {
                            // Always admit when nothing is resident or in
                            // flight — a single oversized trace must not
                            // wedge the run.
                            let alone = st.traces.is_empty() && st.fetching == 0;
                            let fits = budget.is_none_or(|b| {
                                st.resident_bytes + st.reserved_bytes + est_bytes <= b
                            });
                            if alone || fits {
                                let w = st.next;
                                st.next += 1;
                                st.fetching += 1;
                                st.reserved_bytes += est_bytes;
                                st.fetch_peak = st.fetch_peak.max(st.fetching);
                                break Task::Fetch(w);
                            }
                        }
                        if st.next >= work.len()
                            && st.fetching == 0
                            && st.ready.is_empty()
                            && st.active == 0
                        {
                            break Task::Done;
                        }
                        st = cvar.wait(st).expect("scheduler lock");
                    }
                };
                match task {
                    Task::Done => return,
                    Task::Fetch(w) => {
                        let fetched = fetch(&work[w]);
                        let mut st = state.lock().expect("scheduler lock");
                        st.fetching -= 1;
                        st.reserved_bytes -= est_bytes;
                        match fetched {
                            Ok(trace) => {
                                if work[w].policies.is_empty() {
                                    // Nothing to simulate; never resident.
                                } else {
                                    st.resident_bytes += trace.resident_bytes();
                                    st.traces.insert(w, Arc::new(trace));
                                    st.peak_traces = st.peak_traces.max(st.traces.len());
                                    st.peak_bytes = st.peak_bytes.max(st.resident_bytes);
                                    for pos in 0..work[w].policies.len() {
                                        st.ready.push_back((w, pos));
                                    }
                                    queue_depth.add(work[w].policies.len() as i64);
                                }
                            }
                            Err(e) => {
                                if st.error.is_none() {
                                    st.error = Some(e);
                                }
                                // Stop admitting; let in-flight work drain.
                                st.next = work.len();
                                queue_depth.add(-(st.ready.len() as i64));
                                st.ready.clear();
                            }
                        }
                        cvar.notify_all();
                    }
                    Task::Sim(w, group) => {
                        let trace = {
                            let st = state.lock().expect("scheduler lock");
                            Arc::clone(st.traces.get(&w).expect("ready task has resident trace"))
                        };
                        let sim_started = Instant::now();
                        let rs = simulate_group(w, &group, &trace);
                        sim_latency.record(sim_started.elapsed().as_micros() as u64);
                        drop(trace);
                        assert_eq!(rs.len(), group.len(), "one result per group position");
                        {
                            let mut slots = results.lock().expect("results lock");
                            for (&pos, r) in group.iter().zip(rs) {
                                slots[w][pos] = Some(r);
                            }
                        }
                        let mut st = state.lock().expect("scheduler lock");
                        st.active -= 1;
                        st.remaining[w] -= group.len();
                        if st.remaining[w] == 0 {
                            if let Some(t) = st.traces.remove(&w) {
                                st.resident_bytes -= t.resident_bytes();
                            }
                        }
                        cvar.notify_all();
                    }
                }
            });
        }
    });

    let st = state.into_inner().expect("scheduler lock");
    if let Some(e) = st.error {
        return Err(e);
    }
    let summary = SchedulerSummary {
        work_units: work.len(),
        sim_tasks: work.iter().map(|w| w.policies.len()).sum(),
        threads,
        cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        peak_resident_traces: st.peak_traces,
        peak_resident_bytes: st.peak_bytes,
        concurrent_fetch_peak: st.fetch_peak,
        peak_ready_queue: queue_depth.peak(),
        sim_latency_us: sim_latency.snapshot(),
        wall: started.elapsed(),
    };
    *LAST.lock().expect("summary lock") = Some(summary.clone());
    let out = results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|row| row.into_iter().map(|r| r.expect("every sim task ran")).collect())
        .collect();
    Ok((out, summary))
}

/// Scheduler state for [`run_streamed`]: no trace table — a streamed work
/// item owns its trace source for its whole lifetime, so admission only
/// tracks the estimated per-item residency.
struct StreamState {
    next: usize,
    active: usize,
    resident_bytes: u64,
    error: Option<StoreError>,
    peak_active: usize,
    peak_bytes: u64,
}

/// Streaming counterpart of [`run_unit_groups`]: each work item is ONE
/// task — `exec` opens the item's trace stream itself, runs every listed
/// policy over it in lockstep (one generation/decode pass, see
/// [`crate::engine::run_stream_units`]) and returns one result per policy
/// position. No trace is ever shared or resident in the scheduler;
/// `unit_bytes` is the estimated peak residency of one in-flight item
/// (a few stream chunks), and `budget` caps the sum across items with the
/// same always-admit-one rule as the materialized scheduler — so a tight
/// budget degrades to serial items, never deadlock.
///
/// Because `exec` runs an item end to end (including any per-item
/// persistence the caller does inside it), a run killed mid-suite keeps
/// every completed item's side effects — the basis of `--resume`.
///
/// # Errors
///
/// The first `exec` error stops admission, in-flight items drain, and the
/// error is returned.
pub fn run_streamed<E, R>(
    work: &[WorkItem],
    threads: usize,
    unit_bytes: u64,
    budget: Option<u64>,
    exec: E,
) -> Result<(Vec<Vec<R>>, SchedulerSummary), StoreError>
where
    E: Fn(&WorkItem) -> Result<Vec<R>, StoreError> + Sync,
    R: Send,
{
    let started = Instant::now();
    let threads = threads.max(1);
    let state = Mutex::new(StreamState {
        next: 0,
        active: 0,
        resident_bytes: 0,
        error: None,
        peak_active: 0,
        peak_bytes: 0,
    });
    let cvar = Condvar::new();
    let results: Mutex<Vec<Option<Vec<R>>>> = Mutex::new(work.iter().map(|_| None).collect());
    let queue_depth = Gauge::new();
    let sim_latency = Log2Histogram::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let state = &state;
            let cvar = &cvar;
            let results = &results;
            let exec = &exec;
            let queue_depth = &queue_depth;
            let sim_latency = &sim_latency;
            scope.spawn(move || loop {
                let w = {
                    let mut st = state.lock().expect("stream scheduler lock");
                    loop {
                        if st.next < work.len() && st.error.is_none() {
                            let alone = st.active == 0;
                            let fits = budget.is_none_or(|b| st.resident_bytes + unit_bytes <= b);
                            if alone || fits {
                                let w = st.next;
                                st.next += 1;
                                st.active += 1;
                                st.resident_bytes += unit_bytes;
                                st.peak_active = st.peak_active.max(st.active);
                                st.peak_bytes = st.peak_bytes.max(st.resident_bytes);
                                queue_depth.add(1);
                                break Some(w);
                            }
                        } else if st.active == 0 {
                            break None;
                        }
                        st = cvar.wait(st).expect("stream scheduler lock");
                    }
                };
                let Some(w) = w else { return };
                let item_started = Instant::now();
                let outcome = exec(&work[w]);
                sim_latency.record(item_started.elapsed().as_micros() as u64);
                queue_depth.add(-1);
                match outcome {
                    Ok(rs) => {
                        assert_eq!(
                            rs.len(),
                            work[w].policies.len(),
                            "one result per policy position"
                        );
                        results.lock().expect("results lock")[w] = Some(rs);
                    }
                    Err(e) => {
                        let mut st = state.lock().expect("stream scheduler lock");
                        if st.error.is_none() {
                            st.error = Some(e);
                        }
                        st.next = work.len();
                    }
                }
                let mut st = state.lock().expect("stream scheduler lock");
                st.active -= 1;
                st.resident_bytes -= unit_bytes;
                drop(st);
                cvar.notify_all();
            });
        }
    });

    let st = state.into_inner().expect("stream scheduler lock");
    if let Some(e) = st.error {
        return Err(e);
    }
    let summary = SchedulerSummary {
        work_units: work.len(),
        sim_tasks: work.iter().map(|w| w.policies.len()).sum(),
        threads,
        cpus: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        peak_resident_traces: st.peak_active,
        peak_resident_bytes: st.peak_bytes,
        concurrent_fetch_peak: st.peak_active,
        peak_ready_queue: queue_depth.peak(),
        sim_latency_us: sim_latency.snapshot(),
        wall: started.elapsed(),
    };
    *LAST.lock().expect("summary lock") = Some(summary.clone());
    let out = results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|row| row.expect("every streamed item ran"))
        .collect();
    Ok((out, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::{PackedTraceBuilder, TraceRecord};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn trace_of_len(len: usize) -> PackedTrace {
        let mut b = PackedTraceBuilder::with_capacity(len);
        for i in 0..len {
            b.push(TraceRecord::alu(0x400000 + 4 * i as u64));
        }
        b.finish()
    }

    #[test]
    fn results_land_in_item_by_policy_order() {
        let work = vec![
            WorkItem { bench: 0, policies: vec![0, 1, 2] },
            WorkItem { bench: 1, policies: vec![1] },
        ];
        let (results, summary) = run_units(
            &work,
            4,
            64,
            None,
            |item| Ok(trace_of_len(10 * (item.bench + 1))),
            |w, pos, trace| (w, work[w].policies[pos], trace.len()),
        )
        .unwrap();
        assert_eq!(results, vec![vec![(0, 0, 10), (0, 1, 10), (0, 2, 10)], vec![(1, 1, 20)]]);
        assert_eq!(summary.work_units, 2);
        assert_eq!(summary.sim_tasks, 4);
        assert!(summary.peak_resident_traces >= 1);
        assert!(summary.peak_resident_bytes > 0);
        assert_eq!(summary.sim_latency_us.total(), 4, "one latency sample per sim task");
        assert!(summary.peak_ready_queue >= 1, "tasks must have queued at least once");
    }

    /// Lane-group dispatch: a single worker with `lanes = 4` must claim
    /// same-item tasks in groups (never crossing work items), cover every
    /// task exactly once, and land results in input order.
    #[test]
    fn grouped_dispatch_preserves_order_and_covers_every_task() {
        let work = vec![
            WorkItem { bench: 0, policies: vec![10, 11, 12, 13, 14] },
            WorkItem { bench: 1, policies: vec![20, 21] },
        ];
        let max_group = AtomicUsize::new(0);
        let (results, summary) = run_unit_groups(
            &work,
            1,
            64,
            None,
            4,
            |item| Ok(trace_of_len(10 * (item.bench + 1))),
            |w, positions, trace| {
                max_group.fetch_max(positions.len(), Ordering::SeqCst);
                positions.iter().map(|&pos| (w, work[w].policies[pos], trace.len())).collect()
            },
        )
        .unwrap();
        assert_eq!(
            results,
            vec![
                vec![(0, 10, 10), (0, 11, 10), (0, 12, 10), (0, 13, 10), (0, 14, 10)],
                vec![(1, 20, 20), (1, 21, 20)],
            ]
        );
        assert_eq!(summary.sim_tasks, 7);
        assert_eq!(max_group.load(Ordering::SeqCst), 4, "a full lane group must form");
    }

    /// The lock-splitting satellite's regression probe: two workers that
    /// need *different* traces must be inside `fetch` simultaneously. Each
    /// fetch parks until it observes the other (bounded spin), so if the
    /// scheduler serialised fetches — e.g. by holding the state lock
    /// across the callback, the pre-rework archive behaviour — the gauge
    /// would never reach 2 and the assertion below fails after the
    /// timeout rather than deadlocking.
    #[test]
    fn fetches_for_different_traces_overlap() {
        let in_fetch = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let work = vec![
            WorkItem { bench: 0, policies: vec![0] },
            WorkItem { bench: 1, policies: vec![0] },
        ];
        let (results, summary) = run_units(
            &work,
            2,
            64,
            None,
            |item| {
                let now = in_fetch.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(5);
                while peak.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                in_fetch.fetch_sub(1, Ordering::SeqCst);
                Ok(trace_of_len(item.bench + 1))
            },
            |_, _, trace| trace.len(),
        )
        .unwrap();
        assert_eq!(peak.load(Ordering::SeqCst), 2, "both fetches must be in flight at once");
        assert_eq!(summary.concurrent_fetch_peak, 2);
        assert_eq!(results, vec![vec![1], vec![2]]);
    }

    #[test]
    fn budget_keeps_one_trace_resident_at_a_time() {
        let work: Vec<WorkItem> =
            (0..4).map(|bench| WorkItem { bench, policies: vec![0, 1] }).collect();
        let est = 64u64;
        // Budget fits exactly one estimated fetch; once any trace is
        // resident (resident_bytes > 0), a second fetch never fits.
        let (results, summary) = run_units(
            &work,
            4,
            est,
            Some(est),
            |item| Ok(trace_of_len(8 + item.bench)),
            |_, _, trace| trace.len(),
        )
        .unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(summary.peak_resident_traces, 1, "budget must serialise trace residency");
        assert_eq!(summary.concurrent_fetch_peak, 1);
    }

    #[test]
    fn oversized_trace_still_admitted_when_alone() {
        let work = vec![WorkItem { bench: 0, policies: vec![0] }];
        // Estimate far above budget: the alone-rule must admit it anyway.
        let (results, _) =
            run_units(&work, 2, 1 << 30, Some(1024), |_| Ok(trace_of_len(5)), |_, _, t| t.len())
                .unwrap();
        assert_eq!(results, vec![vec![5]]);
    }

    #[test]
    fn fetch_error_is_returned() {
        let work = vec![
            WorkItem { bench: 0, policies: vec![0] },
            WorkItem { bench: 1, policies: vec![0] },
        ];
        let err = run_units(
            &work,
            2,
            64,
            None,
            |item| {
                if item.bench == 1 {
                    Err(StoreError::Corrupt("boom".into()))
                } else {
                    Ok(trace_of_len(3))
                }
            },
            |_, _, trace| trace.len(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn empty_work_completes_immediately() {
        let (results, summary) = run_units(
            &[],
            3,
            64,
            Some(1),
            |_: &WorkItem| Ok(trace_of_len(1)),
            |_, _, t: &PackedTrace| t.len(),
        )
        .unwrap();
        assert!(results.is_empty());
        assert_eq!(summary.sim_tasks, 0);
        assert_eq!(summary.peak_resident_traces, 0);
    }

    #[test]
    fn streamed_results_land_in_item_order() {
        let work = vec![
            WorkItem { bench: 0, policies: vec![0, 1, 2] },
            WorkItem { bench: 1, policies: vec![1] },
            WorkItem { bench: 2, policies: vec![0, 2] },
        ];
        let (results, summary) = run_streamed(&work, 4, 64, None, |item| {
            Ok(item.policies.iter().map(|&p| (item.bench, p)).collect())
        })
        .unwrap();
        assert_eq!(results, vec![vec![(0, 0), (0, 1), (0, 2)], vec![(1, 1)], vec![(2, 0), (2, 2)]]);
        assert_eq!(summary.work_units, 3);
        assert_eq!(summary.sim_tasks, 6);
        assert_eq!(summary.sim_latency_us.total(), 3, "one latency sample per item");
    }

    #[test]
    fn streamed_budget_serialises_items() {
        let work: Vec<WorkItem> =
            (0..5).map(|bench| WorkItem { bench, policies: vec![0] }).collect();
        // Budget admits exactly one estimated unit at a time.
        let (results, summary) =
            run_streamed(&work, 4, 64, Some(64), |item| Ok(vec![item.bench])).unwrap();
        assert_eq!(results.len(), 5);
        assert_eq!(summary.peak_resident_traces, 1, "budget must serialise streamed items");
        assert!(summary.peak_resident_bytes <= 64);
    }

    #[test]
    fn streamed_oversized_unit_still_admitted_when_alone() {
        let work = vec![WorkItem { bench: 0, policies: vec![0] }];
        let (results, _) =
            run_streamed(&work, 2, 1 << 40, Some(1024), |_| Ok(vec![7usize])).unwrap();
        assert_eq!(results, vec![vec![7]]);
    }

    #[test]
    fn streamed_error_is_returned_and_stops_admission() {
        let work: Vec<WorkItem> =
            (0..4).map(|bench| WorkItem { bench, policies: vec![0] }).collect();
        let executed = AtomicUsize::new(0);
        let err = run_streamed(&work, 1, 64, None, |item| {
            executed.fetch_add(1, Ordering::SeqCst);
            if item.bench == 1 {
                Err(StoreError::Corrupt("stream boom".into()))
            } else {
                Ok(vec![item.bench])
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("stream boom"));
        // Serial worker: items 0 and 1 ran, admission then stopped.
        assert_eq!(executed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn streamed_empty_work_completes() {
        let (results, summary) =
            run_streamed(&[], 3, 64, Some(1), |_: &WorkItem| Ok(vec![0usize])).unwrap();
        assert!(results.is_empty());
        assert_eq!(summary.sim_tasks, 0);
    }

    #[test]
    fn traces_are_dropped_after_last_policy() {
        // Serial worker: every trace must be gone before the next fetch,
        // so the peak is exactly one even without a budget.
        let work: Vec<WorkItem> =
            (0..3).map(|b| WorkItem { bench: b, policies: vec![0] }).collect();
        let (_, summary) =
            run_units(&work, 1, 64, None, |i| Ok(trace_of_len(4 + i.bench)), |_, _, t| t.len())
                .unwrap();
        assert_eq!(summary.peak_resident_traces, 1);
    }
}
