//! Report rendering: aligned tables, ASCII S-curves and density plots, and
//! CSV emission — the textual equivalents of the paper's figures.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// An aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; extra/missing cells are tolerated in rendering.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with first column left-aligned and the rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[0]);
                } else {
                    let _ = write!(out, "  {cell:>width$}", width = widths[i]);
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Renders an ASCII S-curve: `series` are (name, per-benchmark values in a
/// shared benchmark order); benchmarks are sorted by the first series
/// (matching the paper's Figure 7, which sorts by LRU MPKI).
pub fn render_scurve(series: &[(String, Vec<f64>)], height: usize, width: usize) -> String {
    if series.is_empty() || series[0].1.is_empty() {
        return String::from("(no data)\n");
    }
    let n = series[0].1.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| series[0].1[a].partial_cmp(&series[0].1[b]).expect("finite values"));

    let max = series.iter().flat_map(|(_, v)| v.iter()).cloned().fold(0.0f64, f64::max).max(1e-9);
    let cols = width.min(n).max(1);
    let mut grid = vec![vec![' '; cols]; height];
    let marks = ['*', 'o', '+', 'x', '#', '@', '%'];
    for (si, (_, values)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for c in 0..cols {
            let bench = order[c * n / cols];
            let v = values[bench];
            let r = ((v / max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - r.min(height - 1);
            grid[row][c] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "max = {max:.3}");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", marks[si % marks.len()], name);
    }
    out
}

/// Renders an ASCII density (histogram) plot of `values` over `bins`
/// buckets between `lo` and `hi`, with the mean marked.
pub fn render_density(name: &str, values: &[f64], lo: f64, hi: f64, bins: usize) -> String {
    let mut counts = vec![0usize; bins.max(1)];
    for &v in values {
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let b = ((t * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let maxc = counts.iter().copied().max().unwrap_or(0).max(1);
    let mean =
        if values.is_empty() { 0.0 } else { values.iter().sum::<f64>() / values.len() as f64 };
    let mut out = String::new();
    let _ = writeln!(out, "{name} (mean = {mean:.4})");
    for (i, &c) in counts.iter().enumerate() {
        let bucket_lo = lo + (hi - lo) * i as f64 / bins as f64;
        let bar = "#".repeat(c * 40 / maxc);
        let _ = writeln!(out, "{bucket_lo:>8.2} | {bar} {c}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Policy", "MPKI"]);
        t.row(["lru", "1.51"]);
        t.row(["chirp", "1.08"]);
        let s = t.render();
        assert!(s.contains("Policy"));
        assert!(s.contains("chirp"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn table_csv_roundtrip() {
        let dir = std::env::temp_dir().join("chirp_report_test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scurve_orders_by_first_series() {
        let series = vec![
            ("lru".to_string(), vec![3.0, 1.0, 2.0]),
            ("chirp".to_string(), vec![2.0, 0.5, 1.0]),
        ];
        let s = render_scurve(&series, 5, 30);
        assert!(s.contains("lru"));
        assert!(s.contains("chirp"));
        assert!(s.starts_with("max = 3.000"));
    }

    #[test]
    fn scurve_empty_input() {
        assert_eq!(render_scurve(&[], 5, 10), "(no data)\n");
    }

    #[test]
    fn density_counts_fall_in_bins() {
        let s = render_density("rate", &[0.1, 0.1, 0.9], 0.0, 1.0, 10);
        assert!(s.contains("mean = 0.3667"));
        assert!(s.lines().count() == 11);
    }
}
