//! The trace-driven, timing-approximate simulator core.
//!
//! For each instruction the engine charges one base cycle plus the
//! first-order penalties of the paper's model (§V): instruction and data
//! address translation through the TLB hierarchy (L2 hit latency and page
//! walks), cache-hierarchy latency beyond an L1 hit, and the branch-unit
//! misprediction penalty. Retired branches are forwarded to the L2 TLB
//! policy so history-based policies (GHRP, CHiRP) can maintain their
//! registers — mirroring commit-time history updates (§VI-E).

use crate::config::SimConfig;
use crate::metrics::RunResult;
use chirp_branch::BranchUnit;
use chirp_mem::MemoryHierarchy;
use chirp_telemetry::{EpochRow, EpochSampler};
use chirp_tlb::{TlbHierarchy, TlbReplacementPolicy, TlbStats, TranslationKind};
use chirp_trace::{
    vpn, InstrKind, PackedTrace, StreamError, TraceChunk, TraceRecord, TraceSource, TraceStream,
};

/// Records streamed per [`TraceChunk`] by the columnar run loop. Large
/// enough to amortise per-chunk bookkeeping, small enough that the chunk's
/// columns stay resident in L1/L2 cache while it is consumed.
pub(crate) const CHUNK_SIZE: usize = 4096;

/// The assembled machine model.
///
/// Generic over the L2 TLB replacement policy. The default parameter keeps
/// the dynamic-dispatch construction (`Simulator::new` with a boxed
/// policy) compiling unchanged; performance-sensitive callers use
/// [`Simulator::with_policy`] with a concrete type (for example
/// [`crate::PolicyDispatch`]) so the whole per-instruction chain
/// monomorphizes.
pub struct Simulator<P: TlbReplacementPolicy = Box<dyn TlbReplacementPolicy>> {
    mem: MemoryHierarchy,
    branch: BranchUnit,
    tlbs: TlbHierarchy<P>,
    cycles: u64,
    instructions: u64,
}

impl<P: TlbReplacementPolicy> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycles", &self.cycles)
            .field("instructions", &self.instructions)
            .finish()
    }
}

#[cfg(feature = "legacy-dyn")]
impl Simulator {
    /// Builds a simulator with a boxed (dynamically dispatched) L2 TLB
    /// replacement policy — the legacy constructor, kept as a
    /// compatibility shim over [`Simulator::with_policy`] behind the
    /// `legacy-dyn` feature. New code should use
    /// [`Simulator::with_policy`] with a concrete policy type (usually
    /// [`crate::PolicyDispatch`]); the boxed path costs a vtable call per
    /// policy touch and is kept only so the shim's equivalence test can
    /// keep proving the two dispatch strategies identical.
    pub fn new(config: &SimConfig, l2_policy: Box<dyn TlbReplacementPolicy>) -> Self {
        Simulator::with_policy(config, l2_policy)
    }
}

impl<P: TlbReplacementPolicy> Simulator<P> {
    /// Builds a simulator with the given L2 TLB replacement policy,
    /// monomorphized over the policy's concrete type.
    pub fn with_policy(config: &SimConfig, l2_policy: P) -> Self {
        Simulator {
            mem: MemoryHierarchy::new(config.mem),
            branch: BranchUnit::new(config.branch),
            tlbs: TlbHierarchy::new(config.tlb, l2_policy),
            cycles: 0,
            instructions: 0,
        }
    }

    /// Executes one instruction, accumulating cycles.
    #[inline]
    pub fn step(&mut self, rec: &TraceRecord) {
        self.step_decoded(rec, vpn(rec.pc), vpn(rec.effective_address));
    }

    /// [`step`](Self::step) with the instruction/data page numbers already
    /// computed. The lane engine batch-decodes each burst of records and
    /// derives both vpns in the decode pass, so the interleaved probe loop
    /// issues straight into the TLB arrays without per-record address
    /// arithmetic. `dvpn` is ignored for non-memory records (callers pass
    /// `vpn(0)` or any value).
    #[inline]
    pub(crate) fn step_decoded(&mut self, rec: &TraceRecord, ivpn: u64, dvpn: u64) {
        self.instructions += 1;
        let mut cycles = 1u64;

        // Instruction side: translate the fetch PC, then fetch.
        cycles += self.tlbs.translate(rec.pc, ivpn, TranslationKind::Instruction).cycles;
        let fetch_latency = self.mem.fetch(rec.pc);
        cycles += self.cache_penalty(fetch_latency);

        // Data side.
        if rec.kind.is_memory() {
            let ea = rec.effective_address;
            cycles += self.tlbs.translate(rec.pc, dvpn, TranslationKind::Data).cycles;
            let lat = match rec.kind {
                InstrKind::Load => self.mem.load(ea),
                InstrKind::Store => self.mem.store(ea),
                _ => unreachable!("is_memory() covers loads and stores only"),
            };
            cycles += self.cache_penalty(lat);
        }

        // Control flow: predict, train, and charge mispredictions.
        let penalty = self.branch.observe(rec);
        cycles += penalty;
        if penalty > 0 {
            self.tlbs.on_mispredict(rec.pc);
        }
        if let Some(class) = rec.kind.branch_class() {
            self.tlbs.on_branch(rec.pc, class, rec.taken);
        }

        self.cycles += cycles;
    }

    /// Latency beyond an L1 hit — an L1 hit is covered by the pipeline.
    #[inline]
    fn cache_penalty(&self, latency: u64) -> u64 {
        latency.saturating_sub(4)
    }

    /// Runs the whole trace, warming on the first `warmup_fraction` and
    /// measuring the rest.
    ///
    /// Generic over [`TraceSource`], so the same code path serves a flat
    /// `&[TraceRecord]`, a `Vec<TraceRecord>` and a
    /// [`chirp_trace::PackedTrace`] (the runner's shared in-memory form) —
    /// results are identical because the packed iterator yields the exact
    /// records that were packed.
    pub fn run<T: TraceSource + ?Sized>(&mut self, trace: &T, warmup_fraction: f64) -> RunResult {
        let len = trace.len();
        let warmup = ((len as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize;
        let mut records = trace.records();
        for rec in records.by_ref().take(warmup.min(len)) {
            self.step(&rec);
        }
        let window = self.window_start();
        for rec in records {
            self.step(&rec);
        }
        self.finish_result(window)
    }

    /// Runs a [`PackedTrace`] through the columnar hot loop: the trace is
    /// streamed in struct-of-arrays chunks ([`PackedTrace::chunks`]) so the
    /// loop reads the pc/kind/taken columns directly instead of
    /// materialising a full [`TraceRecord`] through the iterator chain for
    /// every instruction.
    ///
    /// Produces a [`RunResult`] bit-identical to
    /// [`run`](Self::run)`(trace, warmup_fraction)` — the chunked records
    /// are exactly the packed records in order, and warmup is cut at the
    /// same instruction index (mid-chunk via [`TraceChunk::split_at`]).
    pub fn run_columnar(&mut self, trace: &PackedTrace, warmup_fraction: f64) -> RunResult {
        let len = trace.len();
        let warmup = (((len as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize).min(len);
        let mut window = None;
        let mut pos = 0usize;
        for chunk in trace.chunks(CHUNK_SIZE) {
            if window.is_none() && warmup <= pos + chunk.len() {
                let (head, tail) = chunk.split_at(warmup - pos);
                self.step_chunk(&head);
                window = Some(self.window_start());
                self.step_chunk(&tail);
            } else {
                self.step_chunk(&chunk);
            }
            pos += chunk.len();
        }
        let window = window.unwrap_or_else(|| self.window_start());
        self.finish_result(window)
    }

    /// Steps every record of one columnar chunk.
    #[inline]
    fn step_chunk(&mut self, chunk: &TraceChunk<'_>) {
        for rec in chunk.records() {
            self.step(&rec);
        }
    }

    /// Runs a streamed trace, pulling bounded batches on demand — peak
    /// trace residency is O(chunk) instead of O(trace). Produces a
    /// [`RunResult`] bit-identical to [`run_columnar`](Self::run_columnar)
    /// on the materialized trace: batch boundaries carry no simulation
    /// meaning, and the warmup window is cut at the same absolute
    /// instruction index (computed from [`TraceStream::len`]).
    ///
    /// # Errors
    ///
    /// Propagates the stream's first error (decode, I/O, integrity);
    /// the simulator state is then mid-trace and the run must be retried
    /// on a fresh simulator.
    pub fn run_stream<S: TraceStream + ?Sized>(
        &mut self,
        stream: &mut S,
        warmup_fraction: f64,
    ) -> Result<RunResult, StreamError> {
        run_stream_units(std::slice::from_mut(self), stream, warmup_fraction)
            .map(|mut results| results.pop().expect("one simulator in, one result out"))
    }

    /// Runs the whole trace like [`run`](Self::run), additionally sampling
    /// telemetry counters every `epoch_instructions` measured instructions.
    ///
    /// Returns the identical [`RunResult`] that `run` would produce — the
    /// instrumentation is strictly observational: the per-epoch probes go
    /// through `&self` accessors (policy state, occupancy) and the
    /// dead-outcome scoreboard is shadow state on the L2 TLB that never
    /// feeds back into replacement decisions. The equivalence is pinned by
    /// a suite-level test in the runner.
    ///
    /// Epochs cover the measured window only (warmup is excluded, like the
    /// run totals); a trace whose measured length is not a multiple of the
    /// epoch size ends with one shorter row. Deltas follow the
    /// [`crate::telemetry::COUNTER_SCHEMA`] order; gauge 0 is L2 TLB
    /// occupancy at the epoch boundary.
    pub fn run_instrumented<T: TraceSource + ?Sized>(
        &mut self,
        trace: &T,
        warmup_fraction: f64,
        epoch_instructions: u64,
    ) -> (RunResult, Vec<EpochRow>) {
        self.tlbs.l2_mut().enable_outcome_tracking();
        let len = trace.len();
        let warmup = ((len as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize;
        let mut records = trace.records();
        for rec in records.by_ref().take(warmup.min(len)) {
            self.step(&rec);
        }
        let window = self.window_start();
        let mut sampler = EpochSampler::new(epoch_instructions, self.telemetry_counters());
        for rec in records {
            self.step(&rec);
            if sampler.tick() {
                let counters = self.telemetry_counters();
                sampler.sample(&counters, vec![self.tlbs.l2().occupancy()]);
            }
        }
        let counters = self.telemetry_counters();
        let rows = sampler.finish(&counters, vec![self.tlbs.l2().occupancy()]);
        (self.finish_result(window), rows)
    }

    /// Snapshot of machine state at the start of the measured window.
    pub(crate) fn window_start(&self) -> (u64, u64, TlbStats) {
        (self.cycles, self.instructions, self.tlbs.l2().stats())
    }

    /// Assembles the [`RunResult`] for the window opened by
    /// [`window_start`](Self::window_start).
    pub(crate) fn finish_result(
        &self,
        (cycles0, instructions0, stats0): (u64, u64, TlbStats),
    ) -> RunResult {
        let stats1 = self.tlbs.l2().stats();
        let measured = TlbStats {
            hits: stats1.hits - stats0.hits,
            misses: stats1.misses - stats0.misses,
            dead_evictions: stats1.dead_evictions - stats0.dead_evictions,
            cold_fills: stats1.cold_fills - stats0.cold_fills,
        };
        RunResult {
            policy: self.tlbs.l2().policy().name().to_string(),
            instructions: self.instructions - instructions0,
            cycles: self.cycles - cycles0,
            l2_tlb: measured,
            l2_accesses: measured.accesses(),
            prediction_table_accesses: self.tlbs.l2().policy().prediction_table_accesses(),
            l2_accesses_total: stats1.accesses(),
            efficiency: self.tlbs.l2().efficiency(),
        }
    }

    /// Absolute telemetry counter values, in
    /// [`crate::telemetry::COUNTER_SCHEMA`] order.
    fn telemetry_counters(&self) -> Vec<u64> {
        let l2 = self.tlbs.l2();
        let stats = l2.stats();
        let outcomes = l2.dead_outcomes();
        vec![
            self.cycles,
            stats.hits,
            stats.misses,
            stats.cold_fills,
            stats.dead_evictions,
            l2.policy().prediction_table_accesses(),
            outcomes.true_dead,
            outcomes.false_dead,
            outcomes.true_live,
            outcomes.false_live,
        ]
    }

    /// Total cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The TLB hierarchy (for experiment-specific inspection).
    pub fn tlbs(&self) -> &TlbHierarchy<P> {
        &self.tlbs
    }

    /// Branch unit statistics.
    pub fn branch_stats(&self) -> chirp_branch::BranchStats {
        self.branch.stats()
    }
}

/// Runs several simulators in lockstep over one streamed trace: each
/// pulled batch is stepped through every simulator before the next batch
/// is requested, so a whole benchmark's policy lineup shares a single
/// generation/decode pass and the trace is never materialised. Every
/// result is bit-identical to [`Simulator::run_columnar`] on the
/// materialized trace.
///
/// The warmup cut is computed once from [`TraceStream::len`] and applied
/// at the same absolute instruction index in every simulator (mid-batch
/// via [`TraceChunk::split_at`]). A stream that ends early (a generator
/// stopping short of its limit) simply closes the measured window at the
/// actual end, mirroring a short materialized trace.
///
/// # Errors
///
/// Propagates the stream's first error; all simulators are then mid-trace
/// and the batch of runs must be retried from scratch.
pub fn run_stream_units<P: TlbReplacementPolicy, S: TraceStream + ?Sized>(
    sims: &mut [Simulator<P>],
    stream: &mut S,
    warmup_fraction: f64,
) -> Result<Vec<RunResult>, StreamError> {
    let len = stream.len();
    let warmup = (((len as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize).min(len);
    let mut windows: Vec<Option<(u64, u64, TlbStats)>> = vec![None; sims.len()];
    let mut pos = 0usize;
    while let Some(batch) = stream.next_batch()? {
        for chunk in batch.chunks(CHUNK_SIZE) {
            for (sim, window) in sims.iter_mut().zip(windows.iter_mut()) {
                if window.is_none() && warmup <= pos + chunk.len() {
                    let (head, tail) = chunk.split_at(warmup - pos);
                    sim.step_chunk(&head);
                    *window = Some(sim.window_start());
                    sim.step_chunk(&tail);
                } else {
                    sim.step_chunk(&chunk);
                }
            }
            pos += chunk.len();
        }
    }
    Ok(sims
        .iter_mut()
        .zip(windows)
        .map(|(sim, window)| {
            let window = window.unwrap_or_else(|| sim.window_start());
            sim.finish_result(window)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PolicyKind;
    use chirp_trace::gen::{ContextCopy, SpecLoops, WorkloadGen};

    fn run(policy: PolicyKind, trace: &[TraceRecord]) -> RunResult {
        let config = SimConfig::default();
        let mut sim = Simulator::with_policy(&config, policy.build_dispatch(config.tlb.l2, 0));
        sim.run(trace, 0.5)
    }

    #[test]
    fn cycles_advance_and_ipc_is_sane() {
        let trace = SpecLoops::default().generate(50_000, 0);
        let r = run(PolicyKind::Lru, &trace);
        assert_eq!(r.instructions, 25_000);
        // This workload is deliberately memory-bound (cyclic 2048-page
        // footprint), so IPC is low but must stay within physical bounds.
        let ipc = r.ipc();
        assert!(ipc > 0.001 && ipc <= 1.0, "IPC {ipc} out of plausible range");
    }

    #[test]
    fn small_footprint_has_near_zero_mpki() {
        let g = SpecLoops { arrays: 1, pages_per_array: 16, ..Default::default() };
        let trace = g.generate(100_000, 0);
        let r = run(PolicyKind::Lru, &trace);
        assert!(r.mpki() < 0.5, "tiny working set must fit: MPKI {}", r.mpki());
    }

    #[test]
    fn thrashing_footprint_has_high_mpki() {
        let g = SpecLoops { arrays: 4, pages_per_array: 1024, ..Default::default() };
        let trace = g.generate(200_000, 0);
        let r = run(PolicyKind::Lru, &trace);
        assert!(r.mpki() > 1.0, "4096 cyclic pages must thrash LRU: MPKI {}", r.mpki());
    }

    #[test]
    fn determinism() {
        let trace = ContextCopy::default().generate(30_000, 3);
        let a = run(PolicyKind::Lru, &trace);
        let b = run(PolicyKind::Lru, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_run_matches_columnar_run() {
        let g = ContextCopy::default();
        let trace = g.generate_packed(40_000, 9);
        let config = SimConfig::default();
        for chunk in [1usize, 777, 4096, 100_000] {
            let mut columnar = Simulator::with_policy(
                &config,
                PolicyKind::Chirp(Default::default()).build_dispatch(config.tlb.l2, 0),
            );
            let want = columnar.run_columnar(&trace, 0.5);
            let mut streamed = Simulator::with_policy(
                &config,
                PolicyKind::Chirp(Default::default()).build_dispatch(config.tlb.l2, 0),
            );
            let mut stream = chirp_trace::MaterializedStream::new(&trace, chunk);
            let got = streamed.run_stream(&mut stream, 0.5).unwrap();
            assert_eq!(got, want, "chunk {chunk}");
        }
    }

    #[test]
    fn lockstep_stream_units_match_independent_runs() {
        let g = SpecLoops::default();
        let trace = g.generate_packed(30_000, 2);
        let config = SimConfig::default();
        let kinds = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Chirp(Default::default())];
        let mut sims: Vec<_> = kinds
            .iter()
            .map(|k| Simulator::with_policy(&config, k.build_dispatch(config.tlb.l2, 0)))
            .collect();
        let mut stream = chirp_trace::MaterializedStream::new(&trace, 999);
        let got = run_stream_units(&mut sims, &mut stream, 0.5).unwrap();
        for (kind, streamed) in kinds.iter().zip(&got) {
            let mut solo = Simulator::with_policy(&config, kind.build_dispatch(config.tlb.l2, 0));
            assert_eq!(streamed, &solo.run_columnar(&trace, 0.5), "{kind:?}");
        }
    }

    #[test]
    fn walk_penalty_scales_cycles() {
        let g = SpecLoops { arrays: 4, pages_per_array: 1024, ..Default::default() };
        let trace = g.generate(100_000, 0);
        let slow_cfg = SimConfig::default().with_walk_penalty(340);
        let fast_cfg = SimConfig::default().with_walk_penalty(20);
        let mut slow =
            Simulator::with_policy(&slow_cfg, PolicyKind::Lru.build_dispatch(slow_cfg.tlb.l2, 0));
        let mut fast =
            Simulator::with_policy(&fast_cfg, PolicyKind::Lru.build_dispatch(fast_cfg.tlb.l2, 0));
        let rs = slow.run(&trace, 0.5);
        let rf = fast.run(&trace, 0.5);
        assert!(rs.cycles > rf.cycles, "larger walk penalty must cost cycles");
    }
}
