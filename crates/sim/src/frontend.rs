//! Factored execution: one policy-invariant front-end pass, N tiny
//! L2-TLB replay back-ends.
//!
//! In this trace-driven in-order model, almost nothing the simulator
//! computes depends on the L2 TLB replacement policy. The branch unit,
//! the cache hierarchy and the private true-LRU L1 TLBs take no policy
//! feedback, so for a given trace the sequence of accesses that miss the
//! L1s and reach the unified L2 — `(pc, vpn, kind)` in order, merged
//! with the retired-branch and misprediction events — is identical for
//! every lineup policy. Even CHiRP's 16-bit signature is a pure function
//! of that invariant stream (paper §IV-B). Only four things differ per
//! policy: L2 hit/miss outcomes, victim choices, the page walks (and
//! PSC state) the misses trigger, and the cycles those walks add.
//!
//! The [`FrontEnd`] therefore walks the trace once and emits a compact
//! [`EventSegment`] stream — per L2 access: vpn, page class
//! (instruction/data), precomputed CHiRP signature and set index; per
//! segment: the instruction count and the policy-invariant cycle total
//! (base + cache penalties + branch penalties + L2-hit latencies).
//! Each [`Backend`] then replays only `L2Tlb::access_at` + walker +
//! residual cycle accounting over that stream. Cycle totals are exact
//! `u64` sums, so splitting them into an invariant part (summed by the
//! front end) and a per-backend walk part reassociates nothing:
//! [`Backend::finish_result`] is bit-identical to
//! `Simulator::run_columnar`, pinned by `tests/equivalence_matrix.rs`.
//!
//! Decoding is burst-structured like the lane engine: 64 records are
//! expanded at a time, page numbers are derived in one pass over the
//! pc/ea columns, and the signature *finalisation* (the multiply/
//! shift/xor of `hash16`) plus the set-index masking run as batched
//! word-parallel passes over the burst's new events — only the history
//! folds themselves stay sequential, because each access's signature
//! depends on the path history left by the previous one.

use crate::config::SimConfig;
use crate::engine::CHUNK_SIZE;
use crate::metrics::RunResult;
use chirp_branch::BranchUnit;
use chirp_core::signature::hash16;
use chirp_core::{ChirpConfig, SignatureBuilder};
use chirp_mem::MemoryHierarchy;
use chirp_tlb::{
    L1FrontEnd, L2Tlb, PageWalker, ReplayHints, TlbAccess, TlbReplacementPolicy, TlbStats,
    TranslationKind,
};
use chirp_trace::{
    vpn, BranchClass, DecodedBlock, InstrKind, PackedTrace, StreamError, TraceChunk, TraceStream,
};

/// Records decoded per front-end burst (mirrors the lane engine's burst).
const BURST: usize = 64;

/// Access events replayed per backend before the next backend takes the
/// same block — keeps every backend's L2 metadata cache-resident while
/// still letting their independent probe chains overlap.
const REPLAY_BLOCK: usize = 256;

/// Control-event kinds, packed into `ctl_kind` (low 2 bits; bit 6 marks
/// a misprediction, bit 7 the taken flag of a branch).
const CTL_COND: u8 = 0;
const CTL_UNCOND_INDIRECT: u8 = 1;
const CTL_UNCOND_DIRECT: u8 = 2;
const CTL_MISPREDICT: u8 = 1 << 6;
const CTL_TAKEN: u8 = 1 << 7;

/// One policy-invariant segment of the L2-TLB event stream, in
/// struct-of-arrays form.
///
/// A segment covers a contiguous run of instructions (the warmup half,
/// the measured half, or one streamed chunk). Access events are the L1
/// misses that reach the unified L2, in program order; control events
/// (retired branches, mispredictions) carry the number of access events
/// emitted before them, so replay can interleave the two streams exactly
/// as the full simulator would.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventSegment {
    /// Per access event: the PC of the responsible instruction.
    acc_pc: Vec<u64>,
    /// Per access event: the virtual page number looked up.
    acc_vpn: Vec<u64>,
    /// Per access event: the precomputed L2 set index
    /// (`geometry.set_of(vpn)`), batch-masked per burst.
    acc_set: Vec<u32>,
    /// Per access event: the precomputed CHiRP signature under the
    /// stream's signature configuration, batch-hashed per burst.
    acc_sig: Vec<u16>,
    /// Per access event: the page class (0 = instruction, 1 = data).
    acc_kind: Vec<u8>,
    /// Per control event: how many access events precede it.
    ctl_after: Vec<u32>,
    /// Per control event: the branch PC.
    ctl_pc: Vec<u64>,
    /// Per control event: kind bits (`CTL_*`).
    ctl_kind: Vec<u8>,
    /// Instructions covered by this segment.
    instructions: u64,
    /// Policy-invariant cycles of this segment: base + cache penalties +
    /// branch penalties + one L2-hit latency per access event. Walk
    /// cycles are the backends' business.
    invariant_cycles: u64,
}

impl EventSegment {
    /// Number of L2 access events in the segment.
    pub fn access_events(&self) -> usize {
        self.acc_pc.len()
    }

    /// Number of control (branch/mispredict) events in the segment.
    pub fn control_events(&self) -> usize {
        self.ctl_pc.len()
    }

    /// Instructions covered by the segment.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Empties the segment for reuse, keeping its allocations.
    pub fn clear(&mut self) {
        self.acc_pc.clear();
        self.acc_vpn.clear();
        self.acc_set.clear();
        self.acc_sig.clear();
        self.acc_kind.clear();
        self.ctl_after.clear();
        self.ctl_pc.clear();
        self.ctl_kind.clear();
        self.instructions = 0;
        self.invariant_cycles = 0;
    }

    /// Serialises every column little-endian, length-prefixed — the
    /// byte-identity witness the policy-invariance proptest compares.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let len = |out: &mut Vec<u8>, n: usize| out.extend((n as u64).to_le_bytes());
        len(&mut out, self.acc_pc.len());
        for &v in &self.acc_pc {
            out.extend(v.to_le_bytes());
        }
        for &v in &self.acc_vpn {
            out.extend(v.to_le_bytes());
        }
        for &v in &self.acc_set {
            out.extend(v.to_le_bytes());
        }
        for &v in &self.acc_sig {
            out.extend(v.to_le_bytes());
        }
        out.extend(&self.acc_kind);
        len(&mut out, self.ctl_after.len());
        for &v in &self.ctl_after {
            out.extend(v.to_le_bytes());
        }
        for &v in &self.ctl_pc {
            out.extend(v.to_le_bytes());
        }
        out.extend(&self.ctl_kind);
        out.extend(self.instructions.to_le_bytes());
        out.extend(self.invariant_cycles.to_le_bytes());
        out
    }
}

/// The event stream of one materialized trace, split at the warmup
/// boundary into the two segments [`Backend::finish_result`] needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactoredTrace {
    /// Events of the warmup prefix (may be empty).
    pub warmup: EventSegment,
    /// Events of the measured suffix (may be empty).
    pub measured: EventSegment,
    /// Identity of the signature configuration `acc_sig` was computed
    /// under ([`ChirpConfig::signature_code`]).
    pub sig_code: u64,
}

impl FactoredTrace {
    /// Runs the front end over the whole trace, cutting the warmup
    /// boundary at the exact instruction index `run_columnar` uses.
    pub fn build(
        config: &SimConfig,
        trace: &PackedTrace,
        warmup_fraction: f64,
        sig_config: &ChirpConfig,
    ) -> FactoredTrace {
        let len = trace.len();
        let warmup = (((len as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize).min(len);
        let mut fe = FrontEnd::new(config, sig_config);
        let mut warm = EventSegment::default();
        let mut meas = EventSegment::default();
        let mut in_measured = false;
        let mut pos = 0usize;
        for chunk in trace.chunks(CHUNK_SIZE) {
            if !in_measured && warmup <= pos + chunk.len() {
                let (head, tail) = chunk.split_at(warmup - pos);
                fe.process_chunk(&head, &mut warm);
                in_measured = true;
                fe.process_chunk(&tail, &mut meas);
            } else if in_measured {
                fe.process_chunk(&chunk, &mut meas);
            } else {
                fe.process_chunk(&chunk, &mut warm);
            }
            pos += chunk.len();
        }
        FactoredTrace { warmup: warm, measured: meas, sig_code: sig_config.signature_code() }
    }

    /// Total L2 access events across both segments.
    pub fn access_events(&self) -> usize {
        self.warmup.access_events() + self.measured.access_events()
    }

    /// Total control events across both segments.
    pub fn control_events(&self) -> usize {
        self.warmup.control_events() + self.measured.control_events()
    }

    /// Total instructions across both segments.
    pub fn instructions(&self) -> u64 {
        self.warmup.instructions() + self.measured.instructions()
    }

    /// Concatenated [`EventSegment::wire_bytes`] of both segments plus
    /// the signature code.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut out = self.warmup.wire_bytes();
        out.extend(self.measured.wire_bytes());
        out.extend(self.sig_code.to_le_bytes());
        out
    }
}

/// The policy-invariant half of the machine: caches, branch unit, L1
/// TLBs and one [`SignatureBuilder`] evolving under the stream's
/// signature configuration.
pub struct FrontEnd {
    mem: MemoryHierarchy,
    branch: BranchUnit,
    l1: L1FrontEnd,
    sigs: SignatureBuilder,
    /// `wrong_path_pollution` of the stream's signature configuration:
    /// the front end folds the same deterministic pseudo wrong-path
    /// events into its histories that a matching CHiRP back-end would.
    pollution: u32,
    l2_hit_latency: u64,
    /// `sets - 1` of the L2 geometry, for the batched set-index pass.
    set_mask: u64,
    /// Decoded columns for the in-flight burst.
    block: DecodedBlock,
    ivpns: Vec<u64>,
    dvpns: Vec<u64>,
    /// 64-bit pre-hash signature compositions of the burst's new access
    /// events, finalised in one batched `hash16` pass per burst.
    pre: Vec<u64>,
}

impl FrontEnd {
    /// Builds the front end for `config`, computing signatures under
    /// `sig_config`.
    pub fn new(config: &SimConfig, sig_config: &ChirpConfig) -> FrontEnd {
        FrontEnd {
            mem: MemoryHierarchy::new(config.mem),
            branch: BranchUnit::new(config.branch),
            l1: L1FrontEnd::new(&config.tlb),
            sigs: SignatureBuilder::new(sig_config),
            pollution: sig_config.wrong_path_pollution,
            l2_hit_latency: config.tlb.l2_hit_latency,
            set_mask: (config.tlb.l2.sets() - 1) as u64,
            block: DecodedBlock::with_capacity(BURST),
            ivpns: Vec::with_capacity(BURST),
            dvpns: Vec::with_capacity(BURST),
            pre: Vec::with_capacity(2 * BURST),
        }
    }

    /// Feeds one trace chunk through the front end, appending its events
    /// to `seg`.
    pub fn process_chunk(&mut self, chunk: &TraceChunk<'_>, seg: &mut EventSegment) {
        let mut cursor = chunk.cursor();
        while cursor.remaining() > 0 {
            let burst = cursor.remaining().min(BURST);
            let n = cursor.decode_into(&mut self.block, burst);
            debug_assert_eq!(n, burst);
            // Batched page-number derivation over the burst's columns.
            self.ivpns.clear();
            self.ivpns.extend(self.block.pcs.iter().map(|&pc| vpn(pc)));
            self.dvpns.clear();
            self.dvpns.extend(self.block.eas.iter().map(|&ea| vpn(ea)));
            let acc_base = seg.acc_pc.len();
            self.pre.clear();
            for k in 0..burst {
                self.step_record(k, seg);
            }
            // Batched finalisation of the burst's new access events: the
            // multiply/shift/xor of `hash16` and the set masking are
            // data-independent across events, so these two passes
            // auto-vectorise where the in-loop form could not.
            debug_assert_eq!(seg.acc_sig.len(), acc_base);
            seg.acc_sig.extend(self.pre.iter().map(|&p| hash16(p)));
            seg.acc_set.extend(seg.acc_vpn[acc_base..].iter().map(|&v| (v & self.set_mask) as u32));
        }
    }

    /// Mirrors `Simulator::step_decoded` minus the L2/walker: same event
    /// order (i-access, d-access, mispredict, branch), same cycle terms
    /// except the walk.
    #[inline]
    fn step_record(&mut self, k: usize, seg: &mut EventSegment) {
        let rec = self.block.record(k);
        let mut cycles = 1u64;

        if !self.l1.hit(self.ivpns[k], TranslationKind::Instruction) {
            self.emit_access(rec.pc, self.ivpns[k], 0, seg);
            cycles += self.l2_hit_latency;
        }
        cycles += self.mem.fetch(rec.pc).saturating_sub(4);

        if rec.kind.is_memory() {
            let ea = rec.effective_address;
            if !self.l1.hit(self.dvpns[k], TranslationKind::Data) {
                self.emit_access(rec.pc, self.dvpns[k], 1, seg);
                cycles += self.l2_hit_latency;
            }
            let lat = match rec.kind {
                InstrKind::Load => self.mem.load(ea),
                InstrKind::Store => self.mem.store(ea),
                _ => unreachable!("is_memory() covers loads and stores only"),
            };
            cycles += lat.saturating_sub(4);
        }

        let penalty = self.branch.observe(&rec);
        cycles += penalty;
        if penalty > 0 {
            self.emit_control(CTL_MISPREDICT, rec.pc, seg);
            // Fold the same pseudo wrong-path events a matching CHiRP
            // back-end would (its `on_mispredict`), so the precomputed
            // signatures remain exact under pollution configurations.
            for i in 0..self.pollution {
                let bogus = rec.pc ^ (u64::from(i) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                self.sigs.record_branch(bogus, BranchClass::Conditional);
                self.sigs.record_access(bogus);
            }
        }
        if let Some(class) = rec.kind.branch_class() {
            let code = match class {
                BranchClass::Conditional => CTL_COND,
                BranchClass::UnconditionalIndirect => CTL_UNCOND_INDIRECT,
                BranchClass::UnconditionalDirect => CTL_UNCOND_DIRECT,
            } | if rec.taken { CTL_TAKEN } else { 0 };
            self.emit_control(code, rec.pc, seg);
            self.sigs.record_branch(rec.pc, class);
        }

        seg.instructions += 1;
        seg.invariant_cycles += cycles;
    }

    /// Emits one L2 access event. The signature composition is read
    /// *before* the access is folded into the path history — the order
    /// CHiRP's `on_hit`/`on_fill` observe. Set index and final hash are
    /// filled by the burst's batched pass.
    #[inline]
    fn emit_access(&mut self, pc: u64, page: u64, kind: u8, seg: &mut EventSegment) {
        seg.acc_pc.push(pc);
        seg.acc_vpn.push(page);
        seg.acc_kind.push(kind);
        self.pre.push(self.sigs.compose(pc));
        self.sigs.record_access(pc);
    }

    #[inline]
    fn emit_control(&mut self, code: u8, pc: u64, seg: &mut EventSegment) {
        seg.ctl_after.push(seg.acc_pc.len() as u32);
        seg.ctl_pc.push(pc);
        seg.ctl_kind.push(code);
    }

    /// L1 statistics: (i-TLB hits, i-TLB misses, d-TLB hits, d-TLB
    /// misses) — identical to the full hierarchy's, since the L1s are
    /// policy-free.
    pub fn l1_stats(&self) -> (u64, u64, u64, u64) {
        self.l1.l1_stats()
    }
}

/// The per-policy half: the unified L2 TLB, its replacement policy, the
/// page walker (and PSC) whose state depends on the policy's miss
/// sequence, and the residual cycle accounting.
pub struct Backend<P: TlbReplacementPolicy> {
    l2: L2Tlb<P>,
    walker: PageWalker,
    hints: ReplayHints,
    cycles: u64,
    instructions: u64,
}

impl<P: TlbReplacementPolicy> Backend<P> {
    /// Builds a backend for `policy`. `sig_code` identifies the stream's
    /// signature configuration; the policy's
    /// [`TlbReplacementPolicy::replay_hints`] decide which control
    /// events it needs and whether it consumes precomputed signatures.
    pub fn new(config: &SimConfig, policy: P, sig_code: u64) -> Backend<P> {
        let mut walker = PageWalker::new(config.tlb.walk_penalty);
        if let Some((entries, hit_penalty)) = config.tlb.psc {
            walker = walker.with_psc(entries, hit_penalty);
        }
        let hints = policy.replay_hints(sig_code);
        Backend { l2: L2Tlb::new(config.tlb.l2, policy), walker, hints, cycles: 0, instructions: 0 }
    }

    /// Replays access events `range` of `seg`, draining control events
    /// interleaved before each access. `ctl` is this backend's control
    /// cursor into the segment.
    #[inline]
    fn replay_range(&mut self, seg: &EventSegment, range: std::ops::Range<usize>, ctl: &mut usize) {
        for i in range {
            while *ctl < seg.ctl_after.len() && seg.ctl_after[*ctl] as usize <= i {
                self.apply_control(seg, *ctl);
                *ctl += 1;
            }
            if self.hints.accepts_signatures {
                self.l2.supply_signature(seg.acc_sig[i]);
            }
            let acc = TlbAccess {
                pc: seg.acc_pc[i],
                vpn: seg.acc_vpn[i],
                kind: if seg.acc_kind[i] == 0 {
                    TranslationKind::Instruction
                } else {
                    TranslationKind::Data
                },
                set: seg.acc_set[i] as usize,
            };
            let outcome = self.l2.access_at(acc);
            if !outcome.hit {
                self.cycles += self.walker.walk(acc.vpn);
            }
        }
    }

    #[inline]
    fn apply_control(&mut self, seg: &EventSegment, i: usize) {
        let kind = seg.ctl_kind[i];
        if kind & CTL_MISPREDICT != 0 {
            if self.hints.needs_mispredicts {
                self.l2.on_mispredict(seg.ctl_pc[i]);
            }
        } else if self.hints.needs_branches {
            let class = match kind & 0x3 {
                CTL_COND => BranchClass::Conditional,
                CTL_UNCOND_INDIRECT => BranchClass::UnconditionalIndirect,
                _ => BranchClass::UnconditionalDirect,
            };
            self.l2.on_branch(seg.ctl_pc[i], class, kind & CTL_TAKEN != 0);
        }
    }

    /// Finishes a segment after its access events ran: drains trailing
    /// control events and adds the segment's invariant totals.
    fn finish_segment(&mut self, seg: &EventSegment, ctl: &mut usize) {
        while *ctl < seg.ctl_after.len() {
            self.apply_control(seg, *ctl);
            *ctl += 1;
        }
        self.cycles += seg.invariant_cycles;
        self.instructions += seg.instructions;
    }

    /// Replays one whole segment.
    pub fn replay(&mut self, seg: &EventSegment) {
        let mut ctl = 0usize;
        self.replay_range(seg, 0..seg.access_events(), &mut ctl);
        self.finish_segment(seg, &mut ctl);
    }

    /// Snapshot of machine state at the start of the measured window
    /// (mirrors `Simulator::window_start`).
    pub fn window_start(&self) -> (u64, u64, TlbStats) {
        (self.cycles, self.instructions, self.l2.stats())
    }

    /// Assembles the [`RunResult`] for the window opened by
    /// [`window_start`](Self::window_start) — the same field recipe as
    /// `Simulator::finish_result`.
    pub fn finish_result(
        &self,
        (cycles0, instructions0, stats0): (u64, u64, TlbStats),
    ) -> RunResult {
        let stats1 = self.l2.stats();
        let measured = TlbStats {
            hits: stats1.hits - stats0.hits,
            misses: stats1.misses - stats0.misses,
            dead_evictions: stats1.dead_evictions - stats0.dead_evictions,
            cold_fills: stats1.cold_fills - stats0.cold_fills,
        };
        RunResult {
            policy: self.l2.policy().name().to_string(),
            instructions: self.instructions - instructions0,
            cycles: self.cycles - cycles0,
            l2_tlb: measured,
            l2_accesses: measured.accesses(),
            prediction_table_accesses: self.l2.policy().prediction_table_accesses(),
            l2_accesses_total: stats1.accesses(),
            efficiency: self.l2.efficiency(),
        }
    }

    /// The backend's L2 TLB (stats, efficiency, policy state).
    pub fn l2(&self) -> &L2Tlb<P> {
        &self.l2
    }
}

/// Replays one segment through every backend, block-interleaved: each
/// backend replays `REPLAY_BLOCK` (256) access events before the next
/// backend takes the same block, so all backends' L2 state stays
/// cache-resident and their independent probe chains overlap.
pub fn replay_segment_group<P: TlbReplacementPolicy>(
    backends: &mut [Backend<P>],
    seg: &EventSegment,
) {
    let n = seg.access_events();
    let mut cursors = vec![0usize; backends.len()];
    let mut start = 0usize;
    while start < n {
        let end = (start + REPLAY_BLOCK).min(n);
        for (backend, ctl) in backends.iter_mut().zip(cursors.iter_mut()) {
            backend.replay_range(seg, start..end, ctl);
        }
        start = end;
    }
    for (backend, ctl) in backends.iter_mut().zip(cursors.iter_mut()) {
        backend.finish_segment(seg, ctl);
    }
}

/// Replays an already-built [`FactoredTrace`] through one backend per
/// policy. Returns `(result, backend)` pairs in input order, each
/// bit-identical to `Simulator::run_columnar` of the same unit.
pub fn replay_factored<P: TlbReplacementPolicy>(
    config: &SimConfig,
    trace: &FactoredTrace,
    policies: Vec<P>,
) -> Vec<(RunResult, Backend<P>)> {
    let mut backends: Vec<Backend<P>> =
        policies.into_iter().map(|p| Backend::new(config, p, trace.sig_code)).collect();
    replay_segment_group(&mut backends, &trace.warmup);
    let windows: Vec<_> = backends.iter().map(|b| b.window_start()).collect();
    replay_segment_group(&mut backends, &trace.measured);
    backends
        .into_iter()
        .zip(windows)
        .map(|(backend, window)| (backend.finish_result(window), backend))
        .collect()
}

/// One front-end pass + N policy back-ends over a materialized trace:
/// the factored equivalent of running `Simulator::run_columnar` once per
/// policy. The signature configuration of the group's first CHiRP
/// member (else the default) drives the precomputed signatures; every
/// policy whose own configuration does not match simply replays with its
/// local registers ([`TlbReplacementPolicy::replay_hints`]).
pub fn run_factored_group<P: TlbReplacementPolicy>(
    config: &SimConfig,
    trace: &PackedTrace,
    warmup_fraction: f64,
    sig_config: &ChirpConfig,
    policies: Vec<P>,
) -> Vec<(RunResult, Backend<P>)> {
    let factored = FactoredTrace::build(config, trace, warmup_fraction, sig_config);
    replay_factored(config, &factored, policies)
}

/// The streamed form of [`run_factored_group`]: pulls bounded batches,
/// runs the front end over each chunk into a reused [`EventSegment`],
/// and replays it through every backend before the next chunk is
/// decoded — peak event residency is O(chunk), and results are
/// bit-identical to [`crate::run_stream_units`] over the same stream.
///
/// # Errors
///
/// Propagates the stream's first error; all backends are then mid-trace
/// and the batch of runs must be retried from scratch.
pub fn run_stream_factored<P: TlbReplacementPolicy, S: TraceStream + ?Sized>(
    config: &SimConfig,
    sig_config: &ChirpConfig,
    policies: Vec<P>,
    stream: &mut S,
    warmup_fraction: f64,
) -> Result<Vec<(RunResult, Backend<P>)>, StreamError> {
    let len = stream.len();
    let warmup = (((len as f64) * warmup_fraction.clamp(0.0, 1.0)) as usize).min(len);
    let sig_code = sig_config.signature_code();
    let mut fe = FrontEnd::new(config, sig_config);
    let mut backends: Vec<Backend<P>> =
        policies.into_iter().map(|p| Backend::new(config, p, sig_code)).collect();
    let mut windows: Vec<(u64, u64, TlbStats)> = Vec::with_capacity(backends.len());
    let mut window_open = false;
    let mut seg = EventSegment::default();
    let mut pos = 0usize;
    while let Some(batch) = stream.next_batch()? {
        for chunk in batch.chunks(CHUNK_SIZE) {
            if !window_open && warmup <= pos + chunk.len() {
                let (head, tail) = chunk.split_at(warmup - pos);
                seg.clear();
                fe.process_chunk(&head, &mut seg);
                replay_segment_group(&mut backends, &seg);
                windows.extend(backends.iter().map(|b| b.window_start()));
                window_open = true;
                seg.clear();
                fe.process_chunk(&tail, &mut seg);
                replay_segment_group(&mut backends, &seg);
            } else {
                seg.clear();
                fe.process_chunk(&chunk, &mut seg);
                replay_segment_group(&mut backends, &seg);
            }
            pos += chunk.len();
        }
    }
    if !window_open {
        windows.extend(backends.iter().map(|b| b.window_start()));
    }
    Ok(backends
        .into_iter()
        .zip(windows)
        .map(|(backend, window)| (backend.finish_result(window), backend))
        .collect())
}

/// Picks the signature configuration a group's front end computes under:
/// the first CHiRP member's (so the common lineup precomputes exactly
/// the signatures its headline policy needs), else the default.
pub fn group_sig_config<'a, I>(kinds: I) -> ChirpConfig
where
    I: IntoIterator<Item = &'a crate::PolicyKind>,
{
    kinds
        .into_iter()
        .find_map(|k| match k {
            crate::PolicyKind::Chirp(c) => Some(*c),
            _ => None,
        })
        .unwrap_or_default()
}
