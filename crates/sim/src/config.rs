//! Simulation configuration (paper Table II).

use chirp_branch::BranchConfig;
use chirp_mem::HierarchyConfig;
use chirp_tlb::TlbHierarchyConfig;
use serde::{Deserialize, Serialize};

/// Full simulator configuration. Defaults reproduce Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cache hierarchy and DRAM.
    pub mem: HierarchyConfig,
    /// Branch prediction unit.
    pub branch: BranchConfig,
    /// TLB hierarchy (the structure under study).
    pub tlb: TlbHierarchyConfig,
    /// Fraction of the trace used to warm structures before measuring
    /// (the paper warms on the first half, §V).
    pub warmup_fraction: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem: HierarchyConfig::default(),
            branch: BranchConfig::default(),
            tlb: TlbHierarchyConfig::default(),
            warmup_fraction: 0.5,
        }
    }
}

impl SimConfig {
    /// A configuration with the given page-walk penalty (Figure 10 sweep).
    pub fn with_walk_penalty(mut self, penalty: u64) -> Self {
        self.tlb.walk_penalty = penalty;
        self
    }

    /// Renders the Table II parameter listing.
    pub fn render_table_ii(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| out.push_str(&format!("{k:<22} {v}\n"));
        row(
            "L1 i-Cache",
            format!(
                "{}KB, {} way, {} cycles",
                self.mem.l1i.size_bytes >> 10,
                self.mem.l1i.ways,
                self.mem.l1i.hit_latency
            ),
        );
        row(
            "L1 d-Cache",
            format!(
                "{}KB, {} way, {} cycles",
                self.mem.l1d.size_bytes >> 10,
                self.mem.l1d.ways,
                self.mem.l1d.hit_latency
            ),
        );
        row(
            "L2 Unified Cache",
            format!(
                "{}KB, {} way, {} cycles",
                self.mem.l2.size_bytes >> 10,
                self.mem.l2.ways,
                self.mem.l2.hit_latency
            ),
        );
        row(
            "L3 Unified Cache",
            format!(
                "{}MB, {} way, {} cycles",
                self.mem.l3.size_bytes >> 20,
                self.mem.l3.ways,
                self.mem.l3.hit_latency
            ),
        );
        row("DRAM", format!("{} cycles", self.mem.dram_latency));
        row(
            "Branch Predictor",
            format!(
                "Hashed perceptron, {} entry BTB, {} cycle miss penalty",
                self.branch.btb_entries, self.branch.mispredict_penalty
            ),
        );
        row("L1 i-TLB", format!("{} entry, {} way", self.tlb.l1i.entries, self.tlb.l1i.ways));
        row("L1 d-TLB", format!("{} entry, {} way", self.tlb.l1d.entries, self.tlb.l1d.ways));
        row(
            "L2 Unified TLB",
            format!(
                "{} entries, {} way, {} cycle hit latency, {} cycle miss penalty",
                self.tlb.l2.entries,
                self.tlb.l2.ways,
                self.tlb.l2_hit_latency,
                self.tlb.walk_penalty
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = SimConfig::default();
        assert_eq!(c.mem.l1i.size_bytes, 64 << 10);
        assert_eq!(c.branch.btb_entries, 4096);
        assert_eq!(c.branch.mispredict_penalty, 20);
        assert_eq!(c.tlb.l2.entries, 1024);
        assert_eq!(c.tlb.l2.ways, 8);
        assert_eq!(c.tlb.l2_hit_latency, 8);
        assert_eq!(c.tlb.walk_penalty, 150);
        assert!((c.warmup_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn walk_penalty_override() {
        let c = SimConfig::default().with_walk_penalty(320);
        assert_eq!(c.tlb.walk_penalty, 320);
    }

    #[test]
    fn table_ii_rendering_lists_all_components() {
        let text = SimConfig::default().render_table_ii();
        for needle in
            ["L1 i-Cache", "L2 Unified Cache", "DRAM", "Branch Predictor", "L2 Unified TLB"]
        {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert!(text.contains("1024 entries, 8 way"));
    }
}
