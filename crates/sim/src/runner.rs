//! Parallel suite runner: simulates every benchmark under every policy,
//! spreading benchmarks over worker threads.

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::metrics::RunResult;
use crate::registry::PolicyKind;
use chirp_trace::suite::BenchmarkSpec;
use chirp_trace::Category;
use crossbeam::channel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Runner parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Instructions generated (and simulated) per benchmark.
    pub instructions: usize,
    /// Worker threads.
    pub threads: usize,
    /// Simulator configuration shared by all runs.
    pub sim: SimConfig,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            instructions: 1_000_000,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            sim: SimConfig::default(),
        }
    }
}

/// One (benchmark × policy) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Benchmark category.
    pub category: Category,
    /// The measured result (policy name inside).
    pub result: RunResult,
}

/// Runs `policies` over `suite` in parallel. Each worker generates a
/// benchmark's trace once and reuses it for every policy, so results are
/// directly comparable. Output order matches `suite` × `policies`.
pub fn run_suite(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
) -> Vec<BenchRun> {
    let results: Mutex<Vec<Option<Vec<BenchRun>>>> = Mutex::new(vec![None; suite.len()]);
    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..suite.len() {
        tx.send(i).expect("channel open");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1) {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let bench = &suite[i];
                    let trace = bench.generate(config.instructions);
                    let mut runs = Vec::with_capacity(policies.len());
                    for policy in policies {
                        let mut sim = Simulator::new(
                            &config.sim,
                            policy.build(config.sim.tlb.l2, bench.seed),
                        );
                        let result = sim.run(&trace, config.sim.warmup_fraction);
                        runs.push(BenchRun {
                            benchmark: bench.name.clone(),
                            category: bench.category,
                            result,
                        });
                    }
                    results.lock()[i] = Some(runs);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .flat_map(|r| r.expect("every benchmark was processed"))
        .collect()
}

/// Groups per-policy results for one benchmark out of a flat `run_suite`
/// output: returns, per benchmark (suite order), the runs in policy order.
pub fn group_by_benchmark(runs: &[BenchRun], policies: usize) -> Vec<&[BenchRun]> {
    assert!(policies > 0 && runs.len().is_multiple_of(policies), "ragged run matrix");
    runs.chunks(policies).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn runs_every_benchmark_under_every_policy() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip];
        let config = RunnerConfig { instructions: 20_000, threads: 2, ..Default::default() };
        let runs = run_suite(&suite, &policies, &config);
        assert_eq!(runs.len(), 8);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.benchmark, suite[i / 2].name);
            assert_eq!(run.result.policy, policies[i % 2].name());
            assert!(run.result.instructions > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru];
        let serial = RunnerConfig { instructions: 10_000, threads: 1, ..Default::default() };
        let parallel = RunnerConfig { instructions: 10_000, threads: 4, ..Default::default() };
        assert_eq!(run_suite(&suite, &policies, &serial), run_suite(&suite, &policies, &parallel));
    }

    #[test]
    fn grouping_slices_by_policy_count() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let config = RunnerConfig { instructions: 5_000, threads: 2, ..Default::default() };
        let runs = run_suite(&suite, &policies, &config);
        let grouped = group_by_benchmark(&runs, 2);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0][0].benchmark, grouped[0][1].benchmark);
    }
}
