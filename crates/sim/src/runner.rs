//! Parallel suite runner: simulates every benchmark under every policy
//! with (benchmark × policy)-grained work units.
//!
//! [`run_suite`] always simulates everything; [`run_suite_cached`] fronts
//! it with a `chirp-store` directory and only simulates (benchmark ×
//! policy) pairs whose results are not already in the run ledger, pulling
//! traces from the content-addressed archive instead of regenerating them.
//!
//! Both paths run on the scheduler in [`crate::sched`]: traces live in
//! packed struct-of-arrays form ([`chirp_trace::PackedTrace`], ~13 bytes
//! per record vs 40 flat), are shared behind an `Arc` by every policy
//! simulating them, are dropped as soon as their last policy finishes,
//! and [`RunnerConfig::mem_budget`] caps the packed bytes in flight. On
//! the cached path the archive mutex is held only for index bookkeeping —
//! decode, generation and encode all run outside it, so workers needing
//! different traces fetch concurrently.

use crate::config::SimConfig;
use crate::engine::{run_stream_units, Simulator};
use crate::frontend::{group_sig_config, run_factored_group, run_stream_factored};
use crate::lanes::{run_columnar_lanes, LaneUnit};
use crate::metrics::RunResult;
use crate::registry::{PolicyDispatch, PolicyKind};
use crate::sched::{run_streamed, run_unit_groups, WorkItem};
use crate::store_cache::{record_from_run, run_from_record, run_key};
use chirp_store::archive::ArchiveOutcome;
use chirp_store::{ArchiveTraceStream, Store, StoreError, TraceArchive};
use chirp_trace::suite::BenchmarkSpec;
use chirp_trace::{Category, PackedTrace};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Runner parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Instructions generated (and simulated) per benchmark.
    pub instructions: usize,
    /// Worker threads.
    pub threads: usize,
    /// Simulator configuration shared by all runs.
    pub sim: SimConfig,
    /// When set, [`run_suite`] routes through the `chirp-store` directory
    /// at this path: ledger hits skip simulation, traces come from the
    /// archive, and fresh results are recorded for the next run.
    pub store: Option<PathBuf>,
    /// Cap on packed-trace bytes in flight across workers, `None` for
    /// unbounded. One trace is always admitted regardless, so a budget
    /// smaller than a single trace degrades to serial trace residency
    /// rather than deadlock. Does not enter result identity: ledger keys
    /// ignore it, and results are bit-identical at any budget.
    pub mem_budget: Option<u64>,
    /// Lane width for the software-pipelined hot loop: up to this many
    /// same-trace (benchmark × policy) units are interleaved through one
    /// instruction loop per worker ([`crate::run_columnar_lanes`]).
    /// `0` and `1` both mean sequential execution. Purely an execution-
    /// strategy knob — results are bit-identical at any width (pinned by
    /// `tests/equivalence_matrix.rs`), so it is excluded from ledger run
    /// keys, and configs serialized before the field existed default to
    /// sequential.
    #[serde(default)]
    pub lanes: usize,
    /// Records per streamed batch for [`run_suite_streamed`]; `0` means
    /// [`DEFAULT_STREAM_CHUNK`]. Like `lanes`, purely an execution-
    /// strategy knob: streamed results are bit-identical at any chunk
    /// size (batch boundaries carry no simulation meaning), so it is
    /// excluded from ledger run keys by construction — `run_key` never
    /// sees it.
    #[serde(default)]
    pub stream_chunk: usize,
    /// Run multi-policy groups through the factored engine: one shared
    /// front-end pass over the trace emits the policy-invariant L2-TLB
    /// event stream, and each policy replays only its L2 + walker over it
    /// ([`crate::run_factored_group`]). Single-policy groups always take
    /// the plain columnar loop (there is nothing to share). Like `lanes`,
    /// purely an execution-strategy knob — results are bit-identical
    /// either way (pinned by `tests/equivalence_matrix.rs`), so it is
    /// excluded from ledger run keys. `RunnerConfig::default()` enables
    /// it; CLI construction goes through that default, so lineup-width
    /// groups dispatch through the shared front end unless explicitly
    /// disabled.
    #[serde(default)]
    pub factored: bool,
}

/// Records per streamed batch when [`RunnerConfig::stream_chunk`] is 0:
/// ~64k records ≈ 0.8 MiB packed, big enough to amortise channel and
/// bookkeeping costs, small enough that a unit's pipeline stays a few MiB.
pub const DEFAULT_STREAM_CHUNK: usize = 65_536;

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            instructions: 1_000_000,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            sim: SimConfig::default(),
            store: None,
            mem_budget: None,
            lanes: 1,
            stream_chunk: 0,
            factored: true,
        }
    }
}

impl RunnerConfig {
    /// Worker threads actually spawned: `threads` clamped to at least 1,
    /// so a zero (e.g. from a miscomputed division) degrades to serial
    /// execution instead of deadlocking with no workers to drain the
    /// queue.
    pub fn worker_threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Per-trace byte estimate used for budget admission before a trace's
    /// real size is known.
    pub(crate) fn trace_estimate(&self) -> u64 {
        PackedTrace::estimate_bytes(self.instructions)
    }

    /// Lane width actually dispatched: `lanes` clamped to at least 1, so
    /// the zero that `#[serde(default)]` gives old configs (and any
    /// miscomputed width) degrades to sequential execution.
    pub fn lane_width(&self) -> usize {
        self.lanes.max(1)
    }

    /// Group width handed to the scheduler: factored execution wants the
    /// whole lineup in one group (one shared front end + N back-ends), so
    /// it widens the configured lane width to the policy count.
    pub(crate) fn group_width(&self, policies: usize) -> usize {
        if self.factored {
            self.lane_width().max(policies)
        } else {
            self.lane_width()
        }
    }

    /// Records per streamed batch actually used: `stream_chunk` with 0
    /// mapped to [`DEFAULT_STREAM_CHUNK`].
    pub fn stream_chunk_records(&self) -> usize {
        if self.stream_chunk == 0 {
            DEFAULT_STREAM_CHUNK
        } else {
            self.stream_chunk
        }
    }

    /// Estimated peak packed-trace bytes of one in-flight streamed work
    /// item, for budget admission: the consumer's batch plus the producer
    /// pipeline ([`chirp_trace::STREAM_PIPELINE_CHUNKS`] buffered + one
    /// being filled).
    pub(crate) fn stream_unit_estimate(&self) -> u64 {
        let chunk = self.stream_chunk_records().min(self.instructions.max(1));
        PackedTrace::estimate_bytes(chunk) * (chirp_trace::STREAM_PIPELINE_CHUNKS as u64 + 2)
    }
}

/// One (benchmark × policy) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Benchmark category.
    pub category: Category,
    /// The measured result (policy name inside).
    pub result: RunResult,
}

/// Runs `policies` over `suite` in parallel. Each benchmark's trace is
/// generated once (packed) and shared by every policy unit, so results
/// are directly comparable. Output order matches `suite` × `policies`.
///
/// With `config.store` set, this delegates to [`run_suite_cached`] — only
/// missing (benchmark × policy) pairs are simulated. An unusable store
/// (I/O error) degrades to a plain uncached run with a warning rather
/// than aborting the experiment.
pub fn run_suite(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
) -> Vec<BenchRun> {
    if let Some(root) = &config.store {
        match run_suite_cached(suite, policies, config, root) {
            Ok((runs, _)) => return runs,
            Err(e) => {
                eprintln!("warning: store at {} unusable ({e}); running without it", root.display())
            }
        }
    }
    run_suite_direct(suite, policies, config)
}

fn run_suite_direct(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
) -> Vec<BenchRun> {
    let work: Vec<WorkItem> = (0..suite.len())
        .map(|bench| WorkItem { bench, policies: (0..policies.len()).collect() })
        .collect();
    let (results, _) = run_unit_groups(
        &work,
        config.worker_threads(),
        config.trace_estimate(),
        config.mem_budget,
        config.group_width(policies.len()),
        |item| Ok(suite[item.bench].generate_packed(config.instructions)),
        |w, positions, trace| simulate_group(suite, policies, config, &work[w], positions, trace),
    )
    .expect("direct fetch is infallible");
    results.into_iter().flatten().collect()
}

/// Builds and runs a group of same-benchmark (benchmark × policy)
/// simulations over a shared packed trace. A multi-unit group with
/// `factored` set dispatches through the shared front end
/// ([`run_factored_group`]); otherwise the group runs software-pipelined
/// through the multi-lane interleaved loop
/// ([`crate::run_columnar_lanes`]) at its width, a single-unit group
/// degenerating to the sequential columnar loop. Each unit's result is
/// bit-identical to the legacy `Simulator::new` + `run` path — pinned by
/// the lane, shim and factored matrices in `tests/equivalence_matrix.rs`
/// and by `scheduler_reproduces_benchwise_baseline_exactly` below.
fn simulate_group(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
    item: &WorkItem,
    positions: &[usize],
    trace: &PackedTrace,
) -> Vec<BenchRun> {
    let bench = &suite[item.bench];
    let kinds: Vec<&PolicyKind> =
        positions.iter().map(|&pos| &policies[item.policies[pos]]).collect();
    run_policy_group(&config.sim, &kinds, bench.seed, trace, config.factored)
        .into_iter()
        .map(|result| BenchRun { benchmark: bench.name.clone(), category: bench.category, result })
        .collect()
}

/// Runs one same-trace group of policies, the primitive `simulate_group`
/// and `chirp-serve` share. With `factored` set and more than one policy,
/// the group runs as one front-end pass + per-policy replay back-ends
/// ([`run_factored_group`]) — the signature stream is computed under the
/// group's first CHiRP configuration ([`group_sig_config`]). Otherwise
/// (or for a group of one, which has nothing to share) the policies run
/// through the lane-interleaved columnar loop at the group's width.
/// Results are bit-identical either way, in input order.
pub fn run_policy_group(
    sim: &SimConfig,
    kinds: &[&PolicyKind],
    seed: u64,
    trace: &PackedTrace,
    factored: bool,
) -> Vec<RunResult> {
    let build = |kind: &PolicyKind| -> PolicyDispatch { kind.build_dispatch(sim.tlb.l2, seed) };
    if factored && kinds.len() > 1 {
        let sig_config = group_sig_config(kinds.iter().copied());
        let policies: Vec<PolicyDispatch> = kinds.iter().map(|k| build(k)).collect();
        run_factored_group(sim, trace, sim.warmup_fraction, &sig_config, policies)
            .into_iter()
            .map(|(result, _)| result)
            .collect()
    } else {
        let units: Vec<_> = kinds
            .iter()
            .map(|k| {
                LaneUnit::new(Simulator::with_policy(sim, build(k)), trace, sim.warmup_fraction)
            })
            .collect();
        let lanes = units.len();
        run_columnar_lanes(units, lanes)
    }
}

/// What `run_suite_cached` did to satisfy a request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// (benchmark × policy) pairs simulated this call.
    pub simulated: usize,
    /// Pairs answered from the run ledger without simulating.
    pub ledger_hits: usize,
    /// Traces decoded from the archive rather than generated.
    pub trace_hits: u64,
    /// Traces generated and archived (absent from the archive).
    pub trace_generated: u64,
    /// Traces regenerated over a corrupt archive entry.
    pub trace_regenerated: u64,
}

/// Like [`run_suite`], but incremental: results already in the run ledger
/// under `store_root` are returned without simulating, and traces for the
/// remaining pairs come from the content-addressed archive (generated and
/// archived on first use, transparently regenerated if a file is corrupt).
/// Freshly simulated results are appended to the ledger, so a second call
/// with identical inputs performs zero simulations.
///
/// Output order and values match `run_suite` exactly — archived traces
/// decode to the same records generation produces, and ledger keys cover
/// everything that can affect a result (see
/// [`crate::store_cache::run_key`]).
///
/// The archive mutex guards only index probes and manifest bookkeeping;
/// decode/generate/encode — the expensive steps — run outside it (see the
/// locking discipline on [`TraceArchive`]), so workers fetching different
/// traces overlap.
pub fn run_suite_cached(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
    store_root: &Path,
) -> Result<(Vec<BenchRun>, CacheStats), StoreError> {
    let mut store = Store::open(store_root)?;
    let mut stats = CacheStats::default();
    let mut slots: Vec<Option<BenchRun>> = vec![None; suite.len() * policies.len()];

    // Resolve everything the ledger already knows; collect the rest as
    // (benchmark, missing policies) work items.
    let mut work: Vec<WorkItem> = Vec::new();
    for (bi, bench) in suite.iter().enumerate() {
        let mut need = Vec::new();
        for (pi, policy) in policies.iter().enumerate() {
            let key = run_key(&config.sim, policy, &bench.name, config.instructions);
            match store.ledger.get(key).and_then(run_from_record) {
                Some(run) => {
                    slots[bi * policies.len() + pi] = Some(run);
                    stats.ledger_hits += 1;
                }
                None => need.push(pi),
            }
        }
        if !need.is_empty() {
            work.push(WorkItem { bench: bi, policies: need });
        }
    }

    if !work.is_empty() {
        let archive = Mutex::new(&mut store.archive);
        let (results, _) = run_unit_groups(
            &work,
            config.worker_threads(),
            config.trace_estimate(),
            config.mem_budget,
            config.group_width(policies.len()),
            |item| fetch_archived(&archive, &suite[item.bench], config.instructions),
            |w, positions, trace| {
                simulate_group(suite, policies, config, &work[w], positions, trace)
            },
        )?;

        let archive_stats = store.archive.stats();
        stats.trace_hits = archive_stats.hits;
        stats.trace_generated = archive_stats.misses;
        stats.trace_regenerated = archive_stats.corrupt_regenerated;

        // Record fresh results in deterministic (suite × policy) order.
        for (item, runs) in work.iter().zip(results) {
            for (&pi, run) in item.policies.iter().zip(runs) {
                let key = run_key(
                    &config.sim,
                    &policies[pi],
                    &suite[item.bench].name,
                    config.instructions,
                );
                store.ledger.append(key, record_from_run(&run, &config.sim, &policies[pi]))?;
                slots[item.bench * policies.len() + pi] = Some(run);
                stats.simulated += 1;
            }
        }
    }

    let runs = slots
        .into_iter()
        .map(|slot| slot.expect("every pair resolved from ledger or simulation"))
        .collect();
    Ok((runs, stats))
}

/// Like [`run_suite_cached`], but with streamed traces and per-item
/// ledger persistence — the production path for long traces:
///
/// * each missing (benchmark × policies) work item opens ONE trace
///   stream — archive-backed when a valid entry exists, else a generator
///   stream — and runs all its missing policies over it in lockstep
///   ([`crate::engine::run_stream_units`]), so peak per-unit trace
///   residency is O(stream chunk) instead of O(trace);
/// * results are appended to the run ledger as each item completes (not
///   batched at the end), so a run interrupted mid-suite keeps every
///   finished item and a rerun resumes from the ledger;
/// * a corrupt archive entry (I/O, decode or checksum failure at any
///   point in the stream) falls back to a fresh generator stream, never
///   fatal — mirroring the materialized path's regenerate-on-corruption.
///
/// Results are bit-identical to [`run_suite_cached`] (and thus to
/// [`run_suite`]): batch boundaries carry no simulation meaning and the
/// warmup cut lands on the same absolute instruction. Differences are
/// operational only: generated traces are *not* archived (there is no
/// resident trace to encode), and lane interleaving does not apply (the
/// lockstep pass already shares the stream across the item's policies).
pub fn run_suite_streamed(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
    store_root: &Path,
) -> Result<(Vec<BenchRun>, CacheStats), StoreError> {
    let mut store = Store::open(store_root)?;
    let mut stats = CacheStats::default();
    let mut slots: Vec<Option<BenchRun>> = vec![None; suite.len() * policies.len()];

    let mut work: Vec<WorkItem> = Vec::new();
    for (bi, bench) in suite.iter().enumerate() {
        let mut need = Vec::new();
        for (pi, policy) in policies.iter().enumerate() {
            let key = run_key(&config.sim, policy, &bench.name, config.instructions);
            match store.ledger.get(key).and_then(run_from_record) {
                Some(run) => {
                    slots[bi * policies.len() + pi] = Some(run);
                    stats.ledger_hits += 1;
                }
                None => need.push(pi),
            }
        }
        if !need.is_empty() {
            work.push(WorkItem { bench: bi, policies: need });
        }
    }

    if !work.is_empty() {
        let archive = Mutex::new(&mut store.archive);
        let ledger = Mutex::new(&mut store.ledger);
        let counters = Mutex::new(CacheStats::default());
        let (results, _) = run_streamed(
            &work,
            config.worker_threads(),
            config.stream_unit_estimate(),
            config.mem_budget,
            |item| {
                let runs = stream_one_item(&archive, suite, policies, config, item, &counters)?;
                // Persist this item immediately: interrupt-resumability
                // hinges on completed items being in the ledger before
                // the next item starts.
                let mut ledger = ledger.lock();
                for (&pi, run) in item.policies.iter().zip(&runs) {
                    let key = run_key(
                        &config.sim,
                        &policies[pi],
                        &suite[item.bench].name,
                        config.instructions,
                    );
                    ledger.append(key, record_from_run(run, &config.sim, &policies[pi]))?;
                }
                Ok(runs)
            },
        )?;

        let streamed = counters.into_inner();
        stats.trace_hits = streamed.trace_hits;
        stats.trace_generated = streamed.trace_generated;
        stats.trace_regenerated = streamed.trace_regenerated;
        for (item, runs) in work.iter().zip(results) {
            for (&pi, run) in item.policies.iter().zip(runs) {
                slots[item.bench * policies.len() + pi] = Some(run);
                stats.simulated += 1;
            }
        }
    }

    let runs = slots
        .into_iter()
        .map(|slot| slot.expect("every pair resolved from ledger or streamed simulation"))
        .collect();
    Ok((runs, stats))
}

/// Runs one streamed work item: probes the archive under its lock, then
/// (unlocked) streams the trace through every missing policy in lockstep.
/// Any archive-stream failure falls back to a generator stream on fresh
/// simulators.
fn stream_one_item(
    archive: &Mutex<&mut TraceArchive>,
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
    item: &WorkItem,
    counters: &Mutex<CacheStats>,
) -> Result<Vec<BenchRun>, StoreError> {
    let bench = &suite[item.bench];
    let chunk = config.stream_chunk_records();
    // One pass over the stream for all of the item's policies: factored
    // (shared front end + replay back-ends) when the group is wide enough
    // and enabled, else the legacy lockstep simulators. Bit-identical
    // either way (`tests/equivalence_matrix.rs`).
    let run_item = |stream: &mut dyn chirp_trace::TraceStream| -> Result<Vec<RunResult>, chirp_trace::StreamError> {
        if config.factored && item.policies.len() > 1 {
            let kinds: Vec<&PolicyKind> = item.policies.iter().map(|&pi| &policies[pi]).collect();
            let sig_config = group_sig_config(kinds.iter().copied());
            let built: Vec<PolicyDispatch> =
                kinds.iter().map(|k| k.build_dispatch(config.sim.tlb.l2, bench.seed)).collect();
            run_stream_factored(&config.sim, &sig_config, built, stream, config.sim.warmup_fraction)
                .map(|outcomes| outcomes.into_iter().map(|(result, _)| result).collect())
        } else {
            let mut sims: Vec<Simulator<PolicyDispatch>> = item
                .policies
                .iter()
                .map(|&pi| {
                    Simulator::with_policy(
                        &config.sim,
                        policies[pi].build_dispatch(config.sim.tlb.l2, bench.seed),
                    )
                })
                .collect();
            run_stream_units(&mut sims, stream, config.sim.warmup_fraction)
        }
    };
    let wrap = |results: Vec<RunResult>| -> Vec<BenchRun> {
        results
            .into_iter()
            .map(|result| BenchRun {
                benchmark: bench.name.clone(),
                category: bench.category,
                result,
            })
            .collect()
    };

    let key = TraceArchive::content_key(bench, config.instructions);
    let probe = {
        let a = archive.lock();
        a.entry_meta(key).map(|meta| (a.trace_path(key), meta))
    };
    let had_entry = probe.is_some();
    if let Some((path, meta)) = probe {
        let attempt = ArchiveTraceStream::open(&path, meta, chunk)
            .and_then(|mut stream| run_item(&mut stream));
        if let Ok(results) = attempt {
            counters.lock().trace_hits += 1;
            return Ok(wrap(results));
        }
        // Corrupt entry (open, decode or checksum failure): fall back to
        // regeneration below, like the materialized path.
    }
    let mut counts = counters.lock();
    if had_entry {
        counts.trace_regenerated += 1;
    } else {
        counts.trace_generated += 1;
    }
    drop(counts);
    let mut stream = bench.stream(config.instructions, chunk);
    let results = run_item(&mut stream)
        .map_err(|e| StoreError::Corrupt(format!("generator stream failed: {e}")))?;
    Ok(wrap(results))
}

/// Fetches one benchmark's packed trace through the archive, holding the
/// archive lock only for the index probe and the final bookkeeping — the
/// decode / generate / encode work in between runs lock-free, so fetches
/// for *different* benchmarks proceed concurrently. Work items are
/// per-benchmark, so no two workers ever race on the same key.
fn fetch_archived(
    archive: &Mutex<&mut TraceArchive>,
    bench: &BenchmarkSpec,
    instructions: usize,
) -> Result<PackedTrace, StoreError> {
    let key = TraceArchive::content_key(bench, instructions);
    // Lock 1 (index probe): does the archive claim to have this trace?
    let probe = {
        let a = archive.lock();
        a.entry_meta(key).map(|meta| (a.trace_path(key), meta))
    };
    let had_entry = probe.is_some();
    if let Some((path, meta)) = probe {
        // Unlocked: read + checksum + decode.
        if let Some(trace) = TraceArchive::decode_file(&path, meta) {
            archive.lock().record_hit();
            return Ok(trace);
        }
    }
    // Miss (or corrupt entry): generate, encode and write unlocked.
    let trace = bench.generate_packed(instructions);
    let encoded = TraceArchive::encode_packed(&trace);
    let path = archive.lock().trace_path(key);
    TraceArchive::store_file(&path, &encoded)?;
    let outcome =
        if had_entry { ArchiveOutcome::CorruptRegenerated } else { ArchiveOutcome::MissGenerated };
    // Lock 2 (bookkeeping): manifest append + index insert.
    archive.lock().commit(key, &encoded, outcome)?;
    Ok(trace)
}

/// Groups per-policy results for one benchmark out of a flat `run_suite`
/// output: returns, per benchmark (suite order), the runs in policy order.
pub fn group_by_benchmark(runs: &[BenchRun], policies: usize) -> Vec<&[BenchRun]> {
    assert!(policies > 0 && runs.len().is_multiple_of(policies), "ragged run matrix");
    runs.chunks(policies).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::run_suite_benchwise;
    use chirp_store::TempDir;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn runs_every_benchmark_under_every_policy() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip];
        let config = RunnerConfig { instructions: 20_000, threads: 2, ..Default::default() };
        let runs = run_suite(&suite, &policies, &config);
        assert_eq!(runs.len(), 8);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.benchmark, suite[i / 2].name);
            assert_eq!(run.result.policy, policies[i % 2].name());
            assert!(run.result.instructions > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru];
        let serial = RunnerConfig { instructions: 10_000, threads: 1, ..Default::default() };
        let parallel = RunnerConfig { instructions: 10_000, threads: 4, ..Default::default() };
        assert_eq!(run_suite(&suite, &policies, &serial), run_suite(&suite, &policies, &parallel));
    }

    /// The tentpole equivalence gate: the packed-trace scheduler must
    /// reproduce the pre-rework benchwise runner bit-for-bit over a
    /// 4-benchmark × 3-policy matrix, at several thread counts and under
    /// a trace-at-a-time memory budget.
    #[test]
    fn scheduler_reproduces_benchwise_baseline_exactly() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Ghrp];
        let base_config = RunnerConfig { instructions: 12_000, threads: 2, ..Default::default() };
        let baseline = run_suite_benchwise(&suite, &policies, &base_config);
        assert_eq!(baseline.len(), 12);
        for threads in [1, 4] {
            for mem_budget in [None, Some(1)] {
                let config = RunnerConfig { threads, mem_budget, ..base_config.clone() };
                assert_eq!(
                    run_suite(&suite, &policies, &config),
                    baseline,
                    "threads={threads} mem_budget={mem_budget:?}"
                );
            }
        }
    }

    #[test]
    fn zero_threads_clamps_to_serial_instead_of_deadlocking() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru];
        let config = RunnerConfig { instructions: 5_000, threads: 0, ..Default::default() };
        assert_eq!(config.worker_threads(), 1);
        let runs = run_suite(&suite, &policies, &config);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn cached_run_matches_uncached_and_second_pass_simulates_nothing() {
        let root = TempDir::new("runner-cache");
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip];
        let config = RunnerConfig { instructions: 10_000, threads: 2, ..Default::default() };

        let plain = run_suite(&suite, &policies, &config);
        let (first, stats) = run_suite_cached(&suite, &policies, &config, root.path()).unwrap();
        assert_eq!(first, plain);
        assert_eq!(stats.simulated, 6);
        assert_eq!(stats.ledger_hits, 0);
        assert_eq!(stats.trace_generated, 3);

        let (second, stats) = run_suite_cached(&suite, &policies, &config, root.path()).unwrap();
        assert_eq!(second, plain);
        assert_eq!(stats.simulated, 0);
        assert_eq!(stats.ledger_hits, 6);
    }

    #[test]
    fn store_field_routes_run_suite_through_cache() {
        let root = TempDir::new("runner-field");
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru];
        let plain_config = RunnerConfig { instructions: 5_000, threads: 2, ..Default::default() };
        let stored_config =
            RunnerConfig { store: Some(root.path().to_path_buf()), ..plain_config.clone() };
        let plain = run_suite(&suite, &policies, &plain_config);
        assert_eq!(run_suite(&suite, &policies, &stored_config), plain);
        // Second pass answers from the populated store.
        assert_eq!(run_suite(&suite, &policies, &stored_config), plain);
        assert!(root.path().join("runs.jsonl").is_file());
    }

    #[test]
    fn cached_run_simulates_only_new_policies() {
        let root = TempDir::new("runner-partial");
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let config = RunnerConfig { instructions: 8_000, threads: 2, ..Default::default() };

        run_suite_cached(&suite, &[PolicyKind::Lru], &config, root.path()).unwrap();
        let (_, stats) =
            run_suite_cached(&suite, &[PolicyKind::Lru, PolicyKind::Random], &config, root.path())
                .unwrap();
        assert_eq!(stats.ledger_hits, 2, "lru results come from the ledger");
        assert_eq!(stats.simulated, 2, "only random is simulated");
        assert_eq!(stats.trace_hits, 2, "traces decode from the archive");
    }

    #[test]
    fn cached_run_respects_memory_budget() {
        let root = TempDir::new("runner-budget");
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let config = RunnerConfig {
            instructions: 6_000,
            threads: 4,
            mem_budget: Some(1),
            ..Default::default()
        };
        let plain =
            run_suite(&suite, &policies, &RunnerConfig { mem_budget: None, ..config.clone() });
        let (cached, stats) = run_suite_cached(&suite, &policies, &config, root.path()).unwrap();
        assert_eq!(cached, plain, "budget must not change results");
        assert_eq!(stats.simulated, 6);
        // Residency under a tight budget is asserted at the scheduler
        // level (`sched::tests::budget_keeps_one_trace_resident_at_a_time`);
        // the global last-summary slot is racy across parallel tests.
    }

    #[test]
    fn streamed_run_matches_cached_and_plain() {
        let cache_root = TempDir::new("runner-streamed-vs-cached");
        let stream_root = TempDir::new("runner-streamed");
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip];
        // A tiny chunk exercises many batch boundaries per run.
        let config = RunnerConfig {
            instructions: 10_000,
            threads: 2,
            stream_chunk: 700,
            ..Default::default()
        };

        let plain = run_suite(&suite, &policies, &config);
        let (cached, _) = run_suite_cached(&suite, &policies, &config, cache_root.path()).unwrap();
        let (streamed, stats) =
            run_suite_streamed(&suite, &policies, &config, stream_root.path()).unwrap();
        assert_eq!(streamed, plain, "streamed must be bit-identical to plain");
        assert_eq!(streamed, cached, "streamed must be bit-identical to cached");
        assert_eq!(stats.simulated, 6);
        assert_eq!(stats.trace_generated, 3, "no archive entries yet: generator streams");

        // Second pass answers entirely from the ledger.
        let (second, stats) =
            run_suite_streamed(&suite, &policies, &config, stream_root.path()).unwrap();
        assert_eq!(second, plain);
        assert_eq!(stats.simulated, 0);
        assert_eq!(stats.ledger_hits, 6);
    }

    #[test]
    fn streamed_run_replays_archived_traces() {
        let root = TempDir::new("runner-streamed-archive");
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let config = RunnerConfig { instructions: 8_000, threads: 2, ..Default::default() };

        // The cached (materialized) pass populates the archive; the
        // streamed pass then replays those entries for new policies.
        let (cached, _) =
            run_suite_cached(&suite, &[PolicyKind::Lru], &config, root.path()).unwrap();
        let (streamed, stats) = run_suite_streamed(
            &suite,
            &[PolicyKind::Lru, PolicyKind::Random],
            &config,
            root.path(),
        )
        .unwrap();
        assert_eq!(stats.ledger_hits, 2, "lru results come from the ledger");
        assert_eq!(stats.simulated, 2, "only random is simulated");
        assert_eq!(stats.trace_hits, 2, "traces stream from the archive");
        assert_eq!(stats.trace_generated, 0);
        assert_eq!(&streamed[0], &cached[0]);
        let plain = run_suite(&suite, &[PolicyKind::Lru, PolicyKind::Random], &config);
        assert_eq!(streamed, plain, "archive-streamed must equal plain");
    }

    #[test]
    fn streamed_run_resumes_from_a_partial_ledger() {
        let root = TempDir::new("runner-streamed-resume");
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let config = RunnerConfig { instructions: 6_000, threads: 2, ..Default::default() };

        // Simulate an interrupted run: only the first benchmark's items
        // made it into the ledger before the "crash".
        run_suite_streamed(&suite[..1], &policies, &config, root.path()).unwrap();

        let (runs, stats) = run_suite_streamed(&suite, &policies, &config, root.path()).unwrap();
        assert_eq!(stats.ledger_hits, 2, "the finished benchmark is not re-simulated");
        assert_eq!(stats.simulated, 4, "only the remaining benchmarks run");
        assert_eq!(runs, run_suite(&suite, &policies, &config));
    }

    #[test]
    fn streamed_run_regenerates_corrupt_archive_entries() {
        let root = TempDir::new("runner-streamed-corrupt");
        let suite = build_suite(&SuiteConfig { benchmarks: 1 });
        let config = RunnerConfig { instructions: 6_000, threads: 1, ..Default::default() };

        // Populate the archive, then flip a byte in the stored trace.
        run_suite_cached(&suite, &[PolicyKind::Lru], &config, root.path()).unwrap();
        let archive = TraceArchive::open(root.path()).unwrap();
        let path = archive.trace_path(TraceArchive::content_key(&suite[0], config.instructions));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (runs, stats) =
            run_suite_streamed(&suite, &[PolicyKind::Random], &config, root.path()).unwrap();
        assert_eq!(stats.trace_regenerated, 1, "corrupt entry falls back to the generator");
        assert_eq!(stats.trace_hits, 0);
        assert_eq!(runs, run_suite(&suite, &[PolicyKind::Random], &config));
    }

    #[test]
    fn streamed_run_respects_memory_budget_and_chunk_sizes() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let plain = run_suite(
            &suite,
            &policies,
            &RunnerConfig { instructions: 6_000, threads: 4, ..Default::default() },
        );
        for (chunk, budget) in [(0usize, Some(1u64)), (1, None), (257, Some(1))] {
            let root = TempDir::new(&format!("runner-streamed-budget-{chunk}"));
            let config = RunnerConfig {
                instructions: 6_000,
                threads: 4,
                mem_budget: budget,
                stream_chunk: chunk,
                ..Default::default()
            };
            let (streamed, _) =
                run_suite_streamed(&suite, &policies, &config, root.path()).unwrap();
            assert_eq!(streamed, plain, "chunk={chunk} budget={budget:?}");
        }
    }

    #[test]
    fn grouping_slices_by_policy_count() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let config = RunnerConfig { instructions: 5_000, threads: 2, ..Default::default() };
        let runs = run_suite(&suite, &policies, &config);
        let grouped = group_by_benchmark(&runs, 2);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0][0].benchmark, grouped[0][1].benchmark);
    }
}
