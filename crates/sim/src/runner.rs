//! Parallel suite runner: simulates every benchmark under every policy,
//! spreading benchmarks over worker threads.
//!
//! [`run_suite`] always simulates everything; [`run_suite_cached`] fronts
//! it with a `chirp-store` directory and only simulates (benchmark ×
//! policy) pairs whose results are not already in the run ledger, pulling
//! traces from the content-addressed archive instead of regenerating them.

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::metrics::RunResult;
use crate::registry::PolicyKind;
use crate::store_cache::{record_from_run, run_from_record, run_key};
use chirp_store::{Store, StoreError};
use chirp_trace::suite::BenchmarkSpec;
use chirp_trace::Category;
use crossbeam::channel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Runner parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Instructions generated (and simulated) per benchmark.
    pub instructions: usize,
    /// Worker threads.
    pub threads: usize,
    /// Simulator configuration shared by all runs.
    pub sim: SimConfig,
    /// When set, [`run_suite`] routes through the `chirp-store` directory
    /// at this path: ledger hits skip simulation, traces come from the
    /// archive, and fresh results are recorded for the next run.
    pub store: Option<PathBuf>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            instructions: 1_000_000,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            sim: SimConfig::default(),
            store: None,
        }
    }
}

impl RunnerConfig {
    /// Worker threads actually spawned: `threads` clamped to at least 1,
    /// so a zero (e.g. from a miscomputed division) degrades to serial
    /// execution instead of deadlocking with no workers to drain the
    /// queue.
    pub fn worker_threads(&self) -> usize {
        self.threads.max(1)
    }
}

/// One (benchmark × policy) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRun {
    /// Benchmark name.
    pub benchmark: String,
    /// Benchmark category.
    pub category: Category,
    /// The measured result (policy name inside).
    pub result: RunResult,
}

/// Runs `policies` over `suite` in parallel. Each worker generates a
/// benchmark's trace once and reuses it for every policy, so results are
/// directly comparable. Output order matches `suite` × `policies`.
///
/// With `config.store` set, this delegates to [`run_suite_cached`] — only
/// missing (benchmark × policy) pairs are simulated. An unusable store
/// (I/O error) degrades to a plain uncached run with a warning rather
/// than aborting the experiment.
pub fn run_suite(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
) -> Vec<BenchRun> {
    if let Some(root) = &config.store {
        match run_suite_cached(suite, policies, config, root) {
            Ok((runs, _)) => return runs,
            Err(e) => {
                eprintln!("warning: store at {} unusable ({e}); running without it", root.display())
            }
        }
    }
    run_suite_direct(suite, policies, config)
}

fn run_suite_direct(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
) -> Vec<BenchRun> {
    let results: Mutex<Vec<Option<Vec<BenchRun>>>> = Mutex::new(vec![None; suite.len()]);
    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..suite.len() {
        tx.send(i).expect("channel open");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..config.worker_threads() {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let bench = &suite[i];
                    let trace = bench.generate(config.instructions);
                    let mut runs = Vec::with_capacity(policies.len());
                    for policy in policies {
                        let mut sim = Simulator::new(
                            &config.sim,
                            policy.build(config.sim.tlb.l2, bench.seed),
                        );
                        let result = sim.run(&trace, config.sim.warmup_fraction);
                        runs.push(BenchRun {
                            benchmark: bench.name.clone(),
                            category: bench.category,
                            result,
                        });
                    }
                    results.lock()[i] = Some(runs);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .flat_map(|r| r.expect("every benchmark was processed"))
        .collect()
}

/// Per-work-item outcome slot of the cached runner's parallel phase.
type WorkSlot = Option<Result<Vec<BenchRun>, StoreError>>;

/// What `run_suite_cached` did to satisfy a request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// (benchmark × policy) pairs simulated this call.
    pub simulated: usize,
    /// Pairs answered from the run ledger without simulating.
    pub ledger_hits: usize,
    /// Traces decoded from the archive rather than generated.
    pub trace_hits: u64,
    /// Traces generated and archived (absent from the archive).
    pub trace_generated: u64,
    /// Traces regenerated over a corrupt archive entry.
    pub trace_regenerated: u64,
}

/// Like [`run_suite`], but incremental: results already in the run ledger
/// under `store_root` are returned without simulating, and traces for the
/// remaining pairs come from the content-addressed archive (generated and
/// archived on first use, transparently regenerated if a file is corrupt).
/// Freshly simulated results are appended to the ledger, so a second call
/// with identical inputs performs zero simulations.
///
/// Output order and values match `run_suite` exactly — archived traces
/// decode to the same records generation produces, and ledger keys cover
/// everything that can affect a result (see
/// [`run_key`](crate::store_cache::run_key)).
pub fn run_suite_cached(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
    store_root: &Path,
) -> Result<(Vec<BenchRun>, CacheStats), StoreError> {
    let mut store = Store::open(store_root)?;
    let mut stats = CacheStats::default();
    let mut slots: Vec<Option<BenchRun>> = vec![None; suite.len() * policies.len()];

    // Resolve everything the ledger already knows; collect the rest as
    // (benchmark index, missing policy indices) work items.
    let mut work: Vec<(usize, Vec<usize>)> = Vec::new();
    for (bi, bench) in suite.iter().enumerate() {
        let mut need = Vec::new();
        for (pi, policy) in policies.iter().enumerate() {
            let key = run_key(&config.sim, policy, &bench.name, config.instructions);
            match store.ledger.get(key).and_then(run_from_record) {
                Some(run) => {
                    slots[bi * policies.len() + pi] = Some(run);
                    stats.ledger_hits += 1;
                }
                None => need.push(pi),
            }
        }
        if !need.is_empty() {
            work.push((bi, need));
        }
    }

    if !work.is_empty() {
        // Workers share the archive behind a mutex: trace fetch (decode or
        // generate) happens under the lock, simulation — the dominant cost
        // — outside it.
        let archive = Mutex::new(&mut store.archive);
        let results: Mutex<Vec<WorkSlot>> = Mutex::new((0..work.len()).map(|_| None).collect());
        let (tx, rx) = channel::unbounded::<usize>();
        for w in 0..work.len() {
            tx.send(w).expect("channel open");
        }
        drop(tx);

        std::thread::scope(|scope| {
            for _ in 0..config.worker_threads() {
                let rx = rx.clone();
                let results = &results;
                let archive = &archive;
                let work = &work;
                scope.spawn(move || {
                    while let Ok(w) = rx.recv() {
                        let (bi, ref missing) = work[w];
                        let bench = &suite[bi];
                        let fetched = archive.lock().get_or_generate(bench, config.instructions);
                        let outcome = fetched.map(|(trace, _)| {
                            missing
                                .iter()
                                .map(|&pi| {
                                    let policy = &policies[pi];
                                    let mut sim = Simulator::new(
                                        &config.sim,
                                        policy.build(config.sim.tlb.l2, bench.seed),
                                    );
                                    let result = sim.run(&trace, config.sim.warmup_fraction);
                                    BenchRun {
                                        benchmark: bench.name.clone(),
                                        category: bench.category,
                                        result,
                                    }
                                })
                                .collect()
                        });
                        results.lock()[w] = Some(outcome);
                    }
                });
            }
        });

        let archive_stats = store.archive.stats();
        stats.trace_hits = archive_stats.hits;
        stats.trace_generated = archive_stats.misses;
        stats.trace_regenerated = archive_stats.corrupt_regenerated;

        // Record fresh results in deterministic (suite × policy) order.
        for (w, item) in results.into_inner().into_iter().enumerate() {
            let runs = item.expect("every work item was processed")?;
            let (bi, ref missing) = work[w];
            for (&pi, run) in missing.iter().zip(runs) {
                let key = run_key(&config.sim, &policies[pi], &suite[bi].name, config.instructions);
                store.ledger.append(key, record_from_run(&run))?;
                slots[bi * policies.len() + pi] = Some(run);
                stats.simulated += 1;
            }
        }
    }

    let runs = slots
        .into_iter()
        .map(|slot| slot.expect("every pair resolved from ledger or simulation"))
        .collect();
    Ok((runs, stats))
}

/// Groups per-policy results for one benchmark out of a flat `run_suite`
/// output: returns, per benchmark (suite order), the runs in policy order.
pub fn group_by_benchmark(runs: &[BenchRun], policies: usize) -> Vec<&[BenchRun]> {
    assert!(policies > 0 && runs.len().is_multiple_of(policies), "ragged run matrix");
    runs.chunks(policies).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn runs_every_benchmark_under_every_policy() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip];
        let config = RunnerConfig { instructions: 20_000, threads: 2, ..Default::default() };
        let runs = run_suite(&suite, &policies, &config);
        assert_eq!(runs.len(), 8);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.benchmark, suite[i / 2].name);
            assert_eq!(run.result.policy, policies[i % 2].name());
            assert!(run.result.instructions > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru];
        let serial = RunnerConfig { instructions: 10_000, threads: 1, ..Default::default() };
        let parallel = RunnerConfig { instructions: 10_000, threads: 4, ..Default::default() };
        assert_eq!(run_suite(&suite, &policies, &serial), run_suite(&suite, &policies, &parallel));
    }

    #[test]
    fn zero_threads_clamps_to_serial_instead_of_deadlocking() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru];
        let config = RunnerConfig { instructions: 5_000, threads: 0, ..Default::default() };
        assert_eq!(config.worker_threads(), 1);
        let runs = run_suite(&suite, &policies, &config);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn cached_run_matches_uncached_and_second_pass_simulates_nothing() {
        let root = std::env::temp_dir().join(format!("chirp-runner-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let policies = [PolicyKind::Lru, PolicyKind::Srrip];
        let config = RunnerConfig { instructions: 10_000, threads: 2, ..Default::default() };

        let plain = run_suite(&suite, &policies, &config);
        let (first, stats) = run_suite_cached(&suite, &policies, &config, &root).unwrap();
        assert_eq!(first, plain);
        assert_eq!(stats.simulated, 6);
        assert_eq!(stats.ledger_hits, 0);
        assert_eq!(stats.trace_generated, 3);

        let (second, stats) = run_suite_cached(&suite, &policies, &config, &root).unwrap();
        assert_eq!(second, plain);
        assert_eq!(stats.simulated, 0);
        assert_eq!(stats.ledger_hits, 6);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_field_routes_run_suite_through_cache() {
        let root = std::env::temp_dir().join(format!("chirp-runner-field-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru];
        let plain_config = RunnerConfig { instructions: 5_000, threads: 2, ..Default::default() };
        let stored_config = RunnerConfig { store: Some(root.clone()), ..plain_config.clone() };
        let plain = run_suite(&suite, &policies, &plain_config);
        assert_eq!(run_suite(&suite, &policies, &stored_config), plain);
        // Second pass answers from the populated store.
        assert_eq!(run_suite(&suite, &policies, &stored_config), plain);
        assert!(root.join("runs.jsonl").is_file());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cached_run_simulates_only_new_policies() {
        let root =
            std::env::temp_dir().join(format!("chirp-runner-partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let config = RunnerConfig { instructions: 8_000, threads: 2, ..Default::default() };

        run_suite_cached(&suite, &[PolicyKind::Lru], &config, &root).unwrap();
        let (_, stats) =
            run_suite_cached(&suite, &[PolicyKind::Lru, PolicyKind::Random], &config, &root)
                .unwrap();
        assert_eq!(stats.ledger_hits, 2, "lru results come from the ledger");
        assert_eq!(stats.simulated, 2, "only random is simulated");
        assert_eq!(stats.trace_hits, 2, "traces decode from the archive");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn grouping_slices_by_policy_count() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let config = RunnerConfig { instructions: 5_000, threads: 2, ..Default::default() };
        let runs = run_suite(&suite, &policies, &config);
        let grouped = group_by_benchmark(&runs, 2);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0][0].benchmark, grouped[0][1].benchmark);
    }
}
