//! The pre-scheduler suite runner, kept as a reference implementation.
//!
//! One work unit per *benchmark*: a worker generates the flat
//! `Vec<TraceRecord>` and runs every policy over it serially. This is the
//! runner the scheduler in [`crate::sched`] replaced; it stays in tree so
//!
//! * equivalence tests can assert the reworked runner reproduces its
//!   output bit-for-bit, and
//! * the `suite_runner` benchmark can measure the rework's wall-clock and
//!   peak-memory deltas against the real old code path, not a guess.
//!
//! Peak trace memory here is `min(threads, benchmarks)` flat traces — one
//! per busy worker, 40 bytes per record — independent of any budget.

use crate::engine::Simulator;
use crate::registry::PolicyKind;
use crate::runner::{BenchRun, RunnerConfig};
use chirp_trace::suite::BenchmarkSpec;
use crossbeam::channel;
use parking_lot::Mutex;

/// Runs `policies` over `suite` with benchmark-grained work units and flat
/// trace storage. Output order matches `suite` × `policies`, identical to
/// [`crate::runner::run_suite`] on the same inputs.
pub fn run_suite_benchwise(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
) -> Vec<BenchRun> {
    let results: Mutex<Vec<Option<Vec<BenchRun>>>> = Mutex::new(vec![None; suite.len()]);
    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..suite.len() {
        tx.send(i).expect("channel open");
    }
    drop(tx);

    std::thread::scope(|scope| {
        for _ in 0..config.worker_threads() {
            let rx = rx.clone();
            let results = &results;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let bench = &suite[i];
                    let trace = bench.generate(config.instructions);
                    let mut runs = Vec::with_capacity(policies.len());
                    for policy in policies {
                        let mut sim = Simulator::with_policy(
                            &config.sim,
                            policy.build_dispatch(config.sim.tlb.l2, bench.seed),
                        );
                        let result = sim.run(trace.as_slice(), config.sim.warmup_fraction);
                        runs.push(BenchRun {
                            benchmark: bench.name.clone(),
                            category: bench.category,
                            result,
                        });
                    }
                    results.lock()[i] = Some(runs);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .flat_map(|r| r.expect("every benchmark was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn benchwise_output_shape_matches_suite_times_policies() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let config = RunnerConfig { instructions: 5_000, threads: 2, ..Default::default() };
        let runs = run_suite_benchwise(&suite, &policies, &config);
        assert_eq!(runs.len(), 4);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.benchmark, suite[i / 2].name);
            assert_eq!(run.result.policy, policies[i % 2].name());
        }
    }
}
