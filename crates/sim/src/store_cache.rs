//! Bridge between the simulator and `chirp-store`: run-ledger keys and the
//! [`BenchRun`] ⇄ ledger-record mapping.
//!
//! The store crate is deliberately generic — it persists flat JSON objects
//! and leaves key semantics to callers — so everything that knows about
//! `SimConfig`, `PolicyKind` and `RunResult` lives here.

use crate::config::SimConfig;
use crate::metrics::RunResult;
use crate::registry::PolicyKind;
use crate::runner::BenchRun;
use chirp_store::{Fnv64, JsonObject};
use chirp_tlb::TlbStats;
use chirp_trace::{suite::GEN_CODE_VERSION, workload_family, Category};

/// Version of the run-key scheme. Participates in every key, so bumping it
/// invalidates all ledger entries at once (e.g. when the simulator's
/// timing model changes in a way `SimConfig` does not capture).
///
/// v2: code identity (policy + generator version strings) entered the key,
/// so results cached by older simulation code stopped matching.
pub const RUN_KEY_VERSION: u32 = 2;

/// Version of the flat ledger-record schema written by [`record_from_run`].
///
/// v1 records (no `schema` field) carried only the benchmark identity and
/// raw counters; v2 adds the code identity (`code_policy`, `code_gen`),
/// the `walk_penalty` the run was timed with, and the derived `workload`
/// family. [`migrate_record`] lifts v1 lines to the v2 shape so old
/// ledgers stay readable by the query layer.
pub const RECORD_SCHEMA_VERSION: u64 = 2;

/// Value [`migrate_record`] fills into code-identity fields that v1
/// records never carried.
pub const PRE_V2_CODE: &str = "pre-v2";

/// The code-identity component of a run key: version strings for the
/// policy implementation and the trace generators that produced the run.
/// Hashing these into the key makes cached results self-invalidating —
/// edit a policy's `code_version` (or [`GEN_CODE_VERSION`]) and exactly
/// the runs that code produced stop matching, so they re-run; everything
/// else keeps answering from the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeIdentity<'a> {
    /// The policy implementation version ([`PolicyKind::code_version`]).
    pub policy: &'a str,
    /// The trace-generator version ([`GEN_CODE_VERSION`]).
    pub generator: &'a str,
}

impl CodeIdentity<'static> {
    /// The identity of the code compiled into this binary for `policy`.
    pub fn current(policy: &PolicyKind) -> CodeIdentity<'static> {
        CodeIdentity { policy: policy.code_version(), generator: GEN_CODE_VERSION }
    }
}

/// Content key identifying one (config × policy × benchmark × length) run
/// under the current code identity — what [`crate::runner::run_suite_cached`]
/// and `chirp-serve` look up and record under.
///
/// The simulator configuration and the policy enter through their `Debug`
/// representations, which spell out every parameter — so a Figure 6
/// ablation's `Chirp(ChirpConfig { .. })` variants get distinct keys even
/// though they share the display name `"chirp"`, and any `SimConfig` field
/// change (walk penalty sweeps, geometry edits) invalidates exactly the
/// runs it affects. Thread count deliberately does not participate:
/// parallelism cannot change results.
pub fn run_key(sim: &SimConfig, policy: &PolicyKind, benchmark: &str, instructions: usize) -> u64 {
    run_key_with_identity(sim, policy, benchmark, instructions, &CodeIdentity::current(policy))
}

/// [`run_key`] under an explicit code identity. Exists so tests (and any
/// future multi-version tooling) can compute the key an *edited* policy or
/// generator would produce without recompiling; production paths always go
/// through [`run_key`], which pins the identity to the compiled code.
pub fn run_key_with_identity(
    sim: &SimConfig,
    policy: &PolicyKind,
    benchmark: &str,
    instructions: usize,
    identity: &CodeIdentity<'_>,
) -> u64 {
    let mut h = Fnv64::new();
    h.update_field(&format!("{sim:?}"))
        .update_field(&format!("{policy:?}"))
        .update_field(benchmark)
        .update_u64(instructions as u64)
        .update_u64(u64::from(RUN_KEY_VERSION))
        .update_field(identity.policy)
        .update_field(identity.generator);
    h.finish()
}

/// Serialises a completed run into a flat v2 ledger record: the raw
/// counters plus the provenance the query layer filters on — schema
/// version, code identity, the walk penalty the run was timed with, and
/// the workload family derived from the benchmark name.
pub fn record_from_run(run: &BenchRun, sim: &SimConfig, policy: &PolicyKind) -> JsonObject {
    let identity = CodeIdentity::current(policy);
    let r = &run.result;
    let mut obj = JsonObject::new();
    obj.set_u64("schema", RECORD_SCHEMA_VERSION)
        .set_str("benchmark", &run.benchmark)
        .set_str("category", run.category.label())
        .set_str("workload", workload_family(&run.benchmark))
        .set_str("policy", &r.policy)
        .set_str("code_policy", identity.policy)
        .set_str("code_gen", identity.generator)
        .set_u64("walk_penalty", sim.tlb.walk_penalty)
        .set_u64("instructions", r.instructions)
        .set_u64("cycles", r.cycles)
        .set_u64("hits", r.l2_tlb.hits)
        .set_u64("misses", r.l2_tlb.misses)
        .set_u64("dead_evictions", r.l2_tlb.dead_evictions)
        .set_u64("cold_fills", r.l2_tlb.cold_fills)
        .set_u64("l2_accesses", r.l2_accesses)
        .set_u64("prediction_table_accesses", r.prediction_table_accesses)
        .set_u64("l2_accesses_total", r.l2_accesses_total)
        .set_f64("efficiency", r.efficiency);
    obj
}

/// Lifts a ledger record of any schema version to the current (v2) shape.
///
/// v1 lines (written before the `schema` field existed) gain
/// `schema`, the `workload` family derived from their benchmark name, and
/// [`PRE_V2_CODE`] code-identity markers; every field they did carry is
/// preserved byte-for-byte, so migration round-trips (v1 → migrate →
/// re-emit → parse) lose nothing. `walk_penalty` stays absent on migrated
/// lines — v1 never recorded it, and inventing a value would let a query
/// silently mix sweep points. Records already at v2 (or newer) pass
/// through untouched.
pub fn migrate_record(obj: &JsonObject) -> JsonObject {
    if obj.u64_field("schema").unwrap_or(1) >= RECORD_SCHEMA_VERSION {
        return obj.clone();
    }
    let mut out = obj.clone();
    out.set_u64("schema", RECORD_SCHEMA_VERSION)
        .set_str("code_policy", PRE_V2_CODE)
        .set_str("code_gen", PRE_V2_CODE);
    if let Some(benchmark) = obj.str_field("benchmark") {
        let family = workload_family(benchmark).to_string();
        out.set_str("workload", &family);
    }
    out
}

/// Rebuilds a [`BenchRun`] from a ledger record. Returns `None` when any
/// field is missing or mistyped (e.g. a record written by an incompatible
/// build), which callers treat as a cache miss.
pub fn run_from_record(obj: &JsonObject) -> Option<BenchRun> {
    Some(BenchRun {
        benchmark: obj.str_field("benchmark")?.to_string(),
        category: category_from_label(obj.str_field("category")?)?,
        result: RunResult {
            policy: obj.str_field("policy")?.to_string(),
            instructions: obj.u64_field("instructions")?,
            cycles: obj.u64_field("cycles")?,
            l2_tlb: TlbStats {
                hits: obj.u64_field("hits")?,
                misses: obj.u64_field("misses")?,
                dead_evictions: obj.u64_field("dead_evictions")?,
                cold_fills: obj.u64_field("cold_fills")?,
            },
            l2_accesses: obj.u64_field("l2_accesses")?,
            prediction_table_accesses: obj.u64_field("prediction_table_accesses")?,
            l2_accesses_total: obj.u64_field("l2_accesses_total")?,
            efficiency: obj.f64_field("efficiency")?,
        },
    })
}

fn category_from_label(label: &str) -> Option<Category> {
    Category::ALL.into_iter().find(|c| c.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_core::ChirpConfig;

    fn sample_run() -> BenchRun {
        BenchRun {
            benchmark: "web.serve.h512z0.8.1a2b#s3".to_string(),
            category: Category::Web,
            result: RunResult {
                policy: "chirp".to_string(),
                instructions: 500_000,
                cycles: 1_234_567,
                l2_tlb: TlbStats { hits: 400, misses: 99, dead_evictions: 7, cold_fills: 3 },
                l2_accesses: 499,
                prediction_table_accesses: 512,
                l2_accesses_total: 998,
                efficiency: 0.875,
            },
        }
    }

    #[test]
    fn record_roundtrips_bench_run() {
        let run = sample_run();
        let obj = record_from_run(&run, &SimConfig::default(), &PolicyKind::Lru);
        // Through the wire format, as the ledger stores it.
        let decoded = JsonObject::parse(&obj.to_json()).unwrap();
        assert_eq!(run_from_record(&decoded), Some(run));
    }

    #[test]
    fn record_carries_v2_provenance() {
        let sim = SimConfig::default();
        let obj = record_from_run(&sample_run(), &sim, &PolicyKind::Lru);
        assert_eq!(obj.u64_field("schema"), Some(RECORD_SCHEMA_VERSION));
        assert_eq!(obj.str_field("workload"), Some("serve"));
        assert_eq!(obj.str_field("code_policy"), Some(PolicyKind::Lru.code_version()));
        assert_eq!(obj.str_field("code_gen"), Some(GEN_CODE_VERSION));
        assert_eq!(obj.u64_field("walk_penalty"), Some(sim.tlb.walk_penalty));
    }

    #[test]
    fn every_category_label_roundtrips() {
        for cat in Category::ALL {
            assert_eq!(category_from_label(cat.label()), Some(cat));
        }
        assert_eq!(category_from_label("nope"), None);
    }

    #[test]
    fn incomplete_record_reads_as_miss() {
        let mut obj = record_from_run(&sample_run(), &SimConfig::default(), &PolicyKind::Lru);
        obj.set_str("category", "not-a-category");
        assert_eq!(run_from_record(&obj), None);
    }

    /// A ledger line exactly as PR 1 wrote it (no schema/provenance
    /// fields); the shape migration and the cache reader must both keep
    /// handling.
    const V1_LINE: &str =
        "{\"benchmark\":\"crypto.stream.t256l2.9ab1#s0\",\"category\":\"crypto\",\
        \"cold_fills\":3,\"cycles\":1234567,\"dead_evictions\":7,\"efficiency\":0.875,\
        \"hits\":400,\"instructions\":500000,\"key\":\"00000000000000aa\",\"l2_accesses\":499,\
        \"l2_accesses_total\":998,\"misses\":99,\"policy\":\"lru\",\
        \"prediction_table_accesses\":512}";

    #[test]
    fn v1_record_migrates_and_roundtrips() {
        let v1 = JsonObject::parse(V1_LINE).unwrap();
        assert_eq!(v1.u64_field("schema"), None, "fixture must be schema-less");
        let migrated = migrate_record(&v1);
        assert_eq!(migrated.u64_field("schema"), Some(RECORD_SCHEMA_VERSION));
        assert_eq!(migrated.str_field("workload"), Some("stream"));
        assert_eq!(migrated.str_field("code_policy"), Some(PRE_V2_CODE));
        assert_eq!(migrated.str_field("code_gen"), Some(PRE_V2_CODE));
        assert_eq!(migrated.u64_field("walk_penalty"), None, "v1 never recorded the penalty");

        // Re-emit and re-parse: nothing the v1 line carried may change.
        let reparsed = JsonObject::parse(&migrated.to_json()).unwrap();
        for field in ["benchmark", "category", "policy", "key"] {
            assert_eq!(reparsed.str_field(field), v1.str_field(field), "{field}");
        }
        for field in [
            "instructions",
            "cycles",
            "hits",
            "misses",
            "dead_evictions",
            "cold_fills",
            "l2_accesses",
            "prediction_table_accesses",
            "l2_accesses_total",
        ] {
            assert_eq!(reparsed.u64_field(field), v1.u64_field(field), "{field}");
        }
        assert_eq!(reparsed.f64_field("efficiency"), v1.f64_field("efficiency"));
        // The cache reader accepts both shapes.
        assert!(run_from_record(&v1).is_some());
        assert_eq!(run_from_record(&reparsed), run_from_record(&v1));
        // Migration is idempotent.
        assert_eq!(migrate_record(&migrated), migrated);
    }

    #[test]
    fn editing_one_policy_version_invalidates_only_its_keys() {
        let sim = SimConfig::default();
        let lru_now = run_key(&sim, &PolicyKind::Lru, "b", 1000);
        let chirp_kind = PolicyKind::Chirp(ChirpConfig::default());
        let chirp_now = run_key(&sim, &chirp_kind, "b", 1000);

        // Simulate editing CHiRP's implementation: its version string
        // changes, LRU's does not.
        let edited = CodeIdentity { policy: "chirp/2-edited", generator: GEN_CODE_VERSION };
        let chirp_edited = run_key_with_identity(&sim, &chirp_kind, "b", 1000, &edited);
        assert_ne!(chirp_now, chirp_edited, "edited policy code must miss the cache");

        let lru_identity = CodeIdentity::current(&PolicyKind::Lru);
        let lru_after = run_key_with_identity(&sim, &PolicyKind::Lru, "b", 1000, &lru_identity);
        assert_eq!(lru_now, lru_after, "untouched policies keep hitting");

        // A generator edit invalidates runs of every policy.
        let gen_edit = CodeIdentity { policy: PolicyKind::Lru.code_version(), generator: "gen/2" };
        assert_ne!(lru_now, run_key_with_identity(&sim, &PolicyKind::Lru, "b", 1000, &gen_edit));
    }

    #[test]
    fn key_distinguishes_every_identity_component() {
        let sim = SimConfig::default();
        let base = run_key(&sim, &PolicyKind::Lru, "b", 1000);
        assert_ne!(base, run_key(&sim, &PolicyKind::Srrip, "b", 1000));
        assert_ne!(base, run_key(&sim, &PolicyKind::Lru, "c", 1000));
        assert_ne!(base, run_key(&sim, &PolicyKind::Lru, "b", 2000));
        let mut other = sim;
        other.warmup_fraction *= 0.5;
        assert_ne!(base, run_key(&other, &PolicyKind::Lru, "b", 1000));
    }

    #[test]
    fn chirp_ablation_variants_get_distinct_keys() {
        // Display name collapses to "chirp" for every ChirpConfig; the key
        // must still tell Figure 6 ablation rows apart.
        let sim = SimConfig::default();
        let full = PolicyKind::Chirp(ChirpConfig::default());
        let ablated = PolicyKind::Chirp(ChirpConfig { path_length: 1, ..Default::default() });
        assert_eq!(full.name(), ablated.name());
        assert_ne!(run_key(&sim, &full, "b", 1000), run_key(&sim, &ablated, "b", 1000));
    }
}
