//! Bridge between the simulator and `chirp-store`: run-ledger keys and the
//! [`BenchRun`] ⇄ ledger-record mapping.
//!
//! The store crate is deliberately generic — it persists flat JSON objects
//! and leaves key semantics to callers — so everything that knows about
//! `SimConfig`, `PolicyKind` and `RunResult` lives here.

use crate::config::SimConfig;
use crate::metrics::RunResult;
use crate::registry::PolicyKind;
use crate::runner::BenchRun;
use chirp_store::{Fnv64, JsonObject};
use chirp_tlb::TlbStats;
use chirp_trace::Category;

/// Version of the run-key scheme. Participates in every key, so bumping it
/// invalidates all ledger entries at once (e.g. when the simulator's
/// timing model changes in a way `SimConfig` does not capture).
pub const RUN_KEY_VERSION: u32 = 1;

/// Content key identifying one (config × policy × benchmark × length) run.
///
/// The simulator configuration and the policy enter through their `Debug`
/// representations, which spell out every parameter — so a Figure 6
/// ablation's `Chirp(ChirpConfig { .. })` variants get distinct keys even
/// though they share the display name `"chirp"`, and any `SimConfig` field
/// change (walk penalty sweeps, geometry edits) invalidates exactly the
/// runs it affects. Thread count deliberately does not participate:
/// parallelism cannot change results.
pub fn run_key(sim: &SimConfig, policy: &PolicyKind, benchmark: &str, instructions: usize) -> u64 {
    let mut h = Fnv64::new();
    h.update_field(&format!("{sim:?}"))
        .update_field(&format!("{policy:?}"))
        .update_field(benchmark)
        .update_u64(instructions as u64)
        .update_u64(u64::from(RUN_KEY_VERSION));
    h.finish()
}

/// Serialises a completed run into a flat ledger record.
pub fn record_from_run(run: &BenchRun) -> JsonObject {
    let r = &run.result;
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", &run.benchmark)
        .set_str("category", run.category.label())
        .set_str("policy", &r.policy)
        .set_u64("instructions", r.instructions)
        .set_u64("cycles", r.cycles)
        .set_u64("hits", r.l2_tlb.hits)
        .set_u64("misses", r.l2_tlb.misses)
        .set_u64("dead_evictions", r.l2_tlb.dead_evictions)
        .set_u64("cold_fills", r.l2_tlb.cold_fills)
        .set_u64("l2_accesses", r.l2_accesses)
        .set_u64("prediction_table_accesses", r.prediction_table_accesses)
        .set_u64("l2_accesses_total", r.l2_accesses_total)
        .set_f64("efficiency", r.efficiency);
    obj
}

/// Rebuilds a [`BenchRun`] from a ledger record. Returns `None` when any
/// field is missing or mistyped (e.g. a record written by an incompatible
/// build), which callers treat as a cache miss.
pub fn run_from_record(obj: &JsonObject) -> Option<BenchRun> {
    Some(BenchRun {
        benchmark: obj.str_field("benchmark")?.to_string(),
        category: category_from_label(obj.str_field("category")?)?,
        result: RunResult {
            policy: obj.str_field("policy")?.to_string(),
            instructions: obj.u64_field("instructions")?,
            cycles: obj.u64_field("cycles")?,
            l2_tlb: TlbStats {
                hits: obj.u64_field("hits")?,
                misses: obj.u64_field("misses")?,
                dead_evictions: obj.u64_field("dead_evictions")?,
                cold_fills: obj.u64_field("cold_fills")?,
            },
            l2_accesses: obj.u64_field("l2_accesses")?,
            prediction_table_accesses: obj.u64_field("prediction_table_accesses")?,
            l2_accesses_total: obj.u64_field("l2_accesses_total")?,
            efficiency: obj.f64_field("efficiency")?,
        },
    })
}

fn category_from_label(label: &str) -> Option<Category> {
    Category::ALL.into_iter().find(|c| c.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_core::ChirpConfig;

    fn sample_run() -> BenchRun {
        BenchRun {
            benchmark: "web_serve.1a2b#s3".to_string(),
            category: Category::Web,
            result: RunResult {
                policy: "chirp".to_string(),
                instructions: 500_000,
                cycles: 1_234_567,
                l2_tlb: TlbStats { hits: 400, misses: 99, dead_evictions: 7, cold_fills: 3 },
                l2_accesses: 499,
                prediction_table_accesses: 512,
                l2_accesses_total: 998,
                efficiency: 0.875,
            },
        }
    }

    #[test]
    fn record_roundtrips_bench_run() {
        let run = sample_run();
        let obj = record_from_run(&run);
        // Through the wire format, as the ledger stores it.
        let decoded = JsonObject::parse(&obj.to_json()).unwrap();
        assert_eq!(run_from_record(&decoded), Some(run));
    }

    #[test]
    fn every_category_label_roundtrips() {
        for cat in Category::ALL {
            assert_eq!(category_from_label(cat.label()), Some(cat));
        }
        assert_eq!(category_from_label("nope"), None);
    }

    #[test]
    fn incomplete_record_reads_as_miss() {
        let mut obj = record_from_run(&sample_run());
        obj.set_str("category", "not-a-category");
        assert_eq!(run_from_record(&obj), None);
    }

    #[test]
    fn key_distinguishes_every_identity_component() {
        let sim = SimConfig::default();
        let base = run_key(&sim, &PolicyKind::Lru, "b", 1000);
        assert_ne!(base, run_key(&sim, &PolicyKind::Srrip, "b", 1000));
        assert_ne!(base, run_key(&sim, &PolicyKind::Lru, "c", 1000));
        assert_ne!(base, run_key(&sim, &PolicyKind::Lru, "b", 2000));
        let mut other = sim;
        other.warmup_fraction *= 0.5;
        assert_ne!(base, run_key(&other, &PolicyKind::Lru, "b", 1000));
    }

    #[test]
    fn chirp_ablation_variants_get_distinct_keys() {
        // Display name collapses to "chirp" for every ChirpConfig; the key
        // must still tell Figure 6 ablation rows apart.
        let sim = SimConfig::default();
        let full = PolicyKind::Chirp(ChirpConfig::default());
        let ablated = PolicyKind::Chirp(ChirpConfig { path_length: 1, ..Default::default() });
        assert_eq!(full.name(), ablated.name());
        assert_ne!(run_key(&sim, &full, "b", 1000), run_key(&sim, &ablated, "b", 1000));
    }
}
