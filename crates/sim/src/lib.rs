//! Timing-approximate, trace-driven performance model and experiment
//! drivers for the CHiRP reproduction.
//!
//! The model follows the paper's §V methodology: an in-order pipeline that
//! accounts first-order latencies — the cache hierarchy, DRAM, a hashed
//! perceptron branch unit with BTB, L1 i/d TLBs and the unified L2 TLB
//! whose replacement policy is under study — and measures MPKI and IPC
//! across a range of page-walk penalties. Structures warm up on the first
//! half of each trace; statistics cover the second half.
//!
//! ```
//! use chirp_sim::{PolicyKind, SimConfig, Simulator};
//! use chirp_trace::gen::{ContextCopy, WorkloadGen};
//!
//! let trace = ContextCopy::default().generate(20_000, 1);
//! let config = SimConfig::default();
//! let mut sim = Simulator::with_policy(&config, PolicyKind::Lru.build_dispatch(config.tlb.l2, 0));
//! let result = sim.run(&trace, config.warmup_fraction);
//! assert!(result.instructions > 0);
//! ```

pub mod baseline;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod frontend;
pub mod lanes;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod runner;
pub mod sched;
pub mod store_cache;
pub mod telemetry;

pub use config::SimConfig;
pub use engine::{run_stream_units, Simulator};
pub use frontend::{
    group_sig_config, replay_factored, run_factored_group, run_stream_factored, Backend,
    EventSegment, FactoredTrace, FrontEnd,
};
pub use lanes::{run_columnar_lanes, run_columnar_lanes_outcomes, LaneUnit};
pub use metrics::RunResult;
pub use registry::{PolicyDispatch, PolicyKind};
pub use runner::{
    run_policy_group, run_suite, run_suite_cached, run_suite_streamed, BenchRun, CacheStats,
    RunnerConfig, DEFAULT_STREAM_CHUNK,
};
pub use sched::{last_scheduler_summary, SchedulerSummary};
pub use telemetry::{
    read_series, run_suite_telemetry, write_series, EpochRecord, TelemetrySpec, UnitSeries,
};
