//! Figure 9 + §VI-F: CHiRP MPKI improvement over LRU across prediction
//! table sizes (128 B – 8 KB in the paper).

use crate::metrics::{mean, reduction};
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::{group_by_benchmark, run_suite, RunnerConfig};
use chirp_core::ChirpVariant;
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The Figure 9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// (table bytes, mean-MPKI reduction vs LRU as a fraction).
    pub points: Vec<(usize, f64)>,
}

/// Runs the table-size sweep.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig9Result {
    let variants = ChirpVariant::table_size_sweep();
    let mut policies = vec![PolicyKind::Lru];
    let mut sizes = Vec::new();
    for v in &variants {
        sizes.push(v.config.table_bytes() as usize);
        policies.push(PolicyKind::Chirp(v.config));
    }
    let runs = run_suite(suite, &policies, config);
    let grouped = group_by_benchmark(&runs, policies.len());
    let mean_mpki = |idx: usize| {
        let v: Vec<f64> = grouped.iter().map(|g| g[idx].result.mpki()).collect();
        mean(&v)
    };
    let lru = mean_mpki(0);
    let points = sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| (bytes, reduction(lru, mean_mpki(i + 1))))
        .collect();
    Fig9Result { points }
}

/// Renders the sweep as a table with bars.
pub fn render(result: &Fig9Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 9: CHiRP MPKI improvement over LRU vs prediction-table size\n");
    let mut table = Table::new(["table size", "improvement", "bar"]);
    let max = result.points.iter().map(|(_, r)| r.abs()).fold(1e-9, f64::max);
    for (bytes, r) in &result.points {
        let label =
            if *bytes >= 1024 { format!("{}KB", bytes / 1024) } else { format!("{bytes}B") };
        let bar_len = ((r.max(0.0) / max) * 40.0).round() as usize;
        table.row([label, format!("{:+.2}%", r * 100.0), "#".repeat(bar_len)]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn larger_tables_do_not_hurt() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let config = RunnerConfig { instructions: 120_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config);
        assert_eq!(result.points.len(), 7);
        assert_eq!(result.points[0].0, 128);
        assert_eq!(result.points.last().unwrap().0, 8192);
        // The 1KB point (the paper's budget) should be within noise of the
        // largest table.
        let at_1k = result.points.iter().find(|(b, _)| *b == 1024).unwrap().1;
        let at_8k = result.points.last().unwrap().1;
        assert!(
            at_8k >= at_1k - 0.1,
            "8KB ({at_8k:.4}) should not be much worse than 1KB ({at_1k:.4})"
        );
        assert!(render(&result).contains("1KB"));
    }
}
