//! Experiment drivers: one module per paper table/figure.
//!
//! Each module exposes a `run(...)` function returning a typed result plus
//! a `render(...)` producing the textual figure; the `chirp-bench` harness
//! binaries are thin wrappers over these.

pub mod ext_mixed_pages;
pub mod ext_wrong_path;
pub mod fig10_penalty;
pub mod fig11_access_rate;
pub mod fig1_efficiency;
pub mod fig2_history;
pub mod fig3_adaline;
pub mod fig6_ablation;
pub mod fig7_mpki;
pub mod fig8_speedup;
pub mod fig9_table_size;
pub mod opt_bound;
