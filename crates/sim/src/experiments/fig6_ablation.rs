//! Figure 6: effect of correlating features, input transforms, signature
//! formula and table-update policies on L2 TLB miss reduction.
//!
//! The ladder goes from previous policies (SHiP, GHRP, SRRIP) through
//! CHiRP feature subsets (path-only; +conditional history without/with
//! injected zeros; every-hit vs first-hit training; without/with selective
//! hit update) to the full CHiRP configuration.

use crate::metrics::{mean, reduction};
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::{group_by_benchmark, run_suite, RunnerConfig};
use chirp_core::ChirpVariant;
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The Figure 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// (variant name, mean-MPKI reduction vs LRU as a fraction).
    pub rungs: Vec<(String, f64)>,
}

/// Runs the ablation ladder.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig6Result {
    let mut policies = vec![PolicyKind::Lru, PolicyKind::Ship, PolicyKind::Ghrp, PolicyKind::Srrip];
    let mut names: Vec<String> = policies.iter().map(|p| p.name().to_string()).collect();
    for variant in ChirpVariant::ablation_ladder() {
        names.push(variant.name.clone());
        policies.push(PolicyKind::Chirp(variant.config));
    }
    let runs = run_suite(suite, &policies, config);
    let grouped = group_by_benchmark(&runs, policies.len());
    let mean_mpki = |idx: usize| {
        let v: Vec<f64> = grouped.iter().map(|g| g[idx].result.mpki()).collect();
        mean(&v)
    };
    let lru = mean_mpki(0);
    let rungs = names
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, name)| (name.clone(), reduction(lru, mean_mpki(i))))
        .collect();
    Fig6Result { rungs }
}

/// Renders the ladder as a bar table.
pub fn render(result: &Fig6Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: MPKI reduction vs LRU per feature/optimisation rung\n");
    let mut table = Table::new(["variant", "reduction", "bar"]);
    let max = result.rungs.iter().map(|(_, r)| r.abs()).fold(1e-9, f64::max);
    for (name, r) in &result.rungs {
        let bar_len = ((r.max(0.0) / max) * 40.0).round() as usize;
        table.row([name.clone(), format!("{:+.2}%", r * 100.0), "#".repeat(bar_len)]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn full_chirp_tops_the_ladder_rungs() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let config = RunnerConfig { instructions: 120_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config);
        let full = result.rungs.iter().find(|(n, _)| n == "chirp").unwrap().1;
        let path_only = result.rungs.iter().find(|(n, _)| n == "chirp-path-only").unwrap().1;
        assert!(
            full >= path_only - 0.02,
            "full chirp ({full:.4}) should be at least near path-only ({path_only:.4})"
        );
        assert_eq!(result.rungs.len(), 3 + 6);
        assert!(render(&result).contains("chirp"));
    }
}
