//! Figure 1 + §VI-D: TLB efficiency (live-time fraction of entries) per
//! benchmark per policy, scaled by LRU — the paper's heat map.

use crate::metrics::mean;
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::{group_by_benchmark, run_suite, BenchRun, RunnerConfig};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The Figure 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Benchmark names, sorted by LRU efficiency ascending (the paper sorts
    /// rows from low to high efficiency).
    pub benchmarks: Vec<String>,
    /// (policy, per-benchmark efficiency in the sorted order).
    pub series: Vec<(String, Vec<f64>)>,
    /// (policy, mean absolute efficiency improvement over LRU in
    /// percentage points).
    pub mean_improvement: Vec<(String, f64)>,
}

/// Runs the Figure 1 experiment.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig1Result {
    let policies = PolicyKind::paper_lineup();
    let runs = run_suite(suite, &policies, config);
    from_runs(&runs, policies.len())
}

/// Builds the result from pre-computed runs (policy 0 must be LRU).
pub fn from_runs(runs: &[BenchRun], policies: usize) -> Fig1Result {
    let grouped = group_by_benchmark(runs, policies);
    let mut order: Vec<usize> = (0..grouped.len()).collect();
    order.sort_by(|&a, &b| {
        grouped[a][0]
            .result
            .efficiency
            .partial_cmp(&grouped[b][0].result.efficiency)
            .expect("efficiency is finite")
    });
    let benchmarks = order.iter().map(|&i| grouped[i][0].benchmark.clone()).collect();
    let series: Vec<(String, Vec<f64>)> = (0..policies)
        .map(|p| {
            (
                grouped[0][p].result.policy.clone(),
                order.iter().map(|&i| grouped[i][p].result.efficiency).collect(),
            )
        })
        .collect();
    let lru = &series[0].1;
    let mean_improvement = series
        .iter()
        .map(|(name, eff)| {
            let deltas: Vec<f64> = eff.iter().zip(lru).map(|(e, l)| (e - l) * 100.0).collect();
            (name.clone(), mean(&deltas))
        })
        .collect();
    Fig1Result { benchmarks, series, mean_improvement }
}

/// Renders the heat map as rows of shade characters plus the summary table.
pub fn render(result: &Fig1Result) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 1: TLB efficiency heat map (rows: benchmarks low->high; cols: policies)\n",
    );
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let names: Vec<&str> = result.series.iter().map(|(n, _)| n.as_str()).collect();
    out.push_str(&format!("{:>32}  {}\n", "benchmark", names.join(" ")));
    let n = result.benchmarks.len();
    // Show up to 40 evenly-sampled rows to keep the figure readable.
    let rows = n.min(40);
    for r in 0..rows {
        let i = r * n / rows;
        let mut line = format!("{:>32}  ", truncate(&result.benchmarks[i], 32));
        for (name, eff) in &result.series {
            let shade = shades[((eff[i] * 9.0).round() as usize).min(9)];
            let w = name.len().max(1);
            line.push_str(&format!("{:^w$} ", shade));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push('\n');
    let mut table = Table::new(["policy", "mean efficiency", "improvement vs LRU (pp)"]);
    for ((name, eff), (_, imp)) in result.series.iter().zip(&result.mean_improvement) {
        table.row([name.clone(), format!("{:.3}", mean(eff)), format!("{imp:+.2}")]);
    }
    out.push_str(&table.render());
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn chirp_improves_efficiency_over_lru() {
        let suite = build_suite(&SuiteConfig { benchmarks: 5 });
        let config = RunnerConfig { instructions: 150_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config);
        let chirp = result.mean_improvement.iter().find(|(n, _)| n == "chirp").unwrap().1;
        assert!(chirp >= 0.0, "chirp must not reduce mean efficiency, got {chirp:.3}pp");
        // LRU improvement over itself is identically zero.
        assert!(result.mean_improvement[0].1.abs() < 1e-12);
        // Rows are sorted by LRU efficiency.
        let lru = &result.series[0].1;
        assert!(lru.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(render(&result).contains("heat map"));
    }
}
