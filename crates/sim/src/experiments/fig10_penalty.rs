//! Figure 10: average speedup over LRU across a range of L2 TLB miss
//! penalties (the paper sweeps 20–340 cycles; predictive policies' gains
//! grow with the penalty).

use crate::metrics::geomean_speedup;
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::{group_by_benchmark, run_suite, RunnerConfig};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The penalties the paper sweeps (cycles).
pub const PAPER_PENALTIES: [u64; 9] = [20, 60, 100, 150, 200, 240, 280, 320, 340];

/// The Figure 10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Penalties swept.
    pub penalties: Vec<u64>,
    /// (policy, geomean speedup fraction per penalty), LRU excluded.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Runs the Figure 10 sweep. One full suite simulation per penalty.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig, penalties: &[u64]) -> Fig10Result {
    let policies = PolicyKind::paper_lineup();
    let mut series: Vec<(String, Vec<f64>)> =
        policies.iter().skip(1).map(|p| (p.name().to_string(), Vec::new())).collect();
    for &penalty in penalties {
        let mut cfg = config.clone();
        cfg.sim = cfg.sim.with_walk_penalty(penalty);
        let runs = run_suite(suite, &policies, &cfg);
        let grouped = group_by_benchmark(&runs, policies.len());
        for p in 1..policies.len() {
            let speedups: Vec<f64> =
                grouped.iter().map(|g| g[p].result.speedup_over(&g[0].result)).collect();
            series[p - 1].1.push(geomean_speedup(&speedups));
        }
    }
    Fig10Result { penalties: penalties.to_vec(), series }
}

/// Renders the sweep as a table (penalty per row).
pub fn render(result: &Fig10Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 10: geomean speedup over LRU vs page-walk penalty\n");
    let mut headers = vec!["penalty".to_string()];
    headers.extend(result.series.iter().map(|(n, _)| n.clone()));
    let mut table = Table::new(headers);
    for (i, penalty) in result.penalties.iter().enumerate() {
        let mut row = vec![format!("{penalty}")];
        for (_, v) in &result.series {
            row.push(format!("{:+.2}%", v[i] * 100.0));
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn chirp_speedup_grows_with_penalty() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let config = RunnerConfig { instructions: 120_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config, &[20, 320]);
        let chirp = &result.series.iter().find(|(n, _)| n == "chirp").unwrap().1;
        assert!(chirp[1] > chirp[0], "chirp speedup must grow with walk penalty: {chirp:?}");
        assert!(render(&result).contains("320"));
    }
}
