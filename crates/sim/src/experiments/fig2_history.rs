//! Figure 2 + Observation 3: speedup as a function of the global PC
//! history length, with and without branch-path histories.
//!
//! The paper finds PC-only history plateaus around length 15, while adding
//! branch-path history lets CHiRP exploit effective history lengths beyond
//! 30.

use crate::metrics::geomean_speedup;
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::{group_by_benchmark, run_suite, RunnerConfig};
use chirp_core::ChirpVariant;
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// History lengths swept (the paper plots 4–40; our registers support up
/// to 32 path events with injected zeros).
pub const PAPER_LENGTHS: [u32; 8] = [4, 8, 12, 15, 16, 20, 24, 32];

/// The Figure 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Lengths swept.
    pub lengths: Vec<u32>,
    /// Geomean speedup over LRU per length, PC-history-only signature.
    pub pc_only: Vec<f64>,
    /// Geomean speedup over LRU per length, with branch histories (CHiRP).
    pub with_branches: Vec<f64>,
}

/// Runs the Figure 2 sweep.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig, lengths: &[u32]) -> Fig2Result {
    let mut policies = vec![PolicyKind::Lru];
    for &len in lengths {
        policies.push(PolicyKind::Chirp(ChirpVariant::with_path_length(len, false).config));
    }
    for &len in lengths {
        policies.push(PolicyKind::Chirp(ChirpVariant::with_path_length(len, true).config));
    }
    let runs = run_suite(suite, &policies, config);
    let grouped = group_by_benchmark(&runs, policies.len());
    let geomean_for = |policy_idx: usize| {
        let speedups: Vec<f64> =
            grouped.iter().map(|g| g[policy_idx].result.speedup_over(&g[0].result)).collect();
        geomean_speedup(&speedups)
    };
    let pc_only = (0..lengths.len()).map(|i| geomean_for(1 + i)).collect();
    let with_branches = (0..lengths.len()).map(|i| geomean_for(1 + lengths.len() + i)).collect();
    Fig2Result { lengths: lengths.to_vec(), pc_only, with_branches }
}

/// Renders the sweep as a table.
pub fn render(result: &Fig2Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 2: speedup vs global PC history length\n");
    let mut table = Table::new(["history length", "PC-only", "PC + branch history"]);
    for (i, len) in result.lengths.iter().enumerate() {
        table.row([
            format!("{len}"),
            format!("{:+.2}%", result.pc_only[i] * 100.0),
            format!("{:+.2}%", result.with_branches[i] * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn branch_history_beats_pc_only_at_long_lengths() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let config = RunnerConfig { instructions: 120_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config, &[8, 16]);
        assert_eq!(result.lengths, vec![8, 16]);
        let best_pc = result.pc_only.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let best_br = result.with_branches.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_br >= best_pc - 1e-9,
            "branch history must help: pc-only {best_pc:.4} vs +branches {best_br:.4}"
        );
        assert!(render(&result).contains("history length"));
    }
}
