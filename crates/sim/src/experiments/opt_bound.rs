//! Extension experiment: Bélády-optimal upper bound.
//!
//! The paper cites Bélády's algorithm as the unreachable ideal for pure
//! replacement (§V). Because the L1 TLBs are fixed-LRU, the L2 access
//! stream is policy-independent, so a first pass records it and a second
//! pass replays it under the offline-optimal policy. The gap between
//! CHiRP and OPT quantifies how much headroom remains.

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::metrics::mean;
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::RunnerConfig;
use chirp_mem::LruStack;
use chirp_tlb::policies::{OptOracle, OptPolicy};
use chirp_tlb::{PolicyStorage, TlbAccess, TlbGeometry, TlbReplacementPolicy};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// LRU replacement that also records the L2 access stream (VPN order).
pub struct StreamRecorder {
    lru: Vec<LruStack>,
    stream: Vec<u64>,
}

impl StreamRecorder {
    /// Creates the recorder for `geometry`.
    pub fn new(geometry: TlbGeometry) -> Self {
        StreamRecorder {
            lru: (0..geometry.sets()).map(|_| LruStack::new(geometry.ways)).collect(),
            stream: Vec::new(),
        }
    }

    /// The recorded VPN access stream.
    pub fn stream(&self) -> &[u64] {
        &self.stream
    }
}

impl TlbReplacementPolicy for StreamRecorder {
    fn name(&self) -> &str {
        "lru-stream-recorder"
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        self.lru[acc.set].lru()
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        self.stream.push(acc.vpn);
        self.lru[acc.set].touch(way);
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        self.stream.push(acc.vpn);
        self.lru[acc.set].touch(way);
    }

    fn storage(&self) -> PolicyStorage {
        PolicyStorage::default()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// The OPT-bound result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptBoundResult {
    /// Per-benchmark (name, LRU MPKI, CHiRP MPKI, OPT MPKI).
    pub rows: Vec<(String, f64, f64, f64)>,
    /// Mean MPKI (LRU, CHiRP, OPT).
    pub means: (f64, f64, f64),
    /// Fraction of the LRU→OPT gap that CHiRP closes, averaged over
    /// benchmarks with a non-trivial gap.
    pub gap_closed: f64,
}

/// Runs the OPT-bound comparison (two passes per benchmark).
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> OptBoundResult {
    let sim_cfg: SimConfig = config.sim;
    let mut rows = Vec::with_capacity(suite.len());
    let mut gaps = Vec::new();
    for bench in suite {
        let trace = bench.generate(config.instructions);
        // Pass 1: LRU + stream recording. Monomorphized over the concrete
        // recorder type, so the recorded stream is read straight off the
        // policy — no downcast needed.
        let mut sim = Simulator::with_policy(&sim_cfg, StreamRecorder::new(sim_cfg.tlb.l2));
        let lru = sim.run(&trace, sim_cfg.warmup_fraction);
        let stream: Vec<u64> = sim.tlbs().l2().policy().stream().to_vec();
        // Pass 2: Bélády OPT driven by the recorded stream.
        let oracle = OptOracle::from_vpns(stream);
        let mut sim = Simulator::with_policy(&sim_cfg, OptPolicy::new(sim_cfg.tlb.l2, oracle));
        let opt = sim.run(&trace, sim_cfg.warmup_fraction);
        // CHiRP for the same trace.
        let mut sim = Simulator::with_policy(
            &sim_cfg,
            PolicyKind::Chirp(chirp_core::ChirpConfig::default())
                .build_dispatch(sim_cfg.tlb.l2, bench.seed),
        );
        let chirp = sim.run(&trace, sim_cfg.warmup_fraction);

        let (l, c, o) = (lru.mpki(), chirp.mpki(), opt.mpki());
        if l - o > 0.05 {
            gaps.push(((l - c) / (l - o)).clamp(-1.0, 1.5));
        }
        rows.push((bench.name.clone(), l, c, o));
    }
    let means = (
        mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>()),
        mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>()),
    );
    OptBoundResult { rows, means, gap_closed: mean(&gaps) }
}

/// Renders the comparison table.
pub fn render(result: &OptBoundResult) -> String {
    let mut out = String::new();
    out.push_str("Extension: Belady-OPT bound vs LRU and CHiRP (MPKI)\n");
    let mut table = Table::new(["benchmark", "LRU", "CHiRP", "OPT"]);
    for (name, l, c, o) in &result.rows {
        table.row([name.clone(), format!("{l:.3}"), format!("{c:.3}"), format!("{o:.3}")]);
    }
    table.row([
        "MEAN".to_string(),
        format!("{:.3}", result.means.0),
        format!("{:.3}", result.means.1),
        format!("{:.3}", result.means.2),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nCHiRP closes {:.1}% of the LRU->OPT gap on average\n",
        result.gap_closed * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn opt_lower_bounds_both_policies() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let config = RunnerConfig { instructions: 120_000, threads: 1, ..Default::default() };
        let result = run(&suite, &config);
        for (name, lru, _chirp, opt) in &result.rows {
            assert!(*opt <= *lru + 1e-9, "{name}: OPT ({opt:.3}) must not exceed LRU ({lru:.3})");
        }
        assert!(result.means.2 <= result.means.0);
        assert!(render(&result).contains("OPT"));
    }
}
