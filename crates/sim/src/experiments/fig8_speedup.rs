//! Figure 8 + §VI-C: per-benchmark speedup over LRU at a 150-cycle page
//! walk penalty, with geometric-mean summaries.

use crate::metrics::geomean_speedup;
use crate::registry::PolicyKind;
use crate::report::{render_scurve, Table};
use crate::runner::{group_by_benchmark, run_suite, BenchRun, RunnerConfig};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The Figure 8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Walk penalty used (150 in the paper's headline figure).
    pub walk_penalty: u64,
    /// (policy, per-benchmark speedup fraction over LRU), LRU excluded.
    pub series: Vec<(String, Vec<f64>)>,
    /// (policy, geometric-mean speedup fraction), LRU excluded.
    pub geomeans: Vec<(String, f64)>,
}

/// Runs the Figure 8 experiment at the configured walk penalty.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig8Result {
    let policies = PolicyKind::paper_lineup();
    let runs = run_suite(suite, &policies, config);
    from_runs(&runs, policies.len(), config.sim.tlb.walk_penalty)
}

/// Builds the result from pre-computed runs (policy 0 must be LRU).
pub fn from_runs(runs: &[BenchRun], policies: usize, walk_penalty: u64) -> Fig8Result {
    let grouped = group_by_benchmark(runs, policies);
    let mut series: Vec<(String, Vec<f64>)> = (1..policies)
        .map(|p| (grouped[0][p].result.policy.clone(), Vec::with_capacity(grouped.len())))
        .collect();
    for group in &grouped {
        let lru = &group[0].result;
        for p in 1..policies {
            series[p - 1].1.push(group[p].result.speedup_over(lru));
        }
    }
    let geomeans = series.iter().map(|(name, sp)| (name.clone(), geomean_speedup(sp))).collect();
    Fig8Result { walk_penalty, series, geomeans }
}

/// Renders the textual figure.
pub fn render(result: &Fig8Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8: speedup over LRU at a {}-cycle walk penalty\n",
        result.walk_penalty
    ));
    // Percentage series for the S-curve.
    let pct: Vec<(String, Vec<f64>)> = result
        .series
        .iter()
        .map(|(n, v)| (n.clone(), v.iter().map(|s| s * 100.0).collect()))
        .collect();
    out.push_str(&render_scurve(&pct, 12, 100));
    out.push('\n');
    let mut table = Table::new(["policy", "geomean speedup"]);
    for (name, g) in &result.geomeans {
        table.row([name.clone(), format!("{:+.2}%", g * 100.0)]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn chirp_has_the_best_geomean_speedup() {
        let suite = build_suite(&SuiteConfig { benchmarks: 5 });
        let config = RunnerConfig { instructions: 150_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config);
        assert_eq!(result.walk_penalty, 150);
        let chirp = result.geomeans.iter().find(|(n, _)| n == "chirp").unwrap().1;
        for (name, g) in &result.geomeans {
            if name != "chirp" {
                assert!(
                    chirp >= *g - 1e-9,
                    "chirp ({chirp:.4}) must match or beat {name} ({g:.4})"
                );
            }
        }
        assert!(render(&result).contains("geomean"));
    }
}
