//! Extension experiment: commit-time vs naive-speculative history (paper
//! §VI-E).
//!
//! The paper states CHiRP "only updates the tables of counters at commit
//! with right-path branches to prevent pollution of the tables" and keeps
//! a non-speculative history for recovery. This ablation quantifies why:
//! a naive implementation that folds wrong-path fetch into its history
//! registers (no recovery) corrupts the signatures of accesses issued
//! near mispredicted branches.

use crate::metrics::{mean, reduction};
use crate::registry::PolicyKind;
use crate::report::Table;
use crate::runner::{group_by_benchmark, run_suite, RunnerConfig};
use chirp_core::ChirpConfig;
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The wrong-path ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WrongPathResult {
    /// (pollution events per mispredict, mean MPKI, reduction vs LRU).
    pub rows: Vec<(u32, f64, f64)>,
    /// LRU mean MPKI for reference.
    pub lru_mpki: f64,
}

/// Runs the ablation: pollution ∈ {0 (commit-time), 4, 8, 16}.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> WrongPathResult {
    let pollutions = [0u32, 4, 8, 16];
    let mut policies = vec![PolicyKind::Lru];
    for &p in &pollutions {
        policies
            .push(PolicyKind::Chirp(ChirpConfig { wrong_path_pollution: p, ..Default::default() }));
    }
    let runs = run_suite(suite, &policies, config);
    let grouped = group_by_benchmark(&runs, policies.len());
    let mean_mpki = |idx: usize| {
        let v: Vec<f64> = grouped.iter().map(|g| g[idx].result.mpki()).collect();
        mean(&v)
    };
    let lru_mpki = mean_mpki(0);
    let rows = pollutions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let m = mean_mpki(i + 1);
            (p, m, reduction(lru_mpki, m))
        })
        .collect();
    WrongPathResult { rows, lru_mpki }
}

/// Renders the ablation table.
pub fn render(result: &WrongPathResult) -> String {
    let mut out = String::new();
    out.push_str("Extension: commit-time vs naive-speculative history (VI-E)\n");
    out.push_str(&format!("LRU mean MPKI: {:.3}\n", result.lru_mpki));
    let mut table = Table::new(["wrong-path events/mispredict", "mean MPKI", "reduction vs LRU"]);
    for (p, m, r) in &result.rows {
        let label = if *p == 0 { "0 (commit-time, paper)".to_string() } else { format!("{p}") };
        table.row([label, format!("{m:.3}"), format!("{:+.2}%", r * 100.0)]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn commit_time_history_is_at_least_as_good_as_polluted() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let config = RunnerConfig { instructions: 120_000, threads: 2, ..Default::default() };
        let result = run(&suite, &config);
        assert_eq!(result.rows.len(), 4);
        let clean = result.rows[0].1;
        let heavy = result.rows[3].1;
        assert!(
            clean <= heavy + result.lru_mpki * 0.02,
            "commit-time ({clean:.3}) must not lose to heavy pollution ({heavy:.3})"
        );
        assert!(render(&result).contains("commit-time"));
    }
}
