//! Extension experiment: mixed 4 KB / 2 MB page sizes (paper §VIII future
//! work).
//!
//! Sweeps memory fragmentation (the fraction of 2 MB regions that could
//! not be backed by a huge page) and compares three replacement flavours
//! on a shared-capacity mixed TLB: size-blind LRU, size-blind CHiRP-style
//! reuse prediction, and size-aware reuse prediction that prefers dead
//! 4 KB victims over dead 2 MB victims. The TLB is driven by the raw
//! data-access stream of a workload with CHiRP signatures composed from
//! its control flow.

use crate::report::Table;
use chirp_core::{ChirpConfig, SignatureBuilder};
use chirp_tlb::mixed::{MixedPolicy, MixedStats, MixedTlb, ThpMapper};
use chirp_tlb::TlbGeometry;
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedPoint {
    /// Fragmentation percentage (0 = all huge pages allocate).
    pub fragmentation_percent: u32,
    /// Stats per policy: (LRU, reuse prediction, size-aware reuse).
    pub lru: MixedStats,
    /// Size-blind reuse prediction.
    pub reuse: MixedStats,
    /// Size-aware reuse prediction.
    pub size_aware: MixedStats,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedPagesResult {
    /// Per-fragmentation points.
    pub points: Vec<MixedPoint>,
}

fn run_one(
    trace: &[chirp_trace::TraceRecord],
    policy: MixedPolicy,
    fragmentation_percent: u32,
) -> MixedStats {
    let mapper = ThpMapper { fragmentation_percent };
    let mut tlb = MixedTlb::new(TlbGeometry::default(), policy);
    let mut signatures = SignatureBuilder::new(&ChirpConfig::default());
    for rec in trace {
        if let Some(class) = rec.kind.branch_class() {
            signatures.record_branch(rec.pc, class);
        }
        if rec.kind.is_memory() {
            let sig = signatures.signature(rec.pc);
            tlb.access(&mapper, rec.effective_address, sig);
            signatures.record_access(rec.pc);
        }
    }
    tlb.stats()
}

/// Runs the sweep over the merged data streams of `suite`.
pub fn run(
    suite: &[BenchmarkSpec],
    instructions: usize,
    fragmentation: &[u32],
) -> MixedPagesResult {
    let mut points = Vec::new();
    for &frag in fragmentation {
        let mut lru = MixedStats::default();
        let mut reuse = MixedStats::default();
        let mut size_aware = MixedStats::default();
        for bench in suite {
            let trace = bench.generate(instructions);
            let add = |a: &mut MixedStats, b: MixedStats| {
                a.hits_4k += b.hits_4k;
                a.hits_2m += b.hits_2m;
                a.misses += b.misses;
                a.huge_evictions += b.huge_evictions;
            };
            add(&mut lru, run_one(&trace, MixedPolicy::Lru, frag));
            add(&mut reuse, run_one(&trace, MixedPolicy::ReusePrediction, frag));
            add(&mut size_aware, run_one(&trace, MixedPolicy::SizeAwareReuse, frag));
        }
        points.push(MixedPoint { fragmentation_percent: frag, lru, reuse, size_aware });
    }
    MixedPagesResult { points }
}

/// Renders the sweep.
pub fn render(result: &MixedPagesResult) -> String {
    let mut out = String::new();
    out.push_str("Extension: mixed 4KB/2MB pages — miss ratio vs fragmentation (d-side stream)\n");
    let mut table = Table::new([
        "fragmentation",
        "LRU miss%",
        "reuse miss%",
        "size-aware miss%",
        "huge evictions (reuse vs size-aware)",
    ]);
    for p in &result.points {
        table.row([
            format!("{}%", p.fragmentation_percent),
            format!("{:.3}", p.lru.miss_ratio() * 100.0),
            format!("{:.3}", p.reuse.miss_ratio() * 100.0),
            format!("{:.3}", p.size_aware.miss_ratio() * 100.0),
            format!("{} vs {}", p.reuse.huge_evictions, p.size_aware.huge_evictions),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn huge_pages_cut_misses_and_size_aware_protects_them() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let result = run(&suite, 60_000, &[0, 100]);
        let all_huge = &result.points[0];
        let all_base = &result.points[1];
        assert!(
            all_huge.lru.miss_ratio() < all_base.lru.miss_ratio(),
            "huge pages must increase reach: {} vs {}",
            all_huge.lru.miss_ratio(),
            all_base.lru.miss_ratio()
        );
        assert!(
            all_huge.size_aware.huge_evictions <= all_huge.reuse.huge_evictions,
            "size-aware policy must not evict more huge entries"
        );
        assert!(render(&result).contains("fragmentation"));
    }
}
