//! Figure 3 + §III-A: offline ADALINE weight analysis of PC bits.
//!
//! For each benchmark, reuse events (the PC that inserted an L2 TLB entry,
//! and whether the entry was hit before eviction) are recorded under LRU
//! replacement; an L1-regularised ADALINE is trained on the PC bits, and
//! the normalised |weight| per bit forms one heat-map row.

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::runner::RunnerConfig;
use chirp_learn::{train_on_events, ReuseEvent, WeightProfile};
use chirp_mem::LruStack;
use chirp_tlb::{PolicyStorage, TlbAccess, TlbGeometry, TlbReplacementPolicy};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// Number of PC bits analysed (paper Figure 3 spans the low PC bits).
pub const PC_BITS: usize = 24;

/// LRU replacement instrumented to record (inserting PC → reused?) events.
pub struct ReuseRecorder {
    lru: Vec<LruStack>,
    geometry: TlbGeometry,
    insert_pc: Vec<u64>,
    reused: Vec<bool>,
    occupied: Vec<bool>,
    events: Vec<ReuseEvent>,
}

impl ReuseRecorder {
    /// Creates the recorder for `geometry`.
    pub fn new(geometry: TlbGeometry) -> Self {
        ReuseRecorder {
            lru: (0..geometry.sets()).map(|_| LruStack::new(geometry.ways)).collect(),
            insert_pc: vec![0; geometry.entries],
            reused: vec![false; geometry.entries],
            occupied: vec![false; geometry.entries],
            events: Vec::new(),
            geometry,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    fn close(&mut self, i: usize) {
        if self.occupied[i] {
            self.events.push(ReuseEvent { pc: self.insert_pc[i], reused: self.reused[i] });
        }
    }

    /// The recorded events (call after the simulation).
    pub fn events(&self) -> &[ReuseEvent] {
        &self.events
    }
}

impl TlbReplacementPolicy for ReuseRecorder {
    fn name(&self) -> &str {
        "lru-reuse-recorder"
    }

    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        self.lru[acc.set].lru()
    }

    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.reused[i] = true;
        self.lru[acc.set].touch(way);
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.close(i);
        self.occupied[i] = false;
    }

    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        let i = self.idx(acc.set, way);
        self.insert_pc[i] = acc.pc;
        self.reused[i] = false;
        self.occupied[i] = true;
        self.lru[acc.set].touch(way);
    }

    fn storage(&self) -> PolicyStorage {
        PolicyStorage::default()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// The Figure 3 result: one weight profile per benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One row per benchmark.
    pub profiles: Vec<WeightProfile>,
    /// Mean normalised weight per PC bit across benchmarks.
    pub mean_weight_per_bit: Vec<f64>,
}

/// Runs the ADALINE study over `suite`.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig3Result {
    let mut profiles = Vec::with_capacity(suite.len());
    for bench in suite {
        let trace = bench.generate(config.instructions);
        let sim_cfg: SimConfig = config.sim;
        let recorder = ReuseRecorder::new(sim_cfg.tlb.l2);
        let mut sim = Simulator::with_policy(&sim_cfg, recorder);
        let _ = sim.run(&trace, 0.0);
        let recorder = sim.tlbs().l2().policy();
        profiles.push(train_on_events(bench.name.clone(), recorder.events(), PC_BITS));
    }
    let mut mean_weight_per_bit = vec![0.0; PC_BITS];
    for p in &profiles {
        for (i, w) in p.weights.iter().enumerate() {
            mean_weight_per_bit[i] += w / profiles.len() as f64;
        }
    }
    Fig3Result { profiles, mean_weight_per_bit }
}

/// Renders the heat map (one row per benchmark, one column per PC bit).
pub fn render(result: &Fig3Result) -> String {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    out.push_str("Figure 3: ADALINE |weight| per PC bit (columns = bits 0..24)\n");
    out.push_str(&format!("{:>32}  {}\n", "benchmark", "012345678901234567890123"));
    for p in &result.profiles {
        let mut row = String::new();
        for w in &p.weights {
            row.push(shades[((w * 9.0).round() as usize).min(9)]);
        }
        let name: String = p.benchmark.chars().take(32).collect();
        out.push_str(&format!("{name:>32}  {row}  (acc {:.2})\n", p.accuracy));
    }
    out.push_str("\nmean weight per bit:\n");
    for (i, w) in result.mean_weight_per_bit.iter().enumerate() {
        out.push_str(&format!("  bit {i:>2}: {:<40} {w:.3}\n", "#".repeat((w * 40.0) as usize)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn produces_one_profile_per_benchmark() {
        let suite = build_suite(&SuiteConfig { benchmarks: 3 });
        let config = RunnerConfig { instructions: 100_000, threads: 1, ..Default::default() };
        let result = run(&suite, &config);
        assert_eq!(result.profiles.len(), 3);
        for p in &result.profiles {
            assert_eq!(p.weights.len(), PC_BITS);
            assert!(p.weights.iter().all(|w| (0.0..=1.0).contains(w)));
        }
        assert_eq!(result.mean_weight_per_bit.len(), PC_BITS);
        assert!(render(&result).contains("ADALINE"));
    }

    #[test]
    fn recorder_emits_events_with_correct_reuse_flags() {
        use chirp_tlb::{L2Tlb, TranslationKind};
        let geom = TlbGeometry { entries: 4, ways: 2 };
        let mut tlb = L2Tlb::new(geom, Box::new(ReuseRecorder::new(geom)));
        // vpn 0: inserted by pc 0x100, reused; vpns 2,4 (same set) evict it.
        tlb.access(0x100, 0, TranslationKind::Data);
        tlb.access(0x104, 0, TranslationKind::Data); // hit
        tlb.access(0x108, 2, TranslationKind::Data);
        tlb.access(0x10c, 4, TranslationKind::Data); // evicts vpn 0
        let rec = tlb.policy().as_any().and_then(|a| a.downcast_ref::<ReuseRecorder>()).unwrap();
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0], ReuseEvent { pc: 0x100, reused: true });
    }
}
