//! Figure 7 + §VI-A: MPKI comparison of all policies over the suite,
//! rendered as an S-curve sorted by LRU MPKI, with the paper's headline
//! averages.

use crate::metrics::{mean, reduction};
use crate::registry::PolicyKind;
use crate::report::{render_scurve, Table};
use crate::runner::{group_by_benchmark, run_suite, BenchRun, RunnerConfig};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// Per-policy summary of the MPKI comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Policy name.
    pub policy: String,
    /// Arithmetic mean MPKI over the suite.
    pub mean_mpki: f64,
    /// Reduction of mean MPKI relative to LRU (fraction; 0.28 = 28%).
    pub reduction_vs_lru: f64,
    /// Best single-benchmark reduction vs LRU (fraction).
    pub best_reduction: f64,
}

/// The Figure 7 result: per-benchmark MPKI series plus summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Benchmark names, suite order.
    pub benchmarks: Vec<String>,
    /// (policy name, per-benchmark MPKI in suite order).
    pub series: Vec<(String, Vec<f64>)>,
    /// Per-policy summaries (LRU first).
    pub summaries: Vec<PolicySummary>,
}

/// Runs the Figure 7 experiment.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig7Result {
    let policies = PolicyKind::paper_lineup();
    let runs = run_suite(suite, &policies, config);
    from_runs(&runs, policies.len())
}

/// Builds the result from pre-computed runs (shared with other figures).
pub fn from_runs(runs: &[BenchRun], policies: usize) -> Fig7Result {
    let grouped = group_by_benchmark(runs, policies);
    let benchmarks: Vec<String> = grouped.iter().map(|g| g[0].benchmark.clone()).collect();
    let mut series: Vec<(String, Vec<f64>)> = (0..policies)
        .map(|p| (grouped[0][p].result.policy.clone(), Vec::with_capacity(grouped.len())))
        .collect();
    for group in &grouped {
        for (p, run) in group.iter().enumerate() {
            series[p].1.push(run.result.mpki());
        }
    }
    let lru_mean = mean(&series[0].1);
    let summaries = series
        .iter()
        .map(|(name, mpkis)| {
            let m = mean(mpkis);
            let best = mpkis
                .iter()
                .zip(&series[0].1)
                .map(|(v, lru)| reduction(*lru, *v))
                .fold(f64::NEG_INFINITY, f64::max);
            PolicySummary {
                policy: name.clone(),
                mean_mpki: m,
                reduction_vs_lru: reduction(lru_mean, m),
                best_reduction: best,
            }
        })
        .collect();
    Fig7Result { benchmarks, series, summaries }
}

/// Renders the textual figure.
pub fn render(result: &Fig7Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: MPKI S-curve (benchmarks sorted by LRU MPKI)\n");
    out.push_str(&render_scurve(&result.series, 16, 100));
    out.push('\n');
    let mut table = Table::new(["policy", "mean MPKI", "reduction vs LRU", "best case"]);
    for s in &result.summaries {
        table.row([
            s.policy.clone(),
            format!("{:.3}", s.mean_mpki),
            format!("{:+.2}%", s.reduction_vs_lru * 100.0),
            format!("{:+.2}%", s.best_reduction * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn chirp_beats_lru_on_a_small_suite() {
        let suite = build_suite(&SuiteConfig { benchmarks: 6 });
        let config = RunnerConfig { instructions: 120_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config);
        assert_eq!(result.summaries[0].policy, "lru");
        assert_eq!(result.summaries.last().unwrap().policy, "chirp");
        let lru = result.summaries[0].mean_mpki;
        let chirp = result.summaries.last().unwrap().mean_mpki;
        assert!(chirp <= lru, "chirp {chirp} must not exceed lru {lru}");
        let text = render(&result);
        for p in ["lru", "random", "srrip", "ship", "ghrp", "chirp"] {
            assert!(text.contains(p), "render must mention {p}");
        }
    }
}
