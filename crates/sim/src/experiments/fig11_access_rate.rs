//! Figure 11 + §VI-B: density of prediction-table accesses per L2 TLB
//! access for SHiP, GHRP and CHiRP.
//!
//! SHiP and GHRP consult their tables on every access (often twice — a
//! read for the prediction and a write for training), so their rates
//! exceed 100%. CHiRP's first-hit-only and selective-hit-update rules cut
//! table traffic by an order of magnitude (the paper reports a 10.14%
//! mean rate).

use crate::metrics::mean;
use crate::registry::PolicyKind;
use crate::report::{render_density, Table};
use crate::runner::{group_by_benchmark, run_suite, BenchRun, RunnerConfig};
use chirp_trace::suite::BenchmarkSpec;
use serde::{Deserialize, Serialize};

/// The Figure 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// (policy, per-benchmark table-access rate), predictive policies only.
    pub series: Vec<(String, Vec<f64>)>,
    /// (policy, mean rate).
    pub means: Vec<(String, f64)>,
}

/// Runs the Figure 11 experiment.
pub fn run(suite: &[BenchmarkSpec], config: &RunnerConfig) -> Fig11Result {
    let policies = PolicyKind::paper_lineup();
    let runs = run_suite(suite, &policies, config);
    from_runs(&runs, policies.len())
}

/// Builds the result from pre-computed runs.
pub fn from_runs(runs: &[BenchRun], policies: usize) -> Fig11Result {
    let grouped = group_by_benchmark(runs, policies);
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for p in 0..policies {
        let name = grouped[0][p].result.policy.clone();
        if !matches!(name.as_str(), "ship" | "ghrp" | "chirp") {
            continue;
        }
        series.push((name, grouped.iter().map(|g| g[p].result.table_access_rate()).collect()));
    }
    let means = series.iter().map(|(n, v)| (n.clone(), mean(v))).collect();
    Fig11Result { series, means }
}

/// Renders density plots plus the summary table.
pub fn render(result: &Fig11Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 11: prediction-table accesses per L2 TLB access\n\n");
    let hi =
        result.series.iter().flat_map(|(_, v)| v.iter()).cloned().fold(0.0f64, f64::max).max(0.1);
    for (name, values) in &result.series {
        out.push_str(&render_density(name, values, 0.0, hi, 20));
        out.push('\n');
    }
    let mut table = Table::new(["policy", "mean table-access rate"]);
    for (name, m) in &result.means {
        table.row([name.clone(), format!("{:.2}%", m * 100.0)]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    #[test]
    fn chirp_accesses_tables_far_less_than_ship_and_ghrp() {
        let suite = build_suite(&SuiteConfig { benchmarks: 5 });
        let config = RunnerConfig { instructions: 150_000, threads: 4, ..Default::default() };
        let result = run(&suite, &config);
        let get = |p: &str| result.means.iter().find(|(n, _)| n == p).unwrap().1;
        let (ship, ghrp, chirp) = (get("ship"), get("ghrp"), get("chirp"));
        assert!(chirp < ship, "chirp {chirp:.3} must access less than ship {ship:.3}");
        assert!(chirp < ghrp, "chirp {chirp:.3} must access less than ghrp {ghrp:.3}");
        assert!(ghrp > 1.0, "ghrp reads + trains on every access, rate {ghrp:.3}");
        assert!(render(&result).contains("mean table-access rate"));
    }
}
