//! Multi-lane software-pipelined execution of independent simulations.
//!
//! The columnar loop in [`crate::engine`] walks one trace at a time, so
//! every instruction's TLB/cache probes form one long dependent chain and
//! the core spends most of its time waiting on loads. This module runs N
//! independent (benchmark × policy) units through a single instruction
//! loop instead: each *lane* owns its own [`Simulator`] and trace cursor,
//! and the loop steps record `k` of every lane before record `k+1` of any
//! lane. Because the lanes share no state, their probe chains are
//! independent, and interleaving them hands the out-of-order core 2–8
//! loads it can issue in parallel where the single-lane loop offered one.
//! Lanes are instruction-level parallelism, not threads — on a 1-CPU box
//! this is the only way the probe latency gets hidden.
//!
//! Each burst has two phases:
//!
//! 1. **Decode** (per lane): expand up to `BURST` records from the
//!    lane's current [`ChunkCursor`] into a dense [`DecodedBlock`] and
//!    precompute the instruction/data page numbers in a tight pass over
//!    the pc/ea columns (`Lane::decode_burst`).
//! 2. **Step** (interleaved): `for k { for lane { step } }` over the
//!    decoded columns, feeding the precomputed vpns straight into the TLB
//!    probes ([`run_columnar_lanes`]).
//!
//! The warmup/measure split never touches the per-record path: each lane
//! cuts its warmup boundary once, when the boundary's chunk is pulled,
//! via [`TraceChunk::split_at`] — exactly where
//! [`Simulator::run_columnar`] cuts it, so every lane's [`RunResult`] is
//! bit-identical to a sequential `run_columnar` of the same unit (pinned
//! by `tests/equivalence_matrix.rs` across all 9 policies × lane counts).
//!
//! [`TraceChunk::split_at`]: chirp_trace::TraceChunk::split_at

use crate::engine::{Simulator, CHUNK_SIZE};
use crate::metrics::RunResult;
use chirp_tlb::{TlbReplacementPolicy, TlbStats};
use chirp_trace::{vpn, ChunkCursor, DecodedBlock, PackedTrace, TraceChunks};

/// Records decoded per lane per burst. Large enough that the interleaved
/// step loop dominates the per-burst bookkeeping, small enough that all
/// lanes' decoded columns (5 arrays × 8 lanes) stay in L1 cache.
const BURST: usize = 64;

/// One unit of work for the lane engine: a configured simulator, the
/// trace it runs, and its warmup fraction.
///
/// Units are independent by construction — each owns its simulator and
/// the traces are read-only — which is what makes the interleaved
/// schedule trivially equivalent to running them back to back.
pub struct LaneUnit<'t, P: TlbReplacementPolicy> {
    sim: Simulator<P>,
    trace: &'t PackedTrace,
    warmup_fraction: f64,
}

impl<'t, P: TlbReplacementPolicy> LaneUnit<'t, P> {
    /// Bundles a simulator with the trace it should run.
    pub fn new(sim: Simulator<P>, trace: &'t PackedTrace, warmup_fraction: f64) -> Self {
        LaneUnit { sim, trace, warmup_fraction }
    }
}

/// Live per-lane state: the simulator plus a resumable position in its
/// trace's chunk stream.
struct Lane<'t, P: TlbReplacementPolicy> {
    /// Index into the caller's unit vector (results keep input order).
    slot: usize,
    sim: Simulator<P>,
    chunks: TraceChunks<'t>,
    /// Cursor over the current segment (a whole chunk, or one half of the
    /// warmup-boundary chunk).
    cursor: Option<ChunkCursor<'t>>,
    /// The measured half of the warmup-boundary chunk, parked until the
    /// warmup half is fully stepped.
    pending_tail: Option<ChunkCursor<'t>>,
    /// Machine state at the start of the measured window, once opened.
    window: Option<(u64, u64, TlbStats)>,
    /// Absolute index of the first measured record.
    warmup: usize,
    /// Absolute index just past the last chunk pulled from `chunks`.
    chunk_end: usize,
    /// Decoded columns for the in-flight burst.
    block: DecodedBlock,
    /// Instruction-side page numbers, one per decoded record.
    ivpns: Vec<u64>,
    /// Data-side page numbers, one per decoded record (0 for non-memory).
    dvpns: Vec<u64>,
}

impl<'t, P: TlbReplacementPolicy> Lane<'t, P> {
    fn new(slot: usize, unit: LaneUnit<'t, P>) -> Self {
        let len = unit.trace.len();
        let warmup = (((len as f64) * unit.warmup_fraction.clamp(0.0, 1.0)) as usize).min(len);
        Lane {
            slot,
            sim: unit.sim,
            chunks: unit.trace.chunks(CHUNK_SIZE),
            cursor: None,
            pending_tail: None,
            window: None,
            warmup,
            chunk_end: 0,
            block: DecodedBlock::with_capacity(BURST),
            ivpns: Vec::with_capacity(BURST),
            dvpns: Vec::with_capacity(BURST),
        }
    }

    /// Ensures the lane has a non-empty segment to decode from, advancing
    /// through segment and chunk boundaries (and opening the measured
    /// window when the warmup half of a split chunk completes). Returns
    /// `false` once the trace is exhausted.
    ///
    /// Called only between bursts, so every previously decoded record has
    /// already been stepped — which is what makes "the warmup cursor ran
    /// dry" equivalent to "the warmup instructions ran".
    fn refill(&mut self) -> bool {
        loop {
            if self.cursor.as_ref().is_some_and(|c| c.remaining() > 0) {
                return true;
            }
            self.cursor = None;
            if let Some(tail) = self.pending_tail.take() {
                // The warmup half is fully stepped: open the window, then
                // resume with the measured half (which may itself be
                // empty when the boundary sat at the chunk's end).
                self.window = Some(self.sim.window_start());
                self.cursor = Some(tail);
                continue;
            }
            let Some(chunk) = self.chunks.next() else {
                return false;
            };
            let start = self.chunk_end;
            self.chunk_end += chunk.len();
            if self.window.is_none() && self.pending_tail.is_none() && self.warmup <= self.chunk_end
            {
                let (head, tail) = chunk.split_at(self.warmup - start);
                self.cursor = Some(head.cursor());
                self.pending_tail = Some(tail.cursor());
            } else {
                self.cursor = Some(chunk.cursor());
            }
        }
    }

    /// Phase 1: expands the next `burst` records of the current segment
    /// into the dense block and precomputes both page-number columns.
    fn decode_burst(&mut self, burst: usize) {
        let cursor = self.cursor.as_mut().expect("refill() ran before every burst");
        let n = cursor.decode_into(&mut self.block, burst);
        debug_assert_eq!(n, burst, "burst is capped at every lane's segment remainder");
        self.ivpns.clear();
        self.ivpns.extend(self.block.pcs.iter().map(|&pc| vpn(pc)));
        self.dvpns.clear();
        self.dvpns.extend(self.block.eas.iter().map(|&ea| vpn(ea)));
    }

    /// Steps record `k` of the in-flight burst.
    #[inline]
    fn step(&mut self, k: usize) {
        let rec = self.block.record(k);
        self.sim.step_decoded(&rec, self.ivpns[k], self.dvpns[k]);
    }

    /// Assembles the lane's result once its trace is exhausted, handing
    /// back the simulator so callers can inspect final policy state.
    fn finish(mut self) -> (RunResult, Simulator<P>) {
        // A window never opened means the whole trace was warmup (or the
        // trace was empty): measure the empty suffix, like `run_columnar`.
        let window = self.window.take().unwrap_or_else(|| self.sim.window_start());
        let result = self.sim.finish_result(window);
        (result, self.sim)
    }
}

/// Runs every unit to completion, software-pipelining up to `lanes` of
/// them through one interleaved instruction loop. Returns one
/// [`RunResult`] per unit, in input order — each bit-identical to
/// `unit.sim.run_columnar(unit.trace, unit.warmup_fraction)`.
///
/// When a lane's trace ends, the lane is retired and the next pending
/// unit takes its place, so a unit count that does not divide `lanes`
/// (or traces of different lengths) simply tapers the interleave width
/// toward the end.
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn run_columnar_lanes<P: TlbReplacementPolicy>(
    units: Vec<LaneUnit<'_, P>>,
    lanes: usize,
) -> Vec<RunResult> {
    run_columnar_lanes_outcomes(units, lanes).into_iter().map(|(result, _)| result).collect()
}

/// [`run_columnar_lanes`], additionally returning each unit's simulator
/// so callers (the equivalence tests, the runner's stats collection) can
/// inspect final policy and TLB state.
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn run_columnar_lanes_outcomes<'t, P: TlbReplacementPolicy>(
    units: Vec<LaneUnit<'t, P>>,
    lanes: usize,
) -> Vec<(RunResult, Simulator<P>)> {
    assert!(lanes > 0, "lane count must be positive");
    let total = units.len();
    let mut results: Vec<Option<(RunResult, Simulator<P>)>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    let mut pending = units.into_iter().enumerate();
    let mut active: Vec<Lane<'t, P>> = Vec::with_capacity(lanes);
    for (slot, unit) in pending.by_ref().take(lanes) {
        active.push(Lane::new(slot, unit));
    }

    while !active.is_empty() {
        // Retire exhausted lanes, pulling pending units into their place.
        let mut i = 0;
        while i < active.len() {
            if active[i].refill() {
                i += 1;
            } else {
                let lane = active.swap_remove(i);
                let slot = lane.slot;
                results[slot] = Some(lane.finish());
                if let Some((slot, unit)) = pending.next() {
                    active.push(Lane::new(slot, unit));
                }
            }
        }
        if active.is_empty() {
            break;
        }

        // Burst length: bounded by every active lane's current segment so
        // phase 2 never crosses a warmup boundary mid-burst.
        let burst = active
            .iter()
            .map(|l| l.cursor.as_ref().expect("refill() kept the lane").remaining())
            .min()
            .expect("active is non-empty")
            .min(BURST);

        for lane in &mut active {
            lane.decode_burst(burst);
        }
        // The interleaved hot loop: each iteration issues one record per
        // lane, so the lanes' independent TLB/cache probe chains overlap
        // in the core's load queue instead of serialising.
        for k in 0..burst {
            for lane in &mut active {
                lane.step(k);
            }
        }
    }

    results.into_iter().map(|r| r.expect("every unit ran to completion")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::registry::PolicyKind;
    use chirp_trace::gen::{ContextCopy, SpecLoops, WorkloadGen};
    use chirp_trace::PackedTrace;

    fn packed(instructions: usize, seed: u64) -> PackedTrace {
        PackedTrace::from_records(&SpecLoops::default().generate(instructions, seed))
    }

    fn sequential(trace: &PackedTrace, policy: &PolicyKind, warmup: f64) -> RunResult {
        let config = SimConfig::default();
        let mut sim = Simulator::with_policy(&config, policy.build_dispatch(config.tlb.l2, 0));
        sim.run_columnar(trace, warmup)
    }

    fn laned(
        traces: &[PackedTrace],
        policies: &[PolicyKind],
        warmup: f64,
        lanes: usize,
    ) -> Vec<RunResult> {
        let config = SimConfig::default();
        let units = traces
            .iter()
            .zip(policies)
            .map(|(t, p)| {
                LaneUnit::new(
                    Simulator::with_policy(&config, p.build_dispatch(config.tlb.l2, 0)),
                    t,
                    warmup,
                )
            })
            .collect();
        run_columnar_lanes(units, lanes)
    }

    #[test]
    fn single_lane_matches_run_columnar() {
        let trace = packed(20_000, 1);
        let policy = PolicyKind::Lru;
        let expect = sequential(&trace, &policy, 0.5);
        let got = laned(std::slice::from_ref(&trace), &[policy], 0.5, 1);
        assert_eq!(got, vec![expect]);
    }

    #[test]
    fn interleaved_lanes_match_sequential_for_unequal_traces() {
        // Different lengths so lanes retire at different times and the
        // tail tapers below the lane width.
        let traces = vec![packed(12_000, 1), packed(30_000, 2), packed(7_000, 3)];
        let policies =
            vec![PolicyKind::Lru, PolicyKind::Chirp(Default::default()), PolicyKind::Srrip];
        let expect: Vec<RunResult> =
            traces.iter().zip(&policies).map(|(t, p)| sequential(t, p, 0.5)).collect();
        for lanes in [1, 2, 3, 4, 8] {
            assert_eq!(laned(&traces, &policies, 0.5, lanes), expect, "lanes={lanes}");
        }
    }

    #[test]
    fn warmup_extremes_and_empty_trace() {
        let traces = vec![
            packed(9_000, 4),
            PackedTrace::from_records(&[]),
            PackedTrace::from_records(&ContextCopy::default().generate(5_000, 5)),
        ];
        let policies = vec![PolicyKind::Ghrp, PolicyKind::Lru, PolicyKind::Ship];
        for warmup in [0.0, 0.5, 1.0] {
            let expect: Vec<RunResult> =
                traces.iter().zip(&policies).map(|(t, p)| sequential(t, p, warmup)).collect();
            assert_eq!(laned(&traces, &policies, warmup, 2), expect, "warmup={warmup}");
        }
    }

    #[test]
    #[should_panic(expected = "lane count must be positive")]
    fn zero_lanes_rejected() {
        let trace = packed(1_000, 0);
        let _ = laned(std::slice::from_ref(&trace), &[PolicyKind::Lru], 0.5, 0);
    }
}
