//! Policy registry: the set of policies the paper evaluates, constructible
//! by name for the experiment drivers.

use chirp_core::{Chirp, ChirpConfig};
use chirp_tlb::policies::{
    Drrip, Ghrp, GhrpConfig, Lru, PerceptronConfig, PerceptronReuse, RandomPolicy, ShipConfig,
    ShipTlb, Srrip,
};
use chirp_tlb::{TlbGeometry, TlbReplacementPolicy};
use serde::{Deserialize, Serialize};

/// The policies under study (paper §V: LRU, Random, SRRIP, SHiP, GHRP,
/// CHiRP). Bélády-OPT is driven separately because it needs a recorded
/// oracle (see `chirp_tlb::policies::OptPolicy`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// True LRU.
    Lru,
    /// Random victim.
    Random,
    /// Static re-reference interval prediction.
    Srrip,
    /// Signature-based hit prediction (TLB adaptation).
    Ship,
    /// Global history reuse prediction (TLB adaptation).
    Ghrp,
    /// Control-flow history reuse prediction with the given configuration.
    Chirp(ChirpConfig),
    /// Dynamic RRIP (extension baseline, not in the paper's lineup).
    Drrip,
    /// Perceptron reuse prediction (extension baseline; the online form of
    /// the Teran et al. predictor the paper cites in §II-D).
    PerceptronReuse,
}

impl PolicyKind {
    /// The six policies of the paper's headline comparison, CHiRP last.
    pub fn paper_lineup() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Srrip,
            PolicyKind::Ship,
            PolicyKind::Ghrp,
            PolicyKind::Chirp(ChirpConfig::default()),
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Random => "random",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Ship => "ship",
            PolicyKind::Ghrp => "ghrp",
            PolicyKind::Chirp(_) => "chirp",
            PolicyKind::Drrip => "drrip",
            PolicyKind::PerceptronReuse => "perceptron",
        }
    }

    /// Instantiates the policy for `geometry`. `seed` feeds randomised
    /// policies so whole-suite runs stay reproducible.
    pub fn build(&self, geometry: TlbGeometry, seed: u64) -> Box<dyn TlbReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(geometry)),
            PolicyKind::Random => Box::new(RandomPolicy::new(geometry, seed)),
            PolicyKind::Srrip => Box::new(Srrip::new(geometry)),
            PolicyKind::Ship => Box::new(ShipTlb::new(geometry, ShipConfig::default())),
            PolicyKind::Ghrp => Box::new(Ghrp::new(geometry, GhrpConfig::default())),
            PolicyKind::Chirp(config) => Box::new(Chirp::new(geometry, *config)),
            PolicyKind::Drrip => Box::new(Drrip::new(geometry)),
            PolicyKind::PerceptronReuse => {
                Box::new(PerceptronReuse::new(geometry, PerceptronConfig::default()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_order() {
        let names: Vec<&str> = PolicyKind::paper_lineup().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["lru", "random", "srrip", "ship", "ghrp", "chirp"]);
    }

    #[test]
    fn build_produces_matching_names() {
        let geom = TlbGeometry::default();
        for kind in PolicyKind::paper_lineup() {
            let policy = kind.build(geom, 0);
            assert_eq!(policy.name(), kind.name());
        }
    }

    #[test]
    fn chirp_storage_is_smallest_predictive_policy() {
        // §VI-H: CHiRP needs one table vs GHRP's three.
        let geom = TlbGeometry::default();
        let chirp = PolicyKind::Chirp(ChirpConfig::default()).build(geom, 0);
        let ghrp = PolicyKind::Ghrp.build(geom, 0);
        assert!(chirp.storage().table_bits < ghrp.storage().table_bits);
    }
}
