//! Policy registry: the set of policies the paper evaluates, constructible
//! by name for the experiment drivers.

use chirp_core::{Chirp, ChirpConfig};
use chirp_tlb::policies::{
    Drrip, Ghrp, GhrpConfig, Lru, PerceptronConfig, PerceptronReuse, RandomPolicy, ShipConfig,
    ShipTlb, Srrip,
};
use chirp_tlb::{PolicyStorage, ReplayHints, TlbAccess, TlbGeometry, TlbReplacementPolicy};
use chirp_trace::BranchClass;
use serde::{Deserialize, Serialize};

/// The policies under study (paper §V: LRU, Random, SRRIP, SHiP, GHRP,
/// CHiRP). Bélády-OPT is driven separately because it needs a recorded
/// oracle (see `chirp_tlb::policies::OptPolicy`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// True LRU.
    Lru,
    /// Random victim.
    Random,
    /// Static re-reference interval prediction.
    Srrip,
    /// Signature-based hit prediction (TLB adaptation).
    Ship,
    /// Global history reuse prediction (TLB adaptation).
    Ghrp,
    /// Control-flow history reuse prediction with the given configuration.
    Chirp(ChirpConfig),
    /// Dynamic RRIP (extension baseline, not in the paper's lineup).
    Drrip,
    /// Perceptron reuse prediction (extension baseline; the online form of
    /// the Teran et al. predictor the paper cites in §II-D).
    PerceptronReuse,
}

impl PolicyKind {
    /// The six policies of the paper's headline comparison, CHiRP last.
    pub fn paper_lineup() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Srrip,
            PolicyKind::Ship,
            PolicyKind::Ghrp,
            PolicyKind::Chirp(ChirpConfig::default()),
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Random => "random",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Ship => "ship",
            PolicyKind::Ghrp => "ghrp",
            PolicyKind::Chirp(_) => "chirp",
            PolicyKind::Drrip => "drrip",
            PolicyKind::PerceptronReuse => "perceptron",
        }
    }

    /// Code-identity version of this policy's *implementation*. The string
    /// participates in the run-ledger key (`chirp_sim::store_cache::run_key`),
    /// so bumping a policy's version when its victim-selection or update
    /// logic changes invalidates exactly the cached results that policy
    /// produced — every other policy's ledger entries stay valid. Config
    /// changes never need a bump: the full `PolicyKind` debug string (all
    /// parameters) is hashed into the key separately.
    pub fn code_version(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru/1",
            PolicyKind::Random => "random/1",
            PolicyKind::Srrip => "srrip/1",
            PolicyKind::Ship => "ship/1",
            PolicyKind::Ghrp => "ghrp/1",
            PolicyKind::Chirp(_) => "chirp/1",
            PolicyKind::Drrip => "drrip/1",
            PolicyKind::PerceptronReuse => "perceptron/1",
        }
    }

    /// Parses a policy from its command-line/wire spelling: every
    /// [`name`](Self::name) plus `chirp-p<N>` for a CHiRP variant with
    /// path length `N` (the spelling `policy_label` in `chirp-bench`
    /// prints). The inverse of the display names, so tools can round-trip
    /// a lineup through text.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        match name {
            "lru" => Some(PolicyKind::Lru),
            "random" => Some(PolicyKind::Random),
            "srrip" => Some(PolicyKind::Srrip),
            "ship" => Some(PolicyKind::Ship),
            "ghrp" => Some(PolicyKind::Ghrp),
            "chirp" => Some(PolicyKind::Chirp(ChirpConfig::default())),
            "drrip" => Some(PolicyKind::Drrip),
            "perceptron" => Some(PolicyKind::PerceptronReuse),
            other => {
                let path_length: u32 = other.strip_prefix("chirp-p")?.parse().ok()?;
                let config = ChirpConfig { path_length, ..ChirpConfig::default() };
                config.validate().ok()?;
                Some(PolicyKind::Chirp(config))
            }
        }
    }

    /// Instantiates the policy as a boxed trait object — the legacy
    /// dynamic-dispatch form, feature-gated behind `legacy-dyn`. Kept so
    /// the shim-equivalence test can keep constructing the retired
    /// per-record path; everything else uses
    /// [`build_dispatch`](Self::build_dispatch).
    #[cfg(feature = "legacy-dyn")]
    pub fn build(&self, geometry: TlbGeometry, seed: u64) -> Box<dyn TlbReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(geometry)),
            PolicyKind::Random => Box::new(RandomPolicy::new(geometry, seed)),
            PolicyKind::Srrip => Box::new(Srrip::new(geometry)),
            PolicyKind::Ship => Box::new(ShipTlb::new(geometry, ShipConfig::default())),
            PolicyKind::Ghrp => Box::new(Ghrp::new(geometry, GhrpConfig::default())),
            PolicyKind::Chirp(config) => Box::new(Chirp::new(geometry, *config)),
            PolicyKind::Drrip => Box::new(Drrip::new(geometry)),
            PolicyKind::PerceptronReuse => {
                Box::new(PerceptronReuse::new(geometry, PerceptronConfig::default()))
            }
        }
    }

    /// Instantiates the policy as an enum-dispatched [`PolicyDispatch`] —
    /// the statically-dispatched counterpart of the feature-gated `build` for
    /// the monomorphized hot loop. Produces the identical initial policy
    /// state for the same `(geometry, seed)`.
    pub fn build_dispatch(&self, geometry: TlbGeometry, seed: u64) -> PolicyDispatch {
        match self {
            PolicyKind::Lru => PolicyDispatch::Lru(Lru::new(geometry)),
            PolicyKind::Random => PolicyDispatch::Random(RandomPolicy::new(geometry, seed)),
            PolicyKind::Srrip => PolicyDispatch::Srrip(Srrip::new(geometry)),
            PolicyKind::Ship => PolicyDispatch::Ship(ShipTlb::new(geometry, ShipConfig::default())),
            PolicyKind::Ghrp => PolicyDispatch::Ghrp(Ghrp::new(geometry, GhrpConfig::default())),
            PolicyKind::Chirp(config) => {
                PolicyDispatch::Chirp(Box::new(Chirp::new(geometry, *config)))
            }
            PolicyKind::Drrip => PolicyDispatch::Drrip(Drrip::new(geometry)),
            PolicyKind::PerceptronReuse => PolicyDispatch::Perceptron(PerceptronReuse::new(
                geometry,
                PerceptronConfig::default(),
            )),
        }
    }
}

/// Closed enum over the in-tree replacement policies.
///
/// Plugging this into `Simulator<PolicyDispatch>` replaces the per-call
/// vtable lookup of `Box<dyn TlbReplacementPolicy>` with a jump table the
/// compiler can see through, letting the `translate → access →
/// choose_victim` chain inline. The CHiRP variant stays boxed (its state is
/// by far the largest) so the enum itself stays small.
#[derive(Debug)]
pub enum PolicyDispatch {
    /// True LRU.
    Lru(Lru),
    /// Random victim.
    Random(RandomPolicy),
    /// Static RRIP.
    Srrip(Srrip),
    /// SHiP (TLB adaptation).
    Ship(ShipTlb),
    /// GHRP (TLB adaptation).
    Ghrp(Ghrp),
    /// CHiRP.
    Chirp(Box<Chirp>),
    /// Dynamic RRIP.
    Drrip(Drrip),
    /// Perceptron reuse prediction.
    Perceptron(PerceptronReuse),
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            PolicyDispatch::Lru($p) => $body,
            PolicyDispatch::Random($p) => $body,
            PolicyDispatch::Srrip($p) => $body,
            PolicyDispatch::Ship($p) => $body,
            PolicyDispatch::Ghrp($p) => $body,
            PolicyDispatch::Chirp($p) => $body,
            PolicyDispatch::Drrip($p) => $body,
            PolicyDispatch::Perceptron($p) => $body,
        }
    };
}

impl TlbReplacementPolicy for PolicyDispatch {
    fn name(&self) -> &str {
        dispatch!(self, p => p.name())
    }

    #[inline]
    fn choose_victim(&mut self, acc: &TlbAccess) -> usize {
        dispatch!(self, p => p.choose_victim(acc))
    }

    #[inline]
    fn on_hit(&mut self, acc: &TlbAccess, way: usize) {
        dispatch!(self, p => p.on_hit(acc, way))
    }

    #[inline]
    fn on_fill(&mut self, acc: &TlbAccess, way: usize) {
        dispatch!(self, p => p.on_fill(acc, way))
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_evict(set, way))
    }

    #[inline]
    fn on_branch(&mut self, pc: u64, class: BranchClass, taken: bool) {
        dispatch!(self, p => p.on_branch(pc, class, taken))
    }

    #[inline]
    fn on_mispredict(&mut self, pc: u64) {
        dispatch!(self, p => p.on_mispredict(pc))
    }

    fn prediction_table_accesses(&self) -> u64 {
        dispatch!(self, p => p.prediction_table_accesses())
    }

    fn dead_eviction_count(&self) -> u64 {
        dispatch!(self, p => p.dead_eviction_count())
    }

    fn predicts_dead(&self, set: usize, way: usize) -> Option<bool> {
        dispatch!(self, p => p.predicts_dead(set, way))
    }

    fn storage(&self) -> PolicyStorage {
        dispatch!(self, p => p.storage())
    }

    fn replay_hints(&self, sig_code: u64) -> ReplayHints {
        dispatch!(self, p => p.replay_hints(sig_code))
    }

    #[inline]
    fn supply_signature(&mut self, sig: u16) {
        dispatch!(self, p => p.supply_signature(sig))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        dispatch!(self, p => p.as_any())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_order() {
        let names: Vec<&str> = PolicyKind::paper_lineup().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["lru", "random", "srrip", "ship", "ghrp", "chirp"]);
    }

    #[test]
    fn build_produces_matching_names() {
        let geom = TlbGeometry::default();
        for kind in PolicyKind::paper_lineup() {
            let policy = kind.build_dispatch(geom, 0);
            assert_eq!(policy.name(), kind.name());
        }
    }

    /// The legacy boxed constructor must stay name-identical to the
    /// dispatch form while the shim exists.
    #[cfg(feature = "legacy-dyn")]
    #[test]
    fn legacy_build_matches_dispatch_names() {
        let geom = TlbGeometry::default();
        for kind in PolicyKind::paper_lineup() {
            assert_eq!(kind.build(geom, 0).name(), kind.build_dispatch(geom, 0).name());
        }
    }

    #[test]
    fn parse_inverts_every_display_name() {
        let mut lineup = PolicyKind::paper_lineup();
        lineup.push(PolicyKind::Drrip);
        lineup.push(PolicyKind::PerceptronReuse);
        for kind in &lineup {
            assert_eq!(PolicyKind::parse(kind.name()).as_ref(), Some(kind));
        }
        assert_eq!(
            PolicyKind::parse("chirp-p8"),
            Some(PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }))
        );
        assert_eq!(PolicyKind::parse("belady"), None);
        assert_eq!(PolicyKind::parse("chirp-p"), None);
        assert_eq!(PolicyKind::parse("chirp-p0"), None, "invalid config must not parse");
        assert_eq!(PolicyKind::parse(""), None);
    }

    #[test]
    fn chirp_storage_is_smallest_predictive_policy() {
        // §VI-H: CHiRP needs one table vs GHRP's three.
        let geom = TlbGeometry::default();
        let chirp = PolicyKind::Chirp(ChirpConfig::default()).build_dispatch(geom, 0);
        let ghrp = PolicyKind::Ghrp.build_dispatch(geom, 0);
        assert!(chirp.storage().table_bits < ghrp.storage().table_bits);
    }
}
