//! Epoch-resolved run telemetry: phase series for every (benchmark ×
//! policy) unit of a suite run.
//!
//! [`run_suite_telemetry`] drives the same scheduler as
//! [`run_suite`](crate::runner::run_suite) but simulates through
//! [`Simulator::run_instrumented`], collecting one [`UnitSeries`] per
//! (benchmark × policy) pair alongside the ordinary [`BenchRun`]s. The
//! instrumentation is strictly observational — the returned results are
//! bit-identical to an uninstrumented run (pinned by
//! `instrumented_run_matches_plain_suite` below) — but telemetry runs
//! always simulate directly: they bypass the run ledger, because a ledger
//! hit has no epoch series to return.
//!
//! Series serialise to JSONL ([`write_series`]) — one flat object per
//! epoch with the unit identity inlined, so `chirp-store`'s flat JSON
//! parser ([`read_series`]) and external tooling (jq, pandas) read them
//! without a schema.

use crate::engine::Simulator;
use crate::registry::PolicyKind;
use crate::runner::{BenchRun, RunnerConfig};
use crate::sched::{run_units, WorkItem};
use crate::store_cache::run_key;
use chirp_store::json::JsonObject;
use chirp_store::{hex16, parse_hex16, StoreError};
use chirp_telemetry::{write_jsonl, EpochRow, JsonRow, TelemetryMode};
use chirp_tlb::DeadOutcomes;
use chirp_trace::suite::BenchmarkSpec;
use std::path::Path;

/// Names of the per-epoch delta counters, in the order
/// `Simulator::run_instrumented` snapshots them into [`EpochRow::deltas`].
pub const COUNTER_SCHEMA: [&str; 10] = [
    "cycles",
    "hits",
    "misses",
    "cold_fills",
    "dead_evictions",
    "table_accesses",
    "true_dead",
    "false_dead",
    "true_live",
    "false_live",
];

/// How a suite run should be instrumented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Off, end-of-run summary, or full epoch series.
    pub mode: TelemetryMode,
    /// Measured instructions per epoch (ignored when `mode` is off).
    pub epoch_instructions: u64,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec { mode: TelemetryMode::Off, epoch_instructions: 100_000 }
    }
}

/// One epoch of one (benchmark × policy) unit, with the schema counters as
/// named fields.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index within the unit's measured window, from 0.
    pub epoch: u64,
    /// Instructions covered (the epoch length except for a final partial
    /// epoch).
    pub instructions: u64,
    /// Cycles spent.
    pub cycles: u64,
    /// L2 TLB hits.
    pub hits: u64,
    /// L2 TLB misses.
    pub misses: u64,
    /// Fills into invalid ways (no victim evicted).
    pub cold_fills: u64,
    /// Victims chosen because the policy predicted them dead.
    pub dead_evictions: u64,
    /// Prediction-table accesses.
    pub table_accesses: u64,
    /// Evictions of entries predicted dead at fill that were never hit.
    pub true_dead: u64,
    /// Evictions of entries predicted dead at fill that were hit anyway.
    pub false_dead: u64,
    /// Evictions of entries predicted live at fill that were hit.
    pub true_live: u64,
    /// Evictions of entries predicted live at fill that were never hit.
    pub false_live: u64,
    /// L2 TLB occupancy (valid fraction) at the epoch boundary.
    pub occupancy: f64,
}

impl EpochRecord {
    /// Converts a raw sampler row; the deltas must follow
    /// [`COUNTER_SCHEMA`] with occupancy as gauge 0.
    ///
    /// # Panics
    ///
    /// Panics if the row's delta or gauge vector disagrees with the schema.
    pub fn from_row(row: &EpochRow) -> EpochRecord {
        assert_eq!(row.deltas.len(), COUNTER_SCHEMA.len(), "epoch row counter schema mismatch");
        assert_eq!(row.gauges.len(), 1, "epoch row gauge schema mismatch");
        EpochRecord {
            epoch: row.epoch,
            instructions: row.instructions,
            cycles: row.deltas[0],
            hits: row.deltas[1],
            misses: row.deltas[2],
            cold_fills: row.deltas[3],
            dead_evictions: row.deltas[4],
            table_accesses: row.deltas[5],
            true_dead: row.deltas[6],
            false_dead: row.deltas[7],
            true_live: row.deltas[8],
            false_live: row.deltas[9],
            occupancy: row.gauges[0],
        }
    }

    /// L2 TLB misses per 1000 instructions within this epoch.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Prediction-table accesses per L2 TLB access within this epoch —
    /// the epoch-resolved Figure 11 metric.
    pub fn table_access_rate(&self) -> f64 {
        let accesses = self.hits + self.misses;
        if accesses == 0 {
            0.0
        } else {
            self.table_accesses as f64 / accesses as f64
        }
    }

    /// Evictions that fell back to LRU because no entry was predicted
    /// dead. Derived: every miss either cold-fills, evicts a dead-pick, or
    /// evicts the LRU fallback.
    pub fn lru_fallback_evictions(&self) -> u64 {
        (self.misses - self.cold_fills).saturating_sub(self.dead_evictions)
    }

    /// This epoch's dead-prediction outcomes as a [`DeadOutcomes`].
    pub fn dead_outcomes(&self) -> DeadOutcomes {
        DeadOutcomes {
            true_dead: self.true_dead,
            false_dead: self.false_dead,
            true_live: self.true_live,
            false_live: self.false_live,
        }
    }
}

/// The epoch series of one (benchmark × policy) unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSeries {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy name.
    pub policy: String,
    /// The run-ledger key of the (config × policy × benchmark × length)
    /// identity this series instruments
    /// ([`crate::store_cache::run_key`]) — the cross-reference that lets
    /// the query layer join epoch lines to ledger entries without
    /// (benchmark, policy) name matching. `0` for series read from files
    /// written before the field existed.
    pub run_key: u64,
    /// Configured epoch length in instructions.
    pub epoch_instructions: u64,
    /// Per-epoch records, in epoch order.
    pub rows: Vec<EpochRecord>,
}

impl UnitSeries {
    /// Instructions covered by the whole series.
    pub fn total_instructions(&self) -> u64 {
        self.rows.iter().map(|r| r.instructions).sum()
    }

    /// Series-wide prediction-table access rate (sums before dividing, so
    /// epochs weigh by their access counts).
    pub fn mean_table_access_rate(&self) -> f64 {
        let accesses: u64 = self.rows.iter().map(|r| r.hits + r.misses).sum();
        if accesses == 0 {
            0.0
        } else {
            self.rows.iter().map(|r| r.table_accesses).sum::<u64>() as f64 / accesses as f64
        }
    }

    /// Dead-prediction outcomes summed over the series.
    pub fn dead_outcomes(&self) -> DeadOutcomes {
        self.rows.iter().fold(DeadOutcomes::default(), |acc, r| acc.merged(&r.dead_outcomes()))
    }

    /// `(mean, min, max)` of the per-epoch MPKI, or zeros for an empty
    /// series.
    pub fn mpki_stats(&self) -> (f64, f64, f64) {
        if self.rows.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mpkis: Vec<f64> = self.rows.iter().map(EpochRecord::mpki).collect();
        let mean = mpkis.iter().sum::<f64>() / mpkis.len() as f64;
        let min = mpkis.iter().copied().fold(f64::INFINITY, f64::min);
        let max = mpkis.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (mean, min, max)
    }
}

/// Runs `policies` over `suite` with instrumented simulations, returning
/// the ordinary results plus one epoch series per (benchmark × policy)
/// pair, both in `suite` × `policies` order.
///
/// The results are bit-identical to [`run_suite`](crate::runner::run_suite)
/// on the same inputs — instrumentation never feeds back into the
/// simulation. Unlike `run_suite`, this path never consults the store:
/// ledger hits skip simulation and therefore cannot produce a series.
/// With `spec.mode` off the simulations run uninstrumented (today's exact
/// hot loop) and every series is empty — that degenerate call is what the
/// overhead benchmark compares against.
pub fn run_suite_telemetry(
    suite: &[BenchmarkSpec],
    policies: &[PolicyKind],
    config: &RunnerConfig,
    spec: &TelemetrySpec,
) -> (Vec<BenchRun>, Vec<UnitSeries>) {
    let work: Vec<WorkItem> = (0..suite.len())
        .map(|bench| WorkItem { bench, policies: (0..policies.len()).collect() })
        .collect();
    let (results, _) = run_units(
        &work,
        config.worker_threads(),
        config.trace_estimate(),
        config.mem_budget,
        |item| Ok(suite[item.bench].generate_packed(config.instructions)),
        |w, pos, trace| {
            let bench = &suite[work[w].bench];
            let policy = &policies[work[w].policies[pos]];
            let mut sim = Simulator::with_policy(
                &config.sim,
                policy.build_dispatch(config.sim.tlb.l2, bench.seed),
            );
            let (result, rows) = if spec.mode.is_enabled() {
                sim.run_instrumented(trace, config.sim.warmup_fraction, spec.epoch_instructions)
            } else {
                (sim.run_columnar(trace, config.sim.warmup_fraction), Vec::new())
            };
            let run = BenchRun { benchmark: bench.name.clone(), category: bench.category, result };
            let series = UnitSeries {
                benchmark: bench.name.clone(),
                policy: policy.name().to_string(),
                run_key: run_key(&config.sim, policy, &bench.name, config.instructions),
                epoch_instructions: spec.epoch_instructions,
                rows: rows.iter().map(EpochRecord::from_row).collect(),
            };
            (run, series)
        },
    )
    .expect("direct fetch is infallible");
    results.into_iter().flatten().unzip()
}

/// Serialises series to JSONL: one flat object per epoch, unit identity
/// (`benchmark`, `policy`, `run_key`, `epoch_len`) inlined into every
/// line, plus the derived `mpki` and `table_access_rate` for external
/// tooling. The `run_key` is the ledger cross-reference: queries join an
/// epoch line to the run it instruments by key, never by name matching.
///
/// # Errors
///
/// Propagates I/O failures from creating or writing `path`.
pub fn write_series(path: &Path, series: &[UnitSeries]) -> std::io::Result<()> {
    let rows = series.iter().flat_map(|unit| {
        unit.rows.iter().map(|r| {
            JsonRow::new()
                .str("benchmark", &unit.benchmark)
                .str("policy", &unit.policy)
                .str("run_key", &hex16(unit.run_key))
                .u64("epoch_len", unit.epoch_instructions)
                .u64("epoch", r.epoch)
                .u64("instructions", r.instructions)
                .u64("cycles", r.cycles)
                .u64("hits", r.hits)
                .u64("misses", r.misses)
                .u64("cold_fills", r.cold_fills)
                .u64("dead_evictions", r.dead_evictions)
                .u64("table_accesses", r.table_accesses)
                .u64("true_dead", r.true_dead)
                .u64("false_dead", r.false_dead)
                .u64("true_live", r.true_live)
                .u64("false_live", r.false_live)
                .f64("occupancy", r.occupancy)
                .f64("mpki", r.mpki())
                .f64("table_access_rate", r.table_access_rate())
        })
    });
    write_jsonl(path, rows)
}

/// Reads a [`write_series`] file back, regrouping consecutive lines by
/// (benchmark, policy). Derived fields are recomputed, not trusted, so a
/// round-trip is exact.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the file cannot be read and
/// [`StoreError::Corrupt`] for lines that do not parse or lack schema
/// fields.
pub fn read_series(path: &Path) -> Result<Vec<UnitSeries>, StoreError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| StoreError::Io { context: "read telemetry series", source })?;
    let mut series: Vec<UnitSeries> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = JsonObject::parse(line).map_err(|e| {
            StoreError::Corrupt(format!("telemetry series {}:{}: {e}", path.display(), lineno + 1))
        })?;
        let field = |key: &str| {
            obj.u64_field(key).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "telemetry series {}:{}: missing field {key:?}",
                    path.display(),
                    lineno + 1
                ))
            })
        };
        let missing = |key: &str| {
            StoreError::Corrupt(format!(
                "telemetry series {}:{}: missing field {key:?}",
                path.display(),
                lineno + 1
            ))
        };
        let benchmark = obj.str_field("benchmark").ok_or_else(|| missing("benchmark"))?;
        let policy = obj.str_field("policy").ok_or_else(|| missing("policy"))?;
        let record = EpochRecord {
            epoch: field("epoch")?,
            instructions: field("instructions")?,
            cycles: field("cycles")?,
            hits: field("hits")?,
            misses: field("misses")?,
            cold_fills: field("cold_fills")?,
            dead_evictions: field("dead_evictions")?,
            table_accesses: field("table_accesses")?,
            true_dead: field("true_dead")?,
            false_dead: field("false_dead")?,
            true_live: field("true_live")?,
            false_live: field("false_live")?,
            occupancy: obj.f64_field("occupancy").ok_or_else(|| missing("occupancy"))?,
        };
        // Files written before the cross-reference existed have no
        // run_key; 0 marks "unknown" rather than failing the read.
        let unit_key = obj.str_field("run_key").and_then(parse_hex16).unwrap_or(0);
        match series.last_mut() {
            Some(unit)
                if unit.benchmark == benchmark
                    && unit.policy == policy
                    && unit.run_key == unit_key =>
            {
                unit.rows.push(record)
            }
            _ => series.push(UnitSeries {
                benchmark: benchmark.to_string(),
                policy: policy.to_string(),
                run_key: unit_key,
                epoch_instructions: field("epoch_len")?,
                rows: vec![record],
            }),
        }
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;
    use chirp_core::ChirpConfig;
    use chirp_store::TempDir;
    use chirp_trace::suite::{build_suite, SuiteConfig};

    fn spec(epoch: u64) -> TelemetrySpec {
        TelemetrySpec { mode: TelemetryMode::Epochs, epoch_instructions: epoch }
    }

    /// The subsystem's equivalence gate: a fully instrumented suite run
    /// must return bit-identical results to the uninstrumented runner over
    /// a 4-benchmark × 3-policy matrix.
    #[test]
    fn instrumented_run_matches_plain_suite() {
        let suite = build_suite(&SuiteConfig { benchmarks: 4 });
        let policies =
            [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Chirp(ChirpConfig::default())];
        let config = RunnerConfig { instructions: 16_000, threads: 2, ..Default::default() };
        let plain = run_suite(&suite, &policies, &config);
        let (instrumented, series) = run_suite_telemetry(&suite, &policies, &config, &spec(2_000));
        assert_eq!(instrumented, plain, "telemetry must not perturb results");
        assert_eq!(series.len(), 12);
        for (run, unit) in instrumented.iter().zip(&series) {
            assert_eq!(unit.benchmark, run.benchmark);
            assert_eq!(unit.policy, run.result.policy);
            assert!(!unit.rows.is_empty(), "epochs mode must produce rows");
            assert_eq!(
                unit.total_instructions(),
                run.result.instructions,
                "epochs must tile the measured window exactly"
            );
            assert_eq!(
                unit.rows.iter().map(|r| r.misses).sum::<u64>(),
                run.result.l2_tlb.misses,
                "epoch miss deltas must sum to the run total"
            );
        }
    }

    #[test]
    fn off_mode_returns_empty_series_and_identical_results() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Chirp(ChirpConfig::default())];
        let config = RunnerConfig { instructions: 8_000, threads: 2, ..Default::default() };
        let plain = run_suite(&suite, &policies, &config);
        let spec = TelemetrySpec::default();
        let (runs, series) = run_suite_telemetry(&suite, &policies, &config, &spec);
        assert_eq!(runs, plain);
        assert!(series.iter().all(|u| u.rows.is_empty()));
    }

    #[test]
    fn chirp_series_scores_predictions_and_sees_table_accesses() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Chirp(ChirpConfig::default())];
        let config = RunnerConfig { instructions: 40_000, threads: 2, ..Default::default() };
        let (_, series) = run_suite_telemetry(&suite, &policies, &config, &spec(5_000));
        let outcomes: u64 = series.iter().map(|u| u.dead_outcomes().total()).sum();
        assert!(outcomes > 0, "CHiRP predictions must be scored at evictions");
        for unit in &series {
            for row in &unit.rows {
                assert!(
                    row.dead_evictions + row.lru_fallback_evictions()
                        == row.misses - row.cold_fills,
                    "victim sources must partition evictions"
                );
                assert!((0.0..=1.0).contains(&row.occupancy));
            }
        }
    }

    #[test]
    fn series_roundtrip_through_jsonl() {
        let suite = build_suite(&SuiteConfig { benchmarks: 2 });
        let policies = [PolicyKind::Lru, PolicyKind::Chirp(ChirpConfig::default())];
        let config = RunnerConfig { instructions: 10_000, threads: 2, ..Default::default() };
        let (_, series) = run_suite_telemetry(&suite, &policies, &config, &spec(1_500));
        let dir = TempDir::new("telemetry-series");
        let path = dir.path().join("telemetry_epochs.jsonl");
        write_series(&path, &series).expect("write series");
        let back = read_series(&path).expect("read series");
        assert_eq!(back, series, "JSONL round-trip must be exact");
    }

    #[test]
    fn read_series_rejects_garbage() {
        let dir = TempDir::new("telemetry-garbage");
        let path = dir.path().join("bad.jsonl");
        std::fs::write(&path, "{\"benchmark\":\"x\"}\n").expect("write");
        let err = read_series(&path).unwrap_err();
        assert!(err.to_string().contains("missing field"), "got: {err}");
        assert!(read_series(&dir.path().join("absent.jsonl")).is_err());
    }
}
