//! Result records and metric helpers.

use chirp_tlb::TlbStats;
use serde::{Deserialize, Serialize};

/// The measured outcome of simulating one trace under one policy.
///
/// All counters cover the measurement window only (after warmup), except
/// `efficiency` and `table_access_rate`, which are whole-run properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Replacement policy name.
    pub policy: String,
    /// Instructions in the measurement window.
    pub instructions: u64,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// L2 TLB statistics in the measurement window.
    pub l2_tlb: TlbStats,
    /// L2 TLB accesses in the measurement window.
    pub l2_accesses: u64,
    /// Prediction-table accesses over the whole run.
    pub prediction_table_accesses: u64,
    /// L2 TLB accesses over the whole run (Figure 11 denominator).
    pub l2_accesses_total: u64,
    /// TLB efficiency over the whole run (Figure 1 metric).
    pub efficiency: f64,
}

impl RunResult {
    /// L2 TLB misses per 1000 instructions.
    pub fn mpki(&self) -> f64 {
        self.l2_tlb.mpki(self.instructions)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Prediction-table accesses per L2 TLB access (Figure 11). Can exceed
    /// 1.0 for policies that both read and train per access.
    pub fn table_access_rate(&self) -> f64 {
        if self.l2_accesses_total == 0 {
            0.0
        } else {
            self.prediction_table_accesses as f64 / self.l2_accesses_total as f64
        }
    }

    /// Speedup of this run relative to `baseline` (IPC ratio − 1, as a
    /// fraction; 0.048 = the paper's 4.8%).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            0.0
        } else {
            self.ipc() / base - 1.0
        }
    }
}

/// Geometric mean of `1 + x` over the values, minus 1 — the conventional
/// way to average speedups. Returns 0 for an empty slice.
pub fn geomean_speedup(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = speedups.iter().map(|s| (1.0 + s).ln()).sum();
    (log_sum / speedups.len() as f64).exp() - 1.0
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Relative reduction of `new` versus `base` as a fraction
/// (`0.28` = 28% lower). Returns 0 when `base` is 0.
pub fn reduction(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(policy: &str, instructions: u64, cycles: u64, misses: u64) -> RunResult {
        RunResult {
            policy: policy.into(),
            instructions,
            cycles,
            l2_tlb: TlbStats { hits: 0, misses, dead_evictions: 0, cold_fills: 0 },
            l2_accesses: misses,
            prediction_table_accesses: 0,
            l2_accesses_total: misses.max(1),
            efficiency: 0.0,
        }
    }

    #[test]
    fn mpki_and_ipc() {
        let r = result("lru", 1_000_000, 2_000_000, 1510);
        assert!((r.mpki() - 1.51).abs() < 1e-9);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_ipc_ratio() {
        let base = result("lru", 1000, 2000, 0);
        let fast = result("chirp", 1000, 1904, 0); // ~5% faster
        assert!((fast.speedup_over(&base) - (2000.0 / 1904.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_equal_speedups_is_that_speedup() {
        assert!((geomean_speedup(&[0.05, 0.05, 0.05]) - 0.05).abs() < 1e-12);
        assert_eq!(geomean_speedup(&[]), 0.0);
    }

    #[test]
    fn reduction_fraction() {
        assert!((reduction(1.51, 1.08) - 0.2847).abs() < 1e-3);
        assert_eq!(reduction(0.0, 1.0), 0.0);
    }

    #[test]
    fn zero_guards() {
        let r = result("x", 0, 0, 0);
        assert_eq!(r.mpki(), 0.0);
        assert_eq!(r.ipc(), 0.0);
    }
}
