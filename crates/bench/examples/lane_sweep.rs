//! Quick lane-width sweep over the sim_throughput matrix, without the
//! Criterion harness — for iterating on the lane engine's hot loop.
//!
//!     cargo run --release -p chirp-bench --example lane_sweep [max_lanes]

use chirp_bench::lineup9;
use chirp_sim::{run_columnar_lanes, LaneUnit, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, SuiteConfig};
use chirp_trace::PackedTrace;
use std::time::Instant;

const BENCHMARKS: usize = 4;
const INSTRUCTIONS: usize = 60_000;
const REPS: usize = 3;

fn main() {
    let max_lanes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let config = SimConfig::default();
    let policies = lineup9();
    let suite: Vec<(u64, PackedTrace)> = build_suite(&SuiteConfig { benchmarks: BENCHMARKS })
        .into_iter()
        .map(|b| (b.seed, b.generate_packed(INSTRUCTIONS)))
        .collect();
    let total = (suite.len() * policies.len() * INSTRUCTIONS) as f64;

    // Sequential run_columnar baseline (what lanes=1 records in the
    // trajectory file).
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for (seed, trace) in &suite {
            for p in &policies {
                let mut sim =
                    Simulator::with_policy(&config, p.build_dispatch(config.tlb.l2, *seed));
                sim.run_columnar(trace, config.warmup_fraction);
            }
        }
        best = best.max(total / t0.elapsed().as_secs_f64().max(1e-9));
    }
    println!("seq      {:.1}M instr/s", best / 1e6);

    let mut lanes = 1;
    while lanes <= max_lanes {
        let mut best = 0.0f64;
        for _ in 0..REPS {
            let units: Vec<LaneUnit<chirp_sim::PolicyDispatch>> = suite
                .iter()
                .flat_map(|(seed, trace)| {
                    policies.iter().map(move |p| {
                        LaneUnit::new(
                            Simulator::with_policy(&config, p.build_dispatch(config.tlb.l2, *seed)),
                            trace,
                            config.warmup_fraction,
                        )
                    })
                })
                .collect();
            let t0 = Instant::now();
            run_columnar_lanes(units, lanes);
            best = best.max(total / t0.elapsed().as_secs_f64().max(1e-9));
        }
        println!("lanes={lanes:2}  {:.1}M instr/s", best / 1e6);
        lanes *= 2;
    }
}
