//! Scratch profiler for the per-instruction loop (not shipped in reports).

use chirp_branch::{BranchConfig, BranchUnit};
use chirp_mem::{HierarchyConfig, MemoryHierarchy};
use chirp_sim::{PolicyKind, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, SuiteConfig};
use chirp_trace::TraceSource;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let suite = build_suite(&SuiteConfig { benchmarks: 4 });
    let config = SimConfig::default();
    let n = 60_000usize;
    for bench in &suite {
        let trace = bench.generate_packed(n);
        let records: Vec<_> = trace.records().collect();

        // Mix.
        let mem = records.iter().filter(|r| r.kind.is_memory()).count();
        let br = records.iter().filter(|r| r.kind.branch_class().is_some()).count();

        // Full run.
        let mut full = std::time::Duration::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut sim = Simulator::with_policy(
                &config,
                PolicyKind::Lru.build_dispatch(config.tlb.l2, bench.seed),
            );
            black_box(sim.run_columnar(&trace, 0.5));
            full = full.min(t0.elapsed());
        }

        // Iteration only.
        let mut iter_only = std::time::Duration::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for chunk in trace.chunks(4096) {
                for rec in chunk.records() {
                    acc = acc.wrapping_add(rec.pc ^ rec.effective_address ^ rec.target);
                }
            }
            black_box(acc);
            iter_only = iter_only.min(t0.elapsed());
        }

        // Branch unit only.
        let mut branch_only = std::time::Duration::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut bu = BranchUnit::new(BranchConfig::default());
            let mut acc = 0u64;
            for rec in &records {
                acc += bu.observe(rec);
            }
            black_box(acc);
            branch_only = branch_only.min(t0.elapsed());
        }

        // Memory hierarchy only (fetch + data).
        let mut mem_only = std::time::Duration::MAX;
        let mut mh = MemoryHierarchy::new(HierarchyConfig::default());
        for rep in 0..5 {
            let t0 = Instant::now();
            let mut fresh = MemoryHierarchy::new(HierarchyConfig::default());
            let mut acc = 0u64;
            for rec in &records {
                acc += fresh.fetch(rec.pc);
                if rec.kind.is_memory() {
                    acc += fresh.load(rec.effective_address);
                }
            }
            black_box(acc);
            mem_only = mem_only.min(t0.elapsed());
            if rep == 0 {
                mh = fresh;
            }
        }

        let (l1i, l1d, l2, l3) = mh.stats();
        println!(
            "    miss l1i {:.3} l1d {:.3} l2 {:.3} l3 {:.3} dram {}",
            l1i.miss_ratio(),
            l1d.miss_ratio(),
            l2.miss_ratio(),
            l3.miss_ratio(),
            mh.dram_accesses()
        );
        println!(
            "{:>28}: full {:>7.1?} iter {:>6.1?} branch {:>6.1?} mem {:>7.1?} | mem% {:.0} br% {:.0}",
            bench.name,
            full,
            iter_only,
            branch_only,
            mem_only,
            mem as f64 / n as f64 * 100.0,
            br as f64 / n as f64 * 100.0,
        );
    }
}
