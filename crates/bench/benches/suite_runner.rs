//! Suite-runner benchmark: packed-trace scheduler vs the flat benchwise
//! baseline, at 1 and N threads, over a 4-benchmark × 9-policy matrix,
//! plus an epoch-telemetry variant that guards instrumentation overhead
//! (`telemetry_overhead_8t` in the trajectory is instrumented wall-clock
//! over uninstrumented at 8 threads).
//!
//! Prints the usual Criterion lines and appends one JSON object per
//! invocation to `BENCH_runner.json` at the workspace root (override with
//! `CHIRP_BENCH_OUT`), so wall-clock and peak-trace-memory trajectories
//! accumulate across commits. Peak memory for the scheduler is measured
//! (the scheduler tracks resident packed bytes); for the baseline it is
//! the analytic peak — `min(threads, benchmarks)` flat 40-byte-per-record
//! traces resident at once, which the benchwise design guarantees.

use chirp_bench::lineup9;
use chirp_sim::baseline::run_suite_benchwise;
use chirp_sim::{
    last_scheduler_summary, run_suite, run_suite_telemetry, RunnerConfig, TelemetrySpec,
};
use chirp_telemetry::TelemetryMode;
use chirp_trace::suite::{build_suite, BenchmarkSpec, SuiteConfig};
use chirp_trace::TraceRecord;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

const BENCHMARKS: usize = 4;
const INSTRUCTIONS: usize = 60_000;
const THREADS_HIGH: usize = 8;
/// Criterion samples per variant; the trajectory line records this as
/// `reps` so every line in BENCH_runner.json carries its sample count.
const SAMPLES: usize = 3;

fn config(threads: usize) -> RunnerConfig {
    RunnerConfig { instructions: INSTRUCTIONS, threads, ..Default::default() }
}

/// Median of the recorded per-iteration wall times, in seconds.
fn median_secs(samples: &Mutex<Vec<f64>>) -> f64 {
    let mut v = samples.lock().expect("samples lock").clone();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v.get(v.len() / 2).copied().unwrap_or(0.0)
}

struct Measured {
    name: &'static str,
    median_secs: f64,
    peak_trace_bytes: u64,
}

/// Which runner a benchmark variant exercises.
#[derive(Clone, Copy)]
enum Variant {
    Benchwise,
    Sched,
    /// Scheduler with epoch telemetry on — the instrumentation overhead
    /// guard. Must stay close to `Sched` wall-clock.
    SchedTelemetry,
}

fn bench_suite_runner(c: &mut Criterion) {
    let suite: Vec<BenchmarkSpec> = build_suite(&SuiteConfig { benchmarks: BENCHMARKS });
    let policies = lineup9();
    let telemetry =
        TelemetrySpec { mode: TelemetryMode::Epochs, epoch_instructions: INSTRUCTIONS as u64 / 10 };

    // Equivalence sanity before timing anything: the runners must agree
    // bit-for-bit or the comparison is meaningless. This also pins the
    // telemetry guarantee: instrumented results match the baseline.
    let reference = run_suite_benchwise(&suite, &policies, &config(2));
    assert_eq!(
        run_suite(&suite, &policies, &config(2)),
        reference,
        "scheduler must reproduce the baseline bit-for-bit"
    );
    assert_eq!(
        run_suite_telemetry(&suite, &policies, &config(2), &telemetry).0,
        reference,
        "instrumented runs must reproduce the baseline bit-for-bit"
    );

    let flat_bytes_per_trace = (INSTRUCTIONS * std::mem::size_of::<TraceRecord>()) as u64;
    let mut measured: Vec<Measured> = Vec::new();
    let mut group = c.benchmark_group("suite_runner");
    group.sample_size(SAMPLES);

    for (name, threads, variant) in [
        ("baseline_benchwise_1t", 1, Variant::Benchwise),
        ("baseline_benchwise_8t", THREADS_HIGH, Variant::Benchwise),
        ("sched_packed_1t", 1, Variant::Sched),
        ("sched_packed_8t", THREADS_HIGH, Variant::Sched),
        ("telemetry_epochs_8t", THREADS_HIGH, Variant::SchedTelemetry),
    ] {
        let samples = Mutex::new(Vec::new());
        let mut peak_bytes = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = config(threads);
                let t0 = Instant::now();
                let runs = match variant {
                    Variant::Benchwise => run_suite_benchwise(&suite, &policies, &cfg),
                    Variant::Sched => run_suite(&suite, &policies, &cfg),
                    Variant::SchedTelemetry => {
                        run_suite_telemetry(&suite, &policies, &cfg, &telemetry).0
                    }
                };
                samples.lock().expect("samples lock").push(t0.elapsed().as_secs_f64());
                runs
            })
        });
        peak_bytes = match variant {
            Variant::Benchwise => threads.min(BENCHMARKS) as u64 * flat_bytes_per_trace,
            Variant::Sched | Variant::SchedTelemetry => {
                last_scheduler_summary().expect("scheduler ran").peak_resident_bytes
            }
        }
        .max(peak_bytes);
        measured.push(Measured {
            name,
            median_secs: median_secs(&samples),
            peak_trace_bytes: peak_bytes,
        });
    }
    group.finish();

    write_trajectory(&measured);
}

/// Appends one JSON line with every measurement plus the derived headline
/// ratios to the trajectory file.
fn write_trajectory(measured: &[Measured]) {
    let by_name = |n: &str| measured.iter().find(|m| m.name == n).expect("measured");
    let base_8t = by_name("baseline_benchwise_8t");
    let sched_8t = by_name("sched_packed_8t");
    let telemetry_8t = by_name("telemetry_epochs_8t");
    let speedup_8t = base_8t.median_secs / sched_8t.median_secs.max(1e-9);
    let mem_ratio = sched_8t.peak_trace_bytes as f64 / base_8t.peak_trace_bytes.max(1) as f64;
    let telemetry_overhead_8t = telemetry_8t.median_secs / sched_8t.median_secs.max(1e-9);
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // On a single logical CPU an 8-thread run cannot beat 1-thread wall
    // clock, so flag the speedup number as not meaningful rather than
    // letting a ~1.0 ratio read as a regression.
    let scaling_expected = cpus > 1;
    if !scaling_expected {
        println!(
            "note: {cpus} cpu available — speedup_8t {speedup_8t:.3} reflects scheduling \
             overhead, not thread scaling (thread_scaling_expected=false)"
        );
    }

    let fields: Vec<String> = measured
        .iter()
        .map(|m| {
            format!(
                "\"{}\":{{\"median_secs\":{:.6},\"peak_trace_bytes\":{}}}",
                m.name, m.median_secs, m.peak_trace_bytes
            )
        })
        .collect();
    let line = format!(
        "{{\"bench\":\"suite_runner\",\"benchmarks\":{BENCHMARKS},\"policies\":9,\
         \"instructions\":{INSTRUCTIONS},\"reps\":{SAMPLES},\"cpus\":{cpus},\
         \"thread_scaling_expected\":{scaling_expected},{},\
         \"speedup_8t\":{speedup_8t:.3},\"peak_mem_ratio_8t\":{mem_ratio:.4},\
         \"telemetry_overhead_8t\":{telemetry_overhead_8t:.3}}}",
        fields.join(",")
    );

    let path = std::env::var_os("CHIRP_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|| {
        // crates/bench/Cargo.toml -> workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_runner.json")
    });
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open BENCH_runner.json");
    writeln!(f, "{line}").expect("append BENCH_runner.json");
    println!("appended suite_runner trajectory to {}", path.display());
}

criterion_group!(benches, bench_suite_runner);
criterion_main!(benches);
