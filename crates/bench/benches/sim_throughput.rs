//! Single-thread simulation throughput: the monomorphized columnar hot
//! loop (`Simulator::with_policy` over `PolicyDispatch` +
//! `run_columnar`) against the legacy dynamic-dispatch per-record path
//! (`Simulator::new` over `Box<dyn TlbReplacementPolicy>` + `run`), per
//! policy, in instructions per second.
//!
//! Besides the Criterion lines, appends one JSON object to
//! `BENCH_runner.json` at the workspace root (override with
//! `CHIRP_BENCH_OUT`) carrying `instr_per_sec_1t` — the headline
//! single-thread throughput of the new path over the whole suite — plus
//! the legacy path's `instr_per_sec_1t_dyn` and the derived
//! `columnar_speedup`. `scripts/bench.sh` compares `instr_per_sec_1t`
//! against the previous line and warns on >10% regressions.

use chirp_bench::{lineup9, policy_label};
use chirp_sim::{PolicyKind, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, BenchmarkSpec, SuiteConfig};
use chirp_trace::PackedTrace;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::path::PathBuf;
use std::time::Instant;

const BENCHMARKS: usize = 4;
const INSTRUCTIONS: usize = 60_000;

fn run_legacy(config: &SimConfig, policy: &PolicyKind, trace: &PackedTrace, seed: u64) -> u64 {
    let mut sim = Simulator::new(config, policy.build(config.tlb.l2, seed));
    sim.run(trace, config.warmup_fraction).instructions
}

fn run_columnar(config: &SimConfig, policy: &PolicyKind, trace: &PackedTrace, seed: u64) -> u64 {
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, seed));
    sim.run_columnar(trace, config.warmup_fraction).instructions
}

/// Instructions per second over the whole (benchmark × policy) matrix,
/// best of `reps` sweeps so a scheduler hiccup cannot sink the number.
fn matrix_instr_per_sec(
    suite: &[(BenchmarkSpec, PackedTrace)],
    policies: &[PolicyKind],
    config: &SimConfig,
    columnar: bool,
    reps: usize,
) -> f64 {
    let total: u64 = (suite.len() * policies.len()) as u64 * INSTRUCTIONS as u64;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        for (bench, trace) in suite {
            for policy in policies {
                if columnar {
                    run_columnar(config, policy, trace, bench.seed);
                } else {
                    run_legacy(config, policy, trace, bench.seed);
                }
            }
        }
        best = best.max(total as f64 / t0.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn bench_sim_throughput(c: &mut Criterion) {
    let config = SimConfig::default();
    let policies = lineup9();
    let suite: Vec<(BenchmarkSpec, PackedTrace)> =
        build_suite(&SuiteConfig { benchmarks: BENCHMARKS })
            .into_iter()
            .map(|b| {
                let trace = b.generate_packed(INSTRUCTIONS);
                (b, trace)
            })
            .collect();

    // Per-policy Criterion lines on the first benchmark's trace: columnar
    // (the shipping path) and the legacy dyn path side by side.
    let (bench0, trace0) = &suite[0];
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace0.len() as u64));
    for policy in &policies {
        let label = policy_label(policy);
        group.bench_function(&format!("columnar/{label}"), |b| {
            b.iter_batched(
                || {
                    Simulator::with_policy(
                        &config,
                        policy.build_dispatch(config.tlb.l2, bench0.seed),
                    )
                },
                |mut sim| sim.run_columnar(trace0, config.warmup_fraction),
                BatchSize::LargeInput,
            );
        });
        group.bench_function(&format!("dyn/{label}"), |b| {
            b.iter_batched(
                || Simulator::new(&config, policy.build(config.tlb.l2, bench0.seed)),
                |mut sim| sim.run(trace0, config.warmup_fraction),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    // Headline numbers for the trajectory file: whole-matrix throughput.
    let instr_per_sec_1t = matrix_instr_per_sec(&suite, &policies, &config, true, 3);
    let instr_per_sec_1t_dyn = matrix_instr_per_sec(&suite, &policies, &config, false, 3);
    let columnar_speedup = instr_per_sec_1t / instr_per_sec_1t_dyn.max(1e-9);
    println!(
        "sim_throughput: columnar {:.0} instr/s vs dyn {:.0} instr/s ({columnar_speedup:.2}x)",
        instr_per_sec_1t, instr_per_sec_1t_dyn
    );
    write_trajectory(instr_per_sec_1t, instr_per_sec_1t_dyn, columnar_speedup);
}

fn write_trajectory(instr_per_sec_1t: f64, instr_per_sec_1t_dyn: f64, columnar_speedup: f64) {
    let line = format!(
        "{{\"bench\":\"sim_throughput\",\"benchmarks\":{BENCHMARKS},\"policies\":9,\
         \"instructions\":{INSTRUCTIONS},\"instr_per_sec_1t\":{instr_per_sec_1t:.0},\
         \"instr_per_sec_1t_dyn\":{instr_per_sec_1t_dyn:.0},\
         \"columnar_speedup\":{columnar_speedup:.3}}}"
    );
    let path = std::env::var_os("CHIRP_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|| {
        // crates/bench/Cargo.toml -> workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_runner.json")
    });
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open BENCH_runner.json");
    writeln!(f, "{line}").expect("append BENCH_runner.json");
    println!("appended sim_throughput trajectory to {}", path.display());
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
