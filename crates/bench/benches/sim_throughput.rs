//! Single-thread simulation throughput: the monomorphized columnar hot
//! loop (`Simulator::with_policy` over `PolicyDispatch` +
//! `run_columnar`), the multi-lane software-pipelined engine
//! (`run_columnar_lanes`) at lane widths 2/4/8, and the factored engine
//! (one shared front-end pass + 9 replay back-ends per benchmark,
//! `run_factored_group`), per policy and over the whole (benchmark ×
//! policy) matrix, in instructions per second.
//!
//! Besides the Criterion lines, appends one JSON object to
//! `BENCH_runner.json` at the workspace root (override with
//! `CHIRP_BENCH_OUT`) carrying `instr_per_sec_1t` — the lanes=1
//! sequential baseline — plus `instr_per_sec_1t_lanes{2,4,8}`, the
//! derived `best_lanes`/`lane_speedup`, and the factored trio
//! `instr_per_sec_1t_factored` / `frontend_events_per_instr` /
//! `factored_speedup` (factored over sequential at lineup width 9).
//! `scripts/bench.sh` compares the best-lane and factored numbers
//! against the previous line and warns on >10% regressions, and checks
//! the `factored_speedup >= 3.0` acceptance floor.
//!
//! Each headline number is the best of `CHIRP_BENCH_REPS` sweeps
//! (default 3) and the line records the reps used. Best-of-N is the
//! noise protocol: a genuine code regression slows every sweep, while a
//! noisy-host slide (CPU contention in a shared container) leaves at
//! least one clean sweep at higher N — raise the env var before trusting
//! a drop. The committed trajectory's 25.3M -> 15.4M instr/s slide is of
//! the second kind: it spans entries with no simulator-code changes and
//! tracks host load (see EXPERIMENTS.md "Throughput trajectory noise").

use chirp_bench::{lineup9, policy_label};
use chirp_sim::{run_columnar_lanes, LaneUnit, PolicyKind, SimConfig, Simulator};
use chirp_trace::suite::{build_suite, BenchmarkSpec, SuiteConfig};
use chirp_trace::PackedTrace;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::path::PathBuf;
use std::time::Instant;

const BENCHMARKS: usize = 4;
const INSTRUCTIONS: usize = 60_000;
/// Lane widths swept for the trajectory file, lanes=1 first.
const LANES: [usize; 4] = [1, 2, 4, 8];

fn run_columnar(config: &SimConfig, policy: &PolicyKind, trace: &PackedTrace, seed: u64) -> u64 {
    let mut sim = Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, seed));
    sim.run_columnar(trace, config.warmup_fraction).instructions
}

/// The whole matrix as lane units, in suite × policy order.
fn matrix_units<'t>(
    suite: &'t [(BenchmarkSpec, PackedTrace)],
    policies: &[PolicyKind],
    config: &SimConfig,
) -> Vec<LaneUnit<'t, chirp_sim::PolicyDispatch>> {
    let mut units = Vec::with_capacity(suite.len() * policies.len());
    for (bench, trace) in suite {
        for policy in policies {
            units.push(LaneUnit::new(
                Simulator::with_policy(config, policy.build_dispatch(config.tlb.l2, bench.seed)),
                trace,
                config.warmup_fraction,
            ));
        }
    }
    units
}

/// Instructions per second over the whole (benchmark × policy) matrix at
/// the given lane width, best of `reps` sweeps so a scheduler hiccup
/// cannot sink the number. `lanes == 1` measures the sequential
/// `run_columnar` baseline path itself, not the lane engine at width 1.
fn matrix_instr_per_sec(
    suite: &[(BenchmarkSpec, PackedTrace)],
    policies: &[PolicyKind],
    config: &SimConfig,
    lanes: usize,
    reps: usize,
) -> f64 {
    let total: u64 = (suite.len() * policies.len()) as u64 * INSTRUCTIONS as u64;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        if lanes == 1 {
            for (bench, trace) in suite {
                for policy in policies {
                    run_columnar(config, policy, trace, bench.seed);
                }
            }
        } else {
            run_columnar_lanes(matrix_units(suite, policies, config), lanes);
        }
        best = best.max(total as f64 / t0.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

/// Instructions per second over the whole matrix through the factored
/// engine: per benchmark, ONE front-end pass over the trace and one tiny
/// replay back-end per policy (`run_factored_group` at lineup width 9).
/// Best of `reps` sweeps, like [`matrix_instr_per_sec`]. The instruction
/// denominator is the same matrix total, so the ratio to the sequential
/// baseline is the lineup-level speedup of sharing the front end.
fn matrix_instr_per_sec_factored(
    suite: &[(BenchmarkSpec, PackedTrace)],
    policies: &[PolicyKind],
    config: &SimConfig,
    reps: usize,
) -> f64 {
    let total: u64 = (suite.len() * policies.len()) as u64 * INSTRUCTIONS as u64;
    let sig_config = chirp_sim::group_sig_config(policies.iter());
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        for (bench, trace) in suite {
            let built: Vec<chirp_sim::PolicyDispatch> =
                policies.iter().map(|p| p.build_dispatch(config.tlb.l2, bench.seed)).collect();
            chirp_sim::run_factored_group(
                config,
                trace,
                config.warmup_fraction,
                &sig_config,
                built,
            );
        }
        best = best.max(total as f64 / t0.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

/// Compactness of the front-end event stream: L2-TLB access + control
/// events emitted per instruction, averaged over the suite. This is the
/// number that makes the factored speedup legible — each back-end
/// replays only this fraction of the work.
fn frontend_events_per_instr(suite: &[(BenchmarkSpec, PackedTrace)], config: &SimConfig) -> f64 {
    let sig_config = chirp_core::ChirpConfig::default();
    let mut events = 0usize;
    let mut instructions = 0u64;
    for (_, trace) in suite {
        let stream =
            chirp_sim::FactoredTrace::build(config, trace, config.warmup_fraction, &sig_config);
        events += stream.access_events() + stream.control_events();
        instructions += stream.instructions();
    }
    events as f64 / (instructions as f64).max(1.0)
}

fn bench_sim_throughput(c: &mut Criterion) {
    let config = SimConfig::default();
    let policies = lineup9();
    let suite: Vec<(BenchmarkSpec, PackedTrace)> =
        build_suite(&SuiteConfig { benchmarks: BENCHMARKS })
            .into_iter()
            .map(|b| {
                let trace = b.generate_packed(INSTRUCTIONS);
                (b, trace)
            })
            .collect();

    // Per-policy Criterion lines on the first benchmark's trace: the
    // sequential columnar path and a 4-lane interleave of four identical
    // units (per-lane throughput, so the speedup reads directly).
    let (bench0, trace0) = &suite[0];
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace0.len() as u64));
    for policy in &policies {
        let label = policy_label(policy);
        group.bench_function(&format!("columnar/{label}"), |b| {
            b.iter_batched(
                || {
                    Simulator::with_policy(
                        &config,
                        policy.build_dispatch(config.tlb.l2, bench0.seed),
                    )
                },
                |mut sim| sim.run_columnar(trace0, config.warmup_fraction),
                BatchSize::LargeInput,
            );
        });
        group.bench_function(&format!("lanes4/{label}"), |b| {
            b.iter_batched(
                || {
                    (0..4)
                        .map(|_| {
                            LaneUnit::new(
                                Simulator::with_policy(
                                    &config,
                                    policy.build_dispatch(config.tlb.l2, bench0.seed),
                                ),
                                trace0,
                                config.warmup_fraction,
                            )
                        })
                        .collect::<Vec<_>>()
                },
                |units| run_columnar_lanes(units, 4),
                BatchSize::LargeInput,
            );
        });
    }
    // The whole 9-policy lineup as one factored group on the same trace:
    // throughput is per trace pass, so compare against 9× a columnar line.
    let sig_config = chirp_sim::group_sig_config(policies.iter());
    group.bench_function("factored9/lineup", |b| {
        b.iter_batched(
            || {
                policies
                    .iter()
                    .map(|p| p.build_dispatch(config.tlb.l2, bench0.seed))
                    .collect::<Vec<_>>()
            },
            |built| {
                chirp_sim::run_factored_group(
                    &config,
                    trace0,
                    config.warmup_fraction,
                    &sig_config,
                    built,
                )
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();

    // Headline numbers for the trajectory file: whole-matrix throughput
    // across the lane sweep, best of CHIRP_BENCH_REPS sweeps each.
    let reps = std::env::var("CHIRP_BENCH_REPS")
        .ok()
        .and_then(|v| v.replace('_', "").parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let sweep: Vec<f64> =
        LANES.iter().map(|&l| matrix_instr_per_sec(&suite, &policies, &config, l, reps)).collect();
    let (best_idx, best) =
        sweep.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty sweep");
    let lane_speedup = best / sweep[0].max(1e-9);
    let factored = matrix_instr_per_sec_factored(&suite, &policies, &config, reps);
    let factored_speedup = factored / sweep[0].max(1e-9);
    let events_per_instr = frontend_events_per_instr(&suite, &config);
    for (&lanes, ips) in LANES.iter().zip(&sweep) {
        println!("sim_throughput: lanes={lanes} {ips:.0} instr/s");
    }
    println!(
        "sim_throughput: best lanes={} ({best:.0} instr/s, {lane_speedup:.2}x over sequential, \
         best of {reps} reps)",
        LANES[best_idx]
    );
    println!(
        "sim_throughput: factored {factored:.0} instr/s ({factored_speedup:.2}x over sequential \
         at lineup width 9, {events_per_instr:.3} front-end events/instr, best of {reps} reps)"
    );
    write_trajectory(&sweep, LANES[best_idx], lane_speedup, reps, factored, events_per_instr);
}

fn write_trajectory(
    sweep: &[f64],
    best_lanes: usize,
    lane_speedup: f64,
    reps: usize,
    factored: f64,
    events_per_instr: f64,
) {
    let factored_speedup = factored / sweep[0].max(1e-9);
    let line = format!(
        "{{\"bench\":\"sim_throughput\",\"benchmarks\":{BENCHMARKS},\"policies\":9,\
         \"instructions\":{INSTRUCTIONS},\"reps\":{reps},\"instr_per_sec_1t\":{:.0},\
         \"instr_per_sec_1t_lanes2\":{:.0},\"instr_per_sec_1t_lanes4\":{:.0},\
         \"instr_per_sec_1t_lanes8\":{:.0},\"best_lanes\":{best_lanes},\
         \"lane_speedup\":{lane_speedup:.3},\"instr_per_sec_1t_factored\":{factored:.0},\
         \"frontend_events_per_instr\":{events_per_instr:.4},\
         \"factored_speedup\":{factored_speedup:.3}}}",
        sweep[0], sweep[1], sweep[2], sweep[3]
    );
    let path = std::env::var_os("CHIRP_BENCH_OUT").map(PathBuf::from).unwrap_or_else(|| {
        // crates/bench/Cargo.toml -> workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_runner.json")
    });
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open BENCH_runner.json");
    writeln!(f, "{line}").expect("append BENCH_runner.json");
    println!("appended sim_throughput trajectory to {}", path.display());
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
