//! Criterion micro-benchmarks: simulation throughput per replacement
//! policy (how much the policy itself costs per L2 TLB access), plus the
//! isolated CHiRP signature/table operations that sit on the TLB path.

use chirp_core::{ChirpConfig, HistoryRegister, PredictionTable, SignatureBuilder};
use chirp_sim::{PolicyKind, SimConfig, Simulator};
use chirp_trace::gen::{ContextCopy, WorkloadGen};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_policies(c: &mut Criterion) {
    let trace = ContextCopy::default().generate(200_000, 1);
    let config = SimConfig::default();
    let mut group = c.benchmark_group("simulate_200k_instructions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for policy in PolicyKind::paper_lineup() {
        group.bench_function(policy.name(), |b| {
            b.iter_batched(
                || Simulator::with_policy(&config, policy.build_dispatch(config.tlb.l2, 0)),
                |mut sim| sim.run(&trace, 0.5),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_chirp_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("chirp_components");

    group.bench_function("signature_compose", |b| {
        let builder = SignatureBuilder::new(&ChirpConfig::default());
        let mut pc = 0x400000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            std::hint::black_box(builder.signature(pc))
        });
    });

    group.bench_function("path_history_push", |b| {
        let mut h = HistoryRegister::path(16, true);
        let mut pc = 0x400000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            h.push(pc);
            std::hint::black_box(h.folded())
        });
    });

    group.bench_function("prediction_table_update", |b| {
        let mut t = PredictionTable::new(4096, 2);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 123) & 4095;
            t.increment(i);
            std::hint::black_box(t.read(i))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_policies, bench_chirp_components);
criterion_main!(benches);
