//! Criterion benches for the substrate crates: trace generation and codec,
//! cache hierarchy, branch unit and TLB hierarchy throughput.

use chirp_branch::{BranchConfig, BranchUnit};
use chirp_mem::{HierarchyConfig, MemoryHierarchy};
use chirp_tlb::policies::Lru;
use chirp_tlb::{TlbHierarchy, TlbHierarchyConfig, TranslationKind};
use chirp_trace::gen::{ContextCopy, ScanIndex, WebServe, WorkloadGen};
use chirp_trace::{read_trace, vpn, write_trace};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation_100k");
    group.throughput(Throughput::Elements(100_000));
    group
        .bench_function("context_copy", |b| b.iter(|| ContextCopy::default().generate(100_000, 1)));
    group.bench_function("scan_index", |b| b.iter(|| ScanIndex::default().generate(100_000, 1)));
    group.bench_function("web_serve", |b| b.iter(|| WebServe::default().generate(100_000, 1)));
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let trace = ContextCopy::default().generate(100_000, 1);
    let bytes = write_trace(&trace);
    let mut group = c.benchmark_group("trace_codec_100k");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("encode", |b| b.iter(|| write_trace(&trace)));
    group.bench_function("decode", |b| b.iter(|| read_trace(&bytes).unwrap()));
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let trace = ScanIndex::default().generate(50_000, 1);
    let mut group = c.benchmark_group("substrates");
    group.bench_function("memory_hierarchy_50k", |b| {
        b.iter(|| {
            let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
            let mut total = 0u64;
            for r in &trace {
                total += mem.fetch(r.pc);
                if r.kind.is_memory() {
                    total += mem.load(r.effective_address);
                }
            }
            total
        })
    });
    group.bench_function("branch_unit_50k", |b| {
        b.iter(|| {
            let mut bu = BranchUnit::new(BranchConfig::default());
            let mut total = 0u64;
            for r in &trace {
                total += bu.observe(r);
            }
            total
        })
    });
    group.bench_function("tlb_hierarchy_50k", |b| {
        b.iter(|| {
            let config = TlbHierarchyConfig::default();
            let mut tlbs = TlbHierarchy::new(config, Box::new(Lru::new(config.l2)));
            let mut total = 0u64;
            for r in &trace {
                total += tlbs.translate(r.pc, vpn(r.pc), TranslationKind::Instruction).cycles;
                if r.kind.is_memory() {
                    total += tlbs
                        .translate(r.pc, vpn(r.effective_address), TranslationKind::Data)
                        .cycles;
                }
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_codec, bench_memory);
criterion_main!(benches);
