//! Criterion benches that regenerate each paper figure at reduced scale —
//! one bench per table/figure, so `cargo bench` exercises every
//! experiment's full code path and tracks its cost.
//!
//! Full-scale regeneration lives in the `fig*`/`table*` harness binaries;
//! these benches use a small suite sample so a bench run stays minutes,
//! not hours.

use chirp_sim::experiments::{
    fig10_penalty, fig11_access_rate, fig1_efficiency, fig2_history, fig3_adaline, fig6_ablation,
    fig7_mpki, fig8_speedup, fig9_table_size, opt_bound,
};
use chirp_sim::RunnerConfig;
use chirp_trace::suite::{build_suite, SuiteConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn small_config() -> RunnerConfig {
    RunnerConfig { instructions: 60_000, threads: 4, ..Default::default() }
}

fn bench_figures(c: &mut Criterion) {
    let suite = build_suite(&SuiteConfig { benchmarks: 4 });
    let config = small_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_efficiency", |b| b.iter(|| fig1_efficiency::run(&suite, &config)));
    group.bench_function("fig2_history_length", |b| {
        b.iter(|| fig2_history::run(&suite, &config, &[8, 16]))
    });
    group.bench_function("fig3_adaline", |b| b.iter(|| fig3_adaline::run(&suite, &config)));
    group.bench_function("fig6_ablation", |b| b.iter(|| fig6_ablation::run(&suite, &config)));
    group.bench_function("fig7_mpki", |b| b.iter(|| fig7_mpki::run(&suite, &config)));
    group.bench_function("fig8_speedup", |b| b.iter(|| fig8_speedup::run(&suite, &config)));
    group.bench_function("fig9_table_size", |b| b.iter(|| fig9_table_size::run(&suite, &config)));
    group.bench_function("fig10_penalty_sweep", |b| {
        b.iter(|| fig10_penalty::run(&suite, &config, &[20, 150, 340]))
    });
    group.bench_function("fig11_access_rate", |b| {
        b.iter(|| fig11_access_rate::run(&suite, &config))
    });
    group.bench_function("ext_opt_bound", |b| b.iter(|| opt_bound::run(&suite, &config)));
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.bench_function("table1_storage", |b| {
        b.iter(|| {
            chirp_core::storage_report(
                chirp_tlb::TlbGeometry::default(),
                &chirp_core::ChirpConfig::default(),
            )
        })
    });
    group.bench_function("table2_params", |b| {
        b.iter(|| chirp_sim::SimConfig::default().render_table_ii())
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_tables);
criterion_main!(benches);
