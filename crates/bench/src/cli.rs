//! Minimal command-line parsing shared by every harness binary.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --benchmarks N      number of suite benchmarks (default 96)
//! --instructions M    instructions simulated per benchmark (default 1_000_000)
//! --threads T         worker threads (default: available parallelism)
//! --lanes L           software-pipeline lane width: up to L same-trace
//!                     policy units interleaved per worker (default 1;
//!                     results are bit-identical at any width)
//! --store DIR         chirp-store directory: archive traces, skip runs
//!                     whose results are already in the ledger
//! --mem-budget BYTES  cap on packed-trace bytes in flight across workers
//!                     (suffixes K/M/G; default unbounded)
//! --full              shorthand for the paper-scale run (870 benchmarks)
//! --telemetry MODE    off|summary|epochs (default off; epochs records a
//!                     per-epoch JSONL time series next to the results)
//! --epoch-instructions N
//!                     measured instructions per telemetry epoch
//!                     (default 100_000)
//! --telemetry-out DIR where telemetry series land
//!                     (default results/telemetry)
//! --stream-chunk N    records per streamed batch on the streaming path
//!                     (default 65_536; results are bit-identical at any
//!                     chunk size)
//! --resume            require prior progress: fail fast unless the
//!                     `--store` ledger already holds results to resume
//!                     from (binaries that support incremental runs)
//! --input FILE        read a previously written data file instead of
//!                     simulating (binaries that support report-only mode)
//! ```
//!
//! Flag parsing lives here and only here — binaries get new flags by
//! adding a field to [`HarnessArgs`], never by hand-rolling `env::args`
//! loops.

use chirp_core::ChirpConfig;
use chirp_sim::{PolicyKind, RunnerConfig, TelemetrySpec};
use chirp_telemetry::TelemetryMode;
use std::path::PathBuf;

/// The 9-policy extended lineup: the paper's six
/// ([`PolicyKind::paper_lineup`]) plus the extension baselines this
/// repository adds — DRRIP, perceptron reuse prediction and a
/// short-history (8-entry path) CHiRP variant. The single definition
/// shared by the harness binaries and Criterion benches, so every
/// "extended lineup" table and trajectory line means the same nine
/// policies.
pub fn lineup9() -> Vec<PolicyKind> {
    let mut policies = PolicyKind::paper_lineup();
    policies.push(PolicyKind::Drrip);
    policies.push(PolicyKind::PerceptronReuse);
    policies.push(PolicyKind::Chirp(ChirpConfig { path_length: 8, ..ChirpConfig::default() }));
    policies
}

/// Display label for a policy in report tables. Same as
/// [`PolicyKind::name`] except that non-default CHiRP configurations get
/// their path length appended (`chirp-p8`), so the two CHiRP variants in
/// [`lineup9`] stay distinguishable in output rows.
pub fn policy_label(kind: &PolicyKind) -> String {
    match kind {
        PolicyKind::Chirp(c) if *c != ChirpConfig::default() => {
            format!("chirp-p{}", c.path_length)
        }
        _ => kind.name().to_string(),
    }
}

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Number of benchmarks sampled from the suite.
    pub benchmarks: usize,
    /// Instructions simulated per benchmark.
    pub instructions: usize,
    /// Worker threads.
    pub threads: usize,
    /// Lane width for the software-pipelined hot loop (1 = sequential).
    pub lanes: usize,
    /// Optional `chirp-store` directory for incremental execution.
    pub store: Option<PathBuf>,
    /// Optional cap on packed-trace bytes resident across workers.
    pub mem_budget: Option<u64>,
    /// Telemetry mode for binaries that support instrumented runs.
    pub telemetry: TelemetryMode,
    /// Measured instructions per telemetry epoch.
    pub epoch_instructions: u64,
    /// Directory where telemetry series are written.
    pub telemetry_out: PathBuf,
    /// Records per streamed batch on the streaming path (`0` means the
    /// runner's [`chirp_sim::DEFAULT_STREAM_CHUNK`]).
    pub stream_chunk: usize,
    /// When set, binaries that run incrementally fail fast unless the
    /// `--store` ledger already holds progress to resume from.
    pub resume: bool,
    /// Previously written data file for binaries with a report-only mode.
    pub input: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            benchmarks: 96,
            instructions: 1_000_000,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            lanes: 1,
            store: None,
            mem_budget: None,
            telemetry: TelemetryMode::Off,
            epoch_instructions: 100_000,
            telemetry_out: PathBuf::from("results/telemetry"),
            stream_chunk: 0,
            resume: false,
            input: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments; unknown flags are errors.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed flags or values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--benchmarks" => out.benchmarks = next_num(&mut it, &arg)?,
                "--instructions" => out.instructions = next_num(&mut it, &arg)?,
                "--threads" => out.threads = next_num(&mut it, &arg)?,
                "--lanes" => out.lanes = next_num(&mut it, &arg)?,
                "--store" => {
                    let dir = it.next().ok_or_else(|| format!("{arg} needs a directory"))?;
                    out.store = Some(PathBuf::from(dir));
                }
                "--mem-budget" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a byte count"))?;
                    out.mem_budget = Some(parse_bytes(&v).ok_or_else(|| {
                        format!("{arg}: invalid byte count {v} (use e.g. 64M, 2G, 500000)")
                    })?);
                }
                "--full" => {
                    out.benchmarks = 870;
                    out.instructions = 10_000_000;
                }
                "--telemetry" => {
                    let v = it.next().ok_or_else(|| format!("{arg} needs a mode"))?;
                    out.telemetry = v.parse().map_err(|e| format!("{arg}: {e}"))?;
                }
                "--epoch-instructions" => {
                    out.epoch_instructions = next_num(&mut it, &arg)? as u64;
                }
                "--telemetry-out" => {
                    let dir = it.next().ok_or_else(|| format!("{arg} needs a directory"))?;
                    out.telemetry_out = PathBuf::from(dir);
                }
                "--stream-chunk" => {
                    out.stream_chunk = next_num(&mut it, &arg)?;
                    if out.stream_chunk == 0 {
                        return Err("--stream-chunk must be positive".to_string());
                    }
                }
                "--resume" => out.resume = true,
                "--input" => {
                    let file = it.next().ok_or_else(|| format!("{arg} needs a file path"))?;
                    if out.input.is_some() {
                        return Err(format!("{arg} given more than once"));
                    }
                    out.input = Some(PathBuf::from(file));
                }
                "--help" | "-h" => {
                    return Err(format!(
                        "usage: [--benchmarks N] [--instructions M] [--threads T] \
                         [--lanes L] [--store DIR] [--mem-budget BYTES[K|M|G]] [--full] \
                         [--telemetry {}] [--epoch-instructions N] [--telemetry-out DIR] \
                         [--stream-chunk N] [--resume] [--input FILE]",
                        TelemetryMode::HELP
                    ))
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if out.benchmarks == 0 || out.instructions == 0 || out.threads == 0 || out.lanes == 0 {
            return Err("flag values must be positive".to_string());
        }
        if out.mem_budget == Some(0) {
            return Err("--mem-budget must be positive".to_string());
        }
        if out.epoch_instructions == 0 {
            return Err("--epoch-instructions must be positive".to_string());
        }
        if out.resume && out.store.is_none() {
            return Err("--resume needs --store DIR: there is no ledger to resume from".to_string());
        }
        Ok(out)
    }

    /// Parses the current process arguments, exiting with the usage string
    /// on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The [`RunnerConfig`] these arguments describe — the single place
    /// that maps harness flags (including `--store` and `--mem-budget`)
    /// onto the runner.
    pub fn runner_config(&self) -> RunnerConfig {
        RunnerConfig {
            instructions: self.instructions,
            threads: self.threads,
            lanes: self.lanes,
            store: self.store.clone(),
            mem_budget: self.mem_budget,
            stream_chunk: self.stream_chunk,
            ..Default::default()
        }
    }

    /// The [`TelemetrySpec`] these arguments describe.
    pub fn telemetry_spec(&self) -> TelemetrySpec {
        TelemetrySpec { mode: self.telemetry, epoch_instructions: self.epoch_instructions }
    }
}

/// Unwraps a top-level fallible operation in a harness binary, printing
/// a contextual error to stderr and exiting with status 1 instead of
/// panicking with a backtrace. For operator-facing I/O failures (missing
/// directories, permissions), the message is the useful part.
pub fn exit_on_err<T, E: std::fmt::Display>(result: Result<T, E>, context: impl AsRef<str>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {}: {e}", context.as_ref());
            std::process::exit(1);
        }
    }
}

/// Prints the scheduler's one-line summary for the experiment that just
/// ran, tagged with `label`. No-op if the runner has not scheduled
/// anything yet (e.g. every pair came from the ledger).
pub fn print_scheduler_summary(label: &str) {
    if let Some(summary) = chirp_sim::last_scheduler_summary() {
        println!("[scheduler] {label}: {}", summary.render());
    }
}

/// Parses a byte count with an optional K/M/G (binary) suffix; `_`
/// separators are allowed in the digits. Returns `None` on anything else.
fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.replace('_', "");
    let (digits, shift) = match v.as_bytes().last()? {
        b'k' | b'K' => (&v[..v.len() - 1], 10),
        b'm' | b'M' => (&v[..v.len() - 1], 20),
        b'g' | b'G' => (&v[..v.len() - 1], 30),
        _ => (v.as_str(), 0),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_mul(1u64 << shift)
}

fn next_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.replace('_', "").parse().map_err(|_| format!("{flag}: invalid number {v}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn lineup9_is_paper_six_plus_extensions() {
        let lineup = lineup9();
        assert_eq!(lineup.len(), 9);
        let names: Vec<&str> = lineup.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["lru", "random", "srrip", "ship", "ghrp", "chirp", "drrip", "perceptron", "chirp"]
        );
        let labels: Vec<String> = lineup.iter().map(policy_label).collect();
        assert_eq!(labels[5], "chirp");
        assert_eq!(labels[8], "chirp-p8", "short-history variant gets a distinct label");
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.benchmarks, 96);
        assert_eq!(a.instructions, 1_000_000);
        assert_eq!(a.store, None);
        assert_eq!(a.mem_budget, None);
    }

    #[test]
    fn parses_flags() {
        let a =
            parse(&["--benchmarks", "10", "--instructions", "5_000", "--threads", "2"]).unwrap();
        assert_eq!(
            a,
            HarnessArgs {
                benchmarks: 10,
                instructions: 5_000,
                threads: 2,
                ..HarnessArgs::default()
            }
        );
    }

    #[test]
    fn telemetry_flags_parse_and_reach_the_spec() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.telemetry, TelemetryMode::Off);
        assert!(!a.telemetry_spec().mode.is_enabled(), "telemetry defaults off");

        let a = parse(&[
            "--telemetry",
            "epochs",
            "--epoch-instructions",
            "50_000",
            "--telemetry-out",
            "out/t",
        ])
        .unwrap();
        assert_eq!(a.telemetry, TelemetryMode::Epochs);
        assert_eq!(a.telemetry_out, PathBuf::from("out/t"));
        let spec = a.telemetry_spec();
        assert_eq!(spec.mode, TelemetryMode::Epochs);
        assert_eq!(spec.epoch_instructions, 50_000);

        assert_eq!(parse(&["--telemetry", "summary"]).unwrap().telemetry, TelemetryMode::Summary);
        assert!(parse(&["--telemetry", "loud"]).is_err());
        assert!(parse(&["--telemetry"]).is_err());
        assert!(parse(&["--epoch-instructions", "0"]).is_err());
        assert!(parse(&["--telemetry-out"]).is_err());
    }

    #[test]
    fn full_sets_paper_scale() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.benchmarks, 870);
        assert_eq!(a.instructions, 10_000_000);
    }

    #[test]
    fn store_flag_reaches_runner_config() {
        let a = parse(&["--store", "results/store"]).unwrap();
        assert_eq!(a.store.as_deref(), Some(std::path::Path::new("results/store")));
        let config = a.runner_config();
        assert_eq!(config.store, a.store);
        assert_eq!(config.instructions, a.instructions);
        assert_eq!(config.threads, a.threads);
        assert!(parse(&["--store"]).is_err(), "--store requires a directory");
    }

    #[test]
    fn mem_budget_parses_suffixes_and_reaches_runner_config() {
        assert_eq!(parse(&["--mem-budget", "4096"]).unwrap().mem_budget, Some(4096));
        assert_eq!(parse(&["--mem-budget", "64K"]).unwrap().mem_budget, Some(64 << 10));
        assert_eq!(parse(&["--mem-budget", "64m"]).unwrap().mem_budget, Some(64 << 20));
        assert_eq!(parse(&["--mem-budget", "2G"]).unwrap().mem_budget, Some(2 << 30));
        assert_eq!(parse(&["--mem-budget", "1_024"]).unwrap().mem_budget, Some(1024));
        let config = parse(&["--mem-budget", "8M"]).unwrap().runner_config();
        assert_eq!(config.mem_budget, Some(8 << 20));
    }

    #[test]
    fn mem_budget_rejects_garbage() {
        assert!(parse(&["--mem-budget"]).is_err(), "needs a value");
        assert!(parse(&["--mem-budget", "lots"]).is_err());
        assert!(parse(&["--mem-budget", "0"]).is_err());
        assert!(parse(&["--mem-budget", "M"]).is_err(), "suffix without digits");
        assert!(parse(&["--mem-budget", "99999999999G"]).is_err(), "overflow");
    }

    #[test]
    fn lanes_flag_reaches_runner_config() {
        assert_eq!(parse(&[]).unwrap().lanes, 1, "lanes default to sequential");
        let a = parse(&["--lanes", "4"]).unwrap();
        assert_eq!(a.lanes, 4);
        assert_eq!(a.runner_config().lanes, 4);
        assert_eq!(a.runner_config().lane_width(), 4);
    }

    #[test]
    fn stream_chunk_flag_reaches_runner_config() {
        assert_eq!(parse(&[]).unwrap().stream_chunk, 0, "defaults to the runner default");
        let a = parse(&["--stream-chunk", "8_192"]).unwrap();
        assert_eq!(a.stream_chunk, 8_192);
        assert_eq!(a.runner_config().stream_chunk, 8_192);
        assert_eq!(a.runner_config().stream_chunk_records(), 8_192);
        assert!(parse(&["--stream-chunk", "0"]).is_err());
        assert!(parse(&["--stream-chunk"]).is_err());
    }

    #[test]
    fn resume_requires_a_store() {
        assert!(!parse(&[]).unwrap().resume);
        assert!(parse(&["--resume"]).is_err(), "--resume without --store is an error");
        let a = parse(&["--resume", "--store", "results/store"]).unwrap();
        assert!(a.resume);
    }

    #[test]
    fn input_flag_parses_once() {
        assert_eq!(parse(&[]).unwrap().input, None);
        let a = parse(&["--input", "results/telemetry/series.jsonl"]).unwrap();
        assert_eq!(a.input, Some(PathBuf::from("results/telemetry/series.jsonl")));
        assert!(parse(&["--input"]).is_err());
        assert!(parse(&["--input", "a", "--input", "b"]).is_err(), "duplicate --input");
    }

    #[test]
    fn rejects_unknown_and_zero() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--lanes", "0"]).is_err());
        assert!(parse(&["--benchmarks"]).is_err());
        assert!(parse(&["--benchmarks", "abc"]).is_err());
    }
}
