//! Minimal command-line parsing shared by every harness binary.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --benchmarks N      number of suite benchmarks (default 96)
//! --instructions M    instructions simulated per benchmark (default 1_000_000)
//! --threads T         worker threads (default: available parallelism)
//! --store DIR         chirp-store directory: archive traces, skip runs
//!                     whose results are already in the ledger
//! --full              shorthand for the paper-scale run (870 benchmarks)
//! ```

use chirp_sim::RunnerConfig;
use std::path::PathBuf;

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Number of benchmarks sampled from the suite.
    pub benchmarks: usize,
    /// Instructions simulated per benchmark.
    pub instructions: usize,
    /// Worker threads.
    pub threads: usize,
    /// Optional `chirp-store` directory for incremental execution.
    pub store: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            benchmarks: 96,
            instructions: 1_000_000,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            store: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments; unknown flags are errors.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed flags or values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--benchmarks" => out.benchmarks = next_num(&mut it, &arg)?,
                "--instructions" => out.instructions = next_num(&mut it, &arg)?,
                "--threads" => out.threads = next_num(&mut it, &arg)?,
                "--store" => {
                    let dir = it.next().ok_or_else(|| format!("{arg} needs a directory"))?;
                    out.store = Some(PathBuf::from(dir));
                }
                "--full" => {
                    out.benchmarks = 870;
                    out.instructions = 10_000_000;
                }
                "--help" | "-h" => {
                    return Err("usage: [--benchmarks N] [--instructions M] [--threads T] \
                         [--store DIR] [--full]"
                        .to_string())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if out.benchmarks == 0 || out.instructions == 0 || out.threads == 0 {
            return Err("flag values must be positive".to_string());
        }
        Ok(out)
    }

    /// Parses the current process arguments, exiting with the usage string
    /// on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The [`RunnerConfig`] these arguments describe — the single place
    /// that maps harness flags (including `--store`) onto the runner.
    pub fn runner_config(&self) -> RunnerConfig {
        RunnerConfig {
            instructions: self.instructions,
            threads: self.threads,
            store: self.store.clone(),
            ..Default::default()
        }
    }
}

fn next_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.replace('_', "").parse().map_err(|_| format!("{flag}: invalid number {v}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.benchmarks, 96);
        assert_eq!(a.instructions, 1_000_000);
        assert_eq!(a.store, None);
    }

    #[test]
    fn parses_flags() {
        let a =
            parse(&["--benchmarks", "10", "--instructions", "5_000", "--threads", "2"]).unwrap();
        assert_eq!(a, HarnessArgs { benchmarks: 10, instructions: 5_000, threads: 2, store: None });
    }

    #[test]
    fn full_sets_paper_scale() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.benchmarks, 870);
        assert_eq!(a.instructions, 10_000_000);
    }

    #[test]
    fn store_flag_reaches_runner_config() {
        let a = parse(&["--store", "results/store"]).unwrap();
        assert_eq!(a.store.as_deref(), Some(std::path::Path::new("results/store")));
        let config = a.runner_config();
        assert_eq!(config.store, a.store);
        assert_eq!(config.instructions, a.instructions);
        assert_eq!(config.threads, a.threads);
        assert!(parse(&["--store"]).is_err(), "--store requires a directory");
    }

    #[test]
    fn rejects_unknown_and_zero() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--benchmarks"]).is_err());
        assert!(parse(&["--benchmarks", "abc"]).is_err());
    }
}
