//! Shared helpers for the CHiRP benchmark harness binaries and Criterion
//! benches. See the `fig*`/`table*` binaries in `src/bin/`.

pub mod cli;

pub use cli::{print_scheduler_summary, HarnessArgs};
