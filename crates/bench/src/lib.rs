//! Shared helpers for the CHiRP benchmark harness binaries and Criterion
//! benches. See the `fig*`/`table*` binaries in `src/bin/`.

pub mod cli;
pub mod telemetry_view;

pub use cli::{exit_on_err, lineup9, policy_label, print_scheduler_summary, HarnessArgs};
pub use telemetry_view::{render_phase_summary, render_policy_rollup};
