//! Rendering for telemetry series: the textual phase summaries shared by
//! `run_all --telemetry summary` and the `telemetry_report` binary.

use chirp_sim::report::Table;
use chirp_sim::UnitSeries;

/// One row per (benchmark × policy) unit: epoch count, MPKI phase
/// statistics, the epoch-weighted prediction-table access rate (the
/// paper's Figure 11 metric, resolved over time), and dead-prediction
/// accuracy scored at eviction.
pub fn render_phase_summary(series: &[UnitSeries]) -> String {
    let mut table = Table::new([
        "benchmark",
        "policy",
        "epochs",
        "MPKI mean",
        "MPKI min",
        "MPKI max",
        "tbl-acc rate",
        "dead acc",
    ]);
    for unit in series {
        let (mean, min, max) = unit.mpki_stats();
        let outcomes = unit.dead_outcomes();
        let accuracy = if outcomes.total() == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", outcomes.accuracy() * 100.0)
        };
        table.row([
            unit.benchmark.clone(),
            unit.policy.clone(),
            unit.rows.len().to_string(),
            format!("{mean:.3}"),
            format!("{min:.3}"),
            format!("{max:.3}"),
            format!("{:.1}%", unit.mean_table_access_rate() * 100.0),
            accuracy,
        ]);
    }
    table.render()
}

/// Aggregates the phase series per policy: mean of the per-unit access
/// rates and pooled dead-prediction accuracy — a compact cross-check of
/// the paper's ~10% CHiRP table-access-rate claim.
pub fn render_policy_rollup(series: &[UnitSeries]) -> String {
    let mut policies: Vec<&str> = Vec::new();
    for unit in series {
        if !policies.contains(&unit.policy.as_str()) {
            policies.push(&unit.policy);
        }
    }
    let mut table = Table::new(["policy", "units", "mean tbl-acc rate", "dead acc"]);
    for policy in policies {
        let units: Vec<&UnitSeries> = series.iter().filter(|u| u.policy == policy).collect();
        let rate =
            units.iter().map(|u| u.mean_table_access_rate()).sum::<f64>() / units.len() as f64;
        let outcomes = units
            .iter()
            .fold(chirp_tlb::DeadOutcomes::default(), |acc, u| acc.merged(&u.dead_outcomes()));
        let accuracy = if outcomes.total() == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", outcomes.accuracy() * 100.0)
        };
        table.row([
            policy.to_string(),
            units.len().to_string(),
            format!("{:.1}%", rate * 100.0),
            accuracy,
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_sim::EpochRecord;

    fn unit(benchmark: &str, policy: &str, misses: &[u64]) -> UnitSeries {
        UnitSeries {
            benchmark: benchmark.to_string(),
            policy: policy.to_string(),
            run_key: 0,
            epoch_instructions: 1000,
            rows: misses
                .iter()
                .enumerate()
                .map(|(i, &m)| EpochRecord {
                    epoch: i as u64,
                    instructions: 1000,
                    cycles: 2000,
                    hits: 90,
                    misses: m,
                    cold_fills: 0,
                    dead_evictions: m / 2,
                    table_accesses: 10,
                    true_dead: m / 2,
                    false_dead: 0,
                    true_live: 1,
                    false_live: 1,
                    occupancy: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn phase_summary_lists_every_unit() {
        let series = [unit("b0", "chirp", &[10, 20]), unit("b1", "lru", &[5])];
        let out = render_phase_summary(&series);
        assert!(out.contains("b0") && out.contains("b1"));
        assert!(out.contains("chirp") && out.contains("lru"));
        assert!(out.contains("15.000"), "mean MPKI of 10 and 20 misses per 1k instructions");
    }

    #[test]
    fn rollup_groups_by_policy_in_first_seen_order() {
        let series =
            [unit("b0", "chirp", &[10]), unit("b1", "chirp", &[30]), unit("b0", "lru", &[10])];
        let out = render_policy_rollup(&series);
        let chirp_at = out.find("chirp").expect("chirp row");
        let lru_at = out.find("lru").expect("lru row");
        assert!(chirp_at < lru_at, "first-seen policy order");
        assert!(out.contains("10.0%"), "10 table accesses per 100 L2 accesses");
    }
}
