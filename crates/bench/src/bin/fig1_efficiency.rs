//! Regenerates Figure 1 (TLB efficiency heat map).
//! Writes `results/fig1_efficiency.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig1_efficiency;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig1_efficiency::run(&suite, &config);
    println!("{}", fig1_efficiency::render(&result));
    chirp_bench::print_scheduler_summary("fig1");

    let mut csv = Table::new(
        ["benchmark"]
            .into_iter()
            .chain(result.series.iter().map(|(n, _)| n.as_str()))
            .collect::<Vec<_>>(),
    );
    for (i, bench) in result.benchmarks.iter().enumerate() {
        let mut row = vec![bench.clone()];
        for (_, v) in &result.series {
            row.push(format!("{:.4}", v[i]));
        }
        csv.row(row);
    }
    let path = Path::new("results/fig1_efficiency.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
