//! Calibration tool: per-benchmark and average MPKI for every policy on a
//! suite sample — the quick look used while tuning workloads and policies.

use chirp_bench::HarnessArgs;
use chirp_sim::report::Table;
use chirp_sim::runner::group_by_benchmark;
use chirp_sim::{run_suite, PolicyKind};
use chirp_trace::suite::{build_suite, SuiteConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let policies = PolicyKind::paper_lineup();
    let config = args.runner_config();
    let t0 = std::time::Instant::now();
    let runs = run_suite(&suite, &policies, &config);
    eprintln!(
        "simulated {} benchmarks x {} policies x {} instr in {:.1}s",
        suite.len(),
        policies.len(),
        args.instructions,
        t0.elapsed().as_secs_f64()
    );

    let mut table = Table::new(
        ["benchmark"].into_iter().chain(policies.iter().map(|p| p.name())).collect::<Vec<_>>(),
    );
    let mut sums = vec![0.0f64; policies.len()];
    let mut ipc_sums = vec![0.0f64; policies.len()];
    let grouped = group_by_benchmark(&runs, policies.len());
    for group in &grouped {
        let mut cells = vec![group[0].benchmark.clone()];
        for (i, run) in group.iter().enumerate() {
            let mpki = run.result.mpki();
            sums[i] += mpki;
            ipc_sums[i] += run.result.ipc();
            cells.push(format!("{mpki:.3}"));
        }
        table.row(cells);
    }
    let n = grouped.len() as f64;
    let mut avg = vec!["AVG MPKI".to_string()];
    for s in &sums {
        avg.push(format!("{:.3}", s / n));
    }
    table.row(avg);
    let mut red = vec!["red. vs LRU %".to_string()];
    for s in &sums {
        red.push(format!("{:.2}", (sums[0] - s) / sums[0] * 100.0));
    }
    table.row(red);
    let mut ipc = vec!["AVG IPC".to_string()];
    for s in &ipc_sums {
        ipc.push(format!("{:.4}", s / n));
    }
    table.row(ipc);
    println!("{}", table.render());

    // Per-category MPKI averages.
    let mut cat_table = Table::new(
        ["category"].into_iter().chain(policies.iter().map(|p| p.name())).collect::<Vec<_>>(),
    );
    let mut by_cat: std::collections::BTreeMap<String, (usize, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for group in &grouped {
        let entry = by_cat
            .entry(group[0].category.label().to_string())
            .or_insert_with(|| (0, vec![0.0; policies.len()]));
        entry.0 += 1;
        for (i, run) in group.iter().enumerate() {
            entry.1[i] += run.result.mpki();
        }
    }
    for (cat, (count, sums)) in by_cat {
        let mut cells = vec![format!("{cat} ({count})")];
        for s in &sums {
            cells.push(format!("{:.3}", s / count as f64));
        }
        cat_table.row(cells);
    }
    println!("{}", cat_table.render());
}
