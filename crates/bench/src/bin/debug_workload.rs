//! Workload debugging tool: runs a single named generator (with default
//! parameters) across all policies at several trace lengths, printing MPKI
//! and dead-eviction behaviour. Used to tune generator parameters.
//!
//! Usage: `debug_workload <ctxcopy|scanidx|crypto|stencil|spec|web|chase|gups> [len]`

use chirp_sim::{PolicyKind, SimConfig, Simulator};
use chirp_tlb::TlbReplacementPolicy;
use chirp_trace::gen::{
    ContextCopy, CryptoStream, Gups, PointerChase, ScanIndex, SpecLoops, TiledStencil, WebServe,
    WorkloadGen,
};

fn make(name: &str) -> Box<dyn WorkloadGen> {
    match name {
        "ctxcopy" => Box::new(ContextCopy::default()),
        "scanidx" => Box::new(ScanIndex::default()),
        "crypto" => Box::new(CryptoStream::default()),
        "stencil" => Box::new(TiledStencil::default()),
        "spec" => Box::new(SpecLoops::default()),
        "web" => Box::new(WebServe::default()),
        "chase" => Box::new(PointerChase::default()),
        "gups" => Box::new(Gups::default()),
        other => {
            eprintln!("unknown workload {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "ctxcopy".to_string());
    let len: usize = match args.next() {
        None => 1_000_000,
        Some(s) => chirp_bench::exit_on_err(
            s.replace('_', "").parse(),
            format!("invalid instruction count {s}"),
        ),
    };
    let gen = make(&name);
    let trace = gen.generate(len, 0);
    let stats = chirp_trace::TraceStats::from_trace(&trace);
    println!(
        "{name}: {} instr, {} code pages, {} data pages, mem {:.1}%, br {:.1}%",
        stats.instructions,
        stats.code_pages,
        stats.data_pages,
        stats.memory_ratio() * 100.0,
        stats.branch_ratio() * 100.0
    );
    let config = SimConfig::default();
    for policy in PolicyKind::paper_lineup() {
        let mut sim = Simulator::with_policy(&config, policy.build_dispatch(config.tlb.l2, 0));
        let r = sim.run(&trace, config.warmup_fraction);
        println!(
            "  {:<8} MPKI {:>8.3}  IPC {:.4}  eff {:.3}  tbl-rate {:.3}  dead-evict {:>8}",
            r.policy,
            r.mpki(),
            r.ipc(),
            r.efficiency,
            r.table_access_rate(),
            r.l2_tlb.dead_evictions
        );
        if let Some(chirp) =
            sim.tlbs().l2().policy().as_any().and_then(|a| a.downcast_ref::<chirp_core::Chirp>())
        {
            let table = chirp.table();
            let mut hist = [0usize; 4];
            for i in 0..table.len() {
                hist[table.peek(i) as usize] += 1;
            }
            println!("           counters {:?}  {:?}", hist, chirp.counters());
        }
    }
}
