//! Regenerates Figure 9 (CHiRP MPKI improvement vs prediction-table size).
//! Writes `results/fig9_table_size.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig9_table_size;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig9_table_size::run(&suite, &config);
    println!("{}", fig9_table_size::render(&result));
    chirp_bench::print_scheduler_summary("fig9");

    let mut csv = Table::new(["table_bytes", "improvement_vs_lru"]);
    for (bytes, r) in &result.points {
        csv.row([format!("{bytes}"), format!("{r:.6}")]);
    }
    let path = Path::new("results/fig9_table_size.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
