//! Regenerates Table II (simulation parameters) from the live defaults —
//! the configuration every experiment binary uses unless overridden.

use chirp_sim::SimConfig;

fn main() {
    println!("Table II: simulation parameters\n");
    println!("{}", SimConfig::default().render_table_ii());
}
