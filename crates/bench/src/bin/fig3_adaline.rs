//! Regenerates Figure 3 (ADALINE PC-bit weight heat map).
//! Writes `results/fig3_adaline.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig3_adaline;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig3_adaline::run(&suite, &config);
    println!("{}", fig3_adaline::render(&result));
    chirp_bench::print_scheduler_summary("fig3");

    let mut headers = vec!["benchmark".to_string(), "accuracy".to_string()];
    headers.extend((0..fig3_adaline::PC_BITS).map(|b| format!("bit{b}")));
    let mut csv = Table::new(headers);
    for p in &result.profiles {
        let mut row = vec![p.benchmark.clone(), format!("{:.4}", p.accuracy)];
        row.extend(p.weights.iter().map(|w| format!("{w:.4}")));
        csv.row(row);
    }
    let path = Path::new("results/fig3_adaline.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
