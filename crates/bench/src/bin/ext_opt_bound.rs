//! Extension experiment: Bélády-OPT upper bound vs LRU and CHiRP.
//! Writes `results/ext_opt_bound.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::opt_bound;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let mut args = HarnessArgs::from_env();
    // OPT replays are two-pass and memory-heavy; default to a small subset.
    if args.benchmarks > 32 {
        args.benchmarks = 32;
        eprintln!("note: OPT bound capped at 32 benchmarks");
    }
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = opt_bound::run(&suite, &config);
    println!("{}", opt_bound::render(&result));

    let mut csv = Table::new(["benchmark", "lru_mpki", "chirp_mpki", "opt_mpki"]);
    for (name, l, c, o) in &result.rows {
        csv.row([name.clone(), format!("{l:.4}"), format!("{c:.4}"), format!("{o:.4}")]);
    }
    let path = Path::new("results/ext_opt_bound.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
