//! Regenerates Figure 11 (prediction-table access-rate density for SHiP,
//! GHRP and CHiRP). Writes `results/fig11_access_rate.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig11_access_rate;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig11_access_rate::run(&suite, &config);
    println!("{}", fig11_access_rate::render(&result));
    chirp_bench::print_scheduler_summary("fig11");

    let mut csv = Table::new(
        ["benchmark"]
            .into_iter()
            .chain(result.series.iter().map(|(n, _)| n.as_str()))
            .collect::<Vec<_>>(),
    );
    for (i, bench) in suite.iter().enumerate() {
        let mut row = vec![bench.name.clone()];
        for (_, v) in &result.series {
            row.push(format!("{:.4}", v[i]));
        }
        csv.row(row);
    }
    let path = Path::new("results/fig11_access_rate.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
