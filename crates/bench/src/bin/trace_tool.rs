//! Trace utility: generate suite benchmarks to disk in the compact binary
//! format, inspect saved traces, and print statistics.
//!
//! ```text
//! trace_tool list [N]                 list the first N suite benchmarks
//! trace_tool gen <index> <len> <out>  generate suite benchmark #index
//! trace_tool stats <file>             decode a trace and print statistics
//! trace_tool head <file> [N]          print the first N records
//! ```

use chirp_trace::suite::{build_suite, SuiteConfig};
use chirp_trace::{read_trace, write_trace, TraceStats};

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool list [N]\n  trace_tool gen <index> <len> <out.chrp>\n  \
         trace_tool stats <file.chrp>\n  trace_tool head <file.chrp> [N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
            let suite = build_suite(&SuiteConfig { benchmarks: n });
            for (i, b) in suite.iter().enumerate() {
                println!("{i:>4}  {:<10} {}", b.category.label(), b.name);
            }
        }
        Some("gen") => {
            let (Some(idx), Some(len), Some(out)) = (args.get(1), args.get(2), args.get(3))
            else {
                usage()
            };
            let idx: usize = idx.parse().unwrap_or_else(|_| usage());
            let len: usize = len.replace('_', "").parse().unwrap_or_else(|_| usage());
            let suite = build_suite(&SuiteConfig { benchmarks: idx + 1 });
            let bench = suite.last().expect("non-empty suite");
            let trace = bench.generate(len);
            let bytes = write_trace(&trace);
            std::fs::write(out, &bytes).expect("write trace file");
            println!(
                "wrote {} ({} records, {} bytes, {:.2} bits/record)",
                out,
                trace.len(),
                bytes.len(),
                bytes.len() as f64 * 8.0 / trace.len() as f64
            );
        }
        Some("stats") => {
            let Some(file) = args.get(1) else { usage() };
            let bytes = std::fs::read(file).expect("read trace file");
            let trace = read_trace(&bytes).expect("decode trace");
            let s = TraceStats::from_trace(&trace);
            println!("instructions   {}", s.instructions);
            println!("loads          {}", s.loads);
            println!("stores         {}", s.stores);
            println!("cond branches  {} ({} taken)", s.cond_branches, s.cond_taken);
            println!("uncond ctrl    {}", s.uncond_branches);
            println!("code pages     {}", s.code_pages);
            println!("data pages     {}", s.data_pages);
            println!("data footprint {:.2} MB", s.data_footprint_bytes() as f64 / (1 << 20) as f64);
            println!("memory ratio   {:.1}%", s.memory_ratio() * 100.0);
            println!("branch ratio   {:.1}%", s.branch_ratio() * 100.0);
        }
        Some("head") => {
            let Some(file) = args.get(1) else { usage() };
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
            let bytes = std::fs::read(file).expect("read trace file");
            let trace = read_trace(&bytes).expect("decode trace");
            for r in trace.iter().take(n) {
                println!("{r:x?}");
            }
        }
        _ => usage(),
    }
}
