//! Trace utility: generate suite benchmarks to disk in the compact binary
//! format, inspect saved traces, print statistics, and manage the
//! content-addressed trace archive inside a `chirp-store` directory.
//!
//! ```text
//! trace_tool list [N]                 list the first N suite benchmarks
//! trace_tool gen <index> <len> <out>  generate suite benchmark #index
//! trace_tool stats <file>             decode a trace and print statistics
//! trace_tool head <file> [N]          print the first N records
//! trace_tool hash <file>              print the content address of a trace
//! trace_tool pack <store> [N] [len]   materialise an N-benchmark suite
//!                                     into the archive under <store>
//! trace_tool verify <store>           checksum-audit the archive
//! ```

use chirp_bench::exit_on_err;
use chirp_store::{fnv64, hex16, ArchiveOutcome, TraceArchive};
use chirp_trace::suite::{build_suite, nth_benchmark, SuiteConfig};
use chirp_trace::{peek_record_count, read_trace, write_trace, TraceStats};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool list [N]\n  trace_tool gen <index> <len> <out.chrp>\n  \
         trace_tool stats <file.chrp>\n  trace_tool head <file.chrp> [N]\n  \
         trace_tool hash <file.chrp>\n  \
         trace_tool pack <store-dir> [N] [len]   (defaults: N=96, len=1_000_000)\n  \
         trace_tool verify <store-dir>\n\n\
         `hash` prints the FNV-1a content address of a packed trace file —\n\
         the hash a `chirp-serve` upload is archived under, accepted by\n\
         `chirp-client run --hash` to re-run it without re-uploading.\n\n\
         `pack` materialises every benchmark of an N-benchmark suite into the\n\
         content-addressed archive under <store-dir>/traces, skipping files\n\
         that are already present and valid. `verify` re-checksums every\n\
         archived trace and exits non-zero if any file is corrupt."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
            let suite = build_suite(&SuiteConfig { benchmarks: n });
            for (i, b) in suite.iter().enumerate() {
                println!("{i:>4}  {:<10} {}", b.category.label(), b.name);
            }
        }
        Some("gen") => {
            let (Some(idx), Some(len), Some(out)) = (args.get(1), args.get(2), args.get(3)) else {
                usage()
            };
            let idx: usize = idx.parse().unwrap_or_else(|_| usage());
            let len: usize = len.replace('_', "").parse().unwrap_or_else(|_| usage());
            let bench = nth_benchmark(&SuiteConfig { benchmarks: idx + 1 }, idx)
                .expect("index within the suite it defines");
            let trace = bench.generate(len);
            let bytes = write_trace(&trace);
            exit_on_err(std::fs::write(out, &bytes), format!("cannot write trace {out}"));
            println!(
                "wrote {} ({} records, {} bytes, {:.2} bits/record)",
                out,
                trace.len(),
                bytes.len(),
                bytes.len() as f64 * 8.0 / trace.len() as f64
            );
        }
        Some("stats") => {
            let Some(file) = args.get(1) else { usage() };
            let bytes = exit_on_err(std::fs::read(file), format!("cannot read trace {file}"));
            let trace = exit_on_err(read_trace(&bytes), format!("cannot decode trace {file}"));
            let s = TraceStats::from_trace(&trace);
            println!("instructions   {}", s.instructions);
            println!("loads          {}", s.loads);
            println!("stores         {}", s.stores);
            println!("cond branches  {} ({} taken)", s.cond_branches, s.cond_taken);
            println!("uncond ctrl    {}", s.uncond_branches);
            println!("code pages     {}", s.code_pages);
            println!("data pages     {}", s.data_pages);
            println!("data footprint {:.2} MB", s.data_footprint_bytes() as f64 / (1 << 20) as f64);
            println!("memory ratio   {:.1}%", s.memory_ratio() * 100.0);
            println!("branch ratio   {:.1}%", s.branch_ratio() * 100.0);
        }
        Some("head") => {
            let Some(file) = args.get(1) else { usage() };
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
            let bytes = exit_on_err(std::fs::read(file), format!("cannot read trace {file}"));
            let trace = exit_on_err(read_trace(&bytes), format!("cannot decode trace {file}"));
            for r in trace.iter().take(n) {
                println!("{r:x?}");
            }
        }
        Some("hash") => {
            let Some(file) = args.get(1) else { usage() };
            let bytes = exit_on_err(std::fs::read(file), format!("cannot read trace {file}"));
            // Validate the header so a typo'd path fails loudly instead of
            // printing the hash of a non-trace file.
            let records =
                exit_on_err(peek_record_count(&bytes), format!("not a CHRP trace: {file}"));
            println!(
                "{}  {} ({} records, {} bytes)",
                hex16(fnv64(&bytes)),
                file,
                records,
                bytes.len()
            );
        }
        Some("pack") => {
            let Some(store) = args.get(1) else { usage() };
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(96);
            let len: usize =
                args.get(3).and_then(|s| s.replace('_', "").parse().ok()).unwrap_or(1_000_000);
            let suite = build_suite(&SuiteConfig { benchmarks: n });
            let mut archive = exit_on_err(
                TraceArchive::open(Path::new(store)),
                format!("cannot open archive {store}"),
            );
            for (i, bench) in suite.iter().enumerate() {
                let outcome =
                    exit_on_err(archive.pack(bench, len), format!("cannot archive {}", bench.name));
                let tag = match outcome {
                    ArchiveOutcome::Hit => "ok     ",
                    ArchiveOutcome::MissGenerated => "packed ",
                    ArchiveOutcome::CorruptRegenerated => "healed ",
                };
                println!("{i:>4}  {tag} {}", bench.name);
            }
            let s = archive.stats();
            println!(
                "{} traces: {} already valid, {} packed, {} healed",
                suite.len(),
                s.hits,
                s.misses,
                s.corrupt_regenerated
            );
        }
        Some("verify") => {
            let Some(store) = args.get(1) else { usage() };
            let archive = exit_on_err(
                TraceArchive::open(Path::new(store)),
                format!("cannot open archive {store}"),
            );
            let (valid, corrupt) = archive.verify();
            println!(
                "{} archived traces: {} valid, {} corrupt",
                archive.len(),
                valid,
                corrupt.len()
            );
            for key in &corrupt {
                println!("corrupt: {}", archive.trace_path(*key).display());
            }
            if !corrupt.is_empty() {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
