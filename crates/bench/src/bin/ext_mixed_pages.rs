//! Extension: mixed 4KB/2MB page-size study (paper §VIII future work).
//! Writes `results/ext_mixed_pages.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::ext_mixed_pages;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.benchmarks > 48 {
        args.benchmarks = 48;
        eprintln!("note: mixed-page sweep capped at 48 benchmarks");
    }
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let result = ext_mixed_pages::run(&suite, args.instructions, &[0, 25, 50, 75, 100]);
    println!("{}", ext_mixed_pages::render(&result));

    let mut csv = Table::new([
        "fragmentation_percent",
        "lru_miss_ratio",
        "reuse_miss_ratio",
        "size_aware_miss_ratio",
        "reuse_huge_evictions",
        "size_aware_huge_evictions",
    ]);
    for p in &result.points {
        csv.row([
            format!("{}", p.fragmentation_percent),
            format!("{:.6}", p.lru.miss_ratio()),
            format!("{:.6}", p.reuse.miss_ratio()),
            format!("{:.6}", p.size_aware.miss_ratio()),
            format!("{}", p.reuse.huge_evictions),
            format!("{}", p.size_aware.huge_evictions),
        ]);
    }
    let path = Path::new("results/ext_mixed_pages.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
