//! Regenerates Figure 2 (speedup vs global PC history length, with and
//! without branch history). Writes `results/fig2_history.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig2_history::{self, PAPER_LENGTHS};
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig2_history::run(&suite, &config, &PAPER_LENGTHS);
    println!("{}", fig2_history::render(&result));
    chirp_bench::print_scheduler_summary("fig2");

    let mut csv = Table::new(["length", "pc_only", "with_branches"]);
    for (i, len) in result.lengths.iter().enumerate() {
        csv.row([
            format!("{len}"),
            format!("{:.6}", result.pc_only[i]),
            format!("{:.6}", result.with_branches[i]),
        ]);
    }
    let path = Path::new("results/fig2_history.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
