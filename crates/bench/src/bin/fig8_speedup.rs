//! Regenerates Figure 8 (speedup over LRU at a 150-cycle walk penalty).
//! Writes `results/fig8_speedup.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig8_speedup;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig8_speedup::run(&suite, &config);
    println!("{}", fig8_speedup::render(&result));
    chirp_bench::print_scheduler_summary("fig8");

    let mut csv = Table::new(
        ["benchmark"]
            .into_iter()
            .chain(result.series.iter().map(|(n, _)| n.as_str()))
            .collect::<Vec<_>>(),
    );
    for (i, bench) in suite.iter().enumerate() {
        let mut row = vec![bench.name.clone()];
        for (_, v) in &result.series {
            row.push(format!("{:.6}", v[i]));
        }
        csv.row(row);
    }
    let path = Path::new("results/fig8_speedup.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
