//! Regenerates Figure 6 (feature/optimisation ablation ladder).
//! Writes `results/fig6_ablation.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig6_ablation;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig6_ablation::run(&suite, &config);
    println!("{}", fig6_ablation::render(&result));
    chirp_bench::print_scheduler_summary("fig6");

    let mut csv = Table::new(["variant", "reduction_vs_lru"]);
    for (name, r) in &result.rungs {
        csv.row([name.clone(), format!("{r:.6}")]);
    }
    let path = Path::new("results/fig6_ablation.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
