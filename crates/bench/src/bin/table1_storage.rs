//! Regenerates Table I (CHiRP storage overhead) for the paper's two
//! counter budgets, plus a comparison against every other policy's cost.

use chirp_core::{storage_report, ChirpConfig};
use chirp_sim::report::Table;
use chirp_sim::PolicyKind;
use chirp_tlb::{TlbGeometry, TlbReplacementPolicy};

fn main() {
    let geom = TlbGeometry::default();
    println!("Table I: storage overhead of CHiRP for a 1024-entry, 8-way L2 TLB, 4KB pages\n");

    for (label, entries) in
        [("128 B counters", 512usize), ("1 KB counters (main)", 4096), ("8 KB counters", 32768)]
    {
        let config = ChirpConfig { table_entries: entries, ..Default::default() };
        println!("--- {label} ---");
        println!("{}", storage_report(geom, &config).render());
    }

    println!("Policy storage comparison (same geometry):\n");
    let mut table = Table::new(["policy", "metadata B", "registers B", "tables B", "total B"]);
    for kind in PolicyKind::paper_lineup() {
        let policy = kind.build_dispatch(geom, 0);
        let s = policy.storage();
        table.row([
            kind.name().to_string(),
            format!("{}", s.metadata_bits.div_ceil(8)),
            format!("{}", s.register_bits.div_ceil(8)),
            format!("{}", s.table_bits.div_ceil(8)),
            format!("{}", s.total_bytes()),
        ]);
    }
    println!("{}", table.render());
    println!("CHiRP uses a single prediction table; GHRP needs three (paper VI-H: ~3x reduction).");
}
