//! Regenerates Figure 10 (average speedup vs page-walk penalty).
//! Writes `results/fig10_penalty.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::fig10_penalty::{self, PAPER_PENALTIES};
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = fig10_penalty::run(&suite, &config, &PAPER_PENALTIES);
    println!("{}", fig10_penalty::render(&result));
    chirp_bench::print_scheduler_summary("fig10");

    let mut headers = vec!["penalty".to_string()];
    headers.extend(result.series.iter().map(|(n, _)| n.clone()));
    let mut csv = Table::new(headers);
    for (i, penalty) in result.penalties.iter().enumerate() {
        let mut row = vec![format!("{penalty}")];
        for (_, v) in &result.series {
            row.push(format!("{:.6}", v[i]));
        }
        csv.row(row);
    }
    let path = Path::new("results/fig10_penalty.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
