//! Extension: commit-time vs naive-speculative history ablation (§VI-E).
//! Writes `results/ext_wrong_path.csv`.

use chirp_bench::HarnessArgs;
use chirp_sim::experiments::ext_wrong_path;
use chirp_sim::report::Table;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let result = ext_wrong_path::run(&suite, &config);
    println!("{}", ext_wrong_path::render(&result));

    let mut csv = Table::new(["pollution_events", "mean_mpki", "reduction_vs_lru"]);
    for (p, m, r) in &result.rows {
        csv.row([format!("{p}"), format!("{m:.6}"), format!("{r:.6}")]);
    }
    let path = Path::new("results/ext_wrong_path.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
