//! Extension: compare the paper's lineup against the extra baselines this
//! repository implements (DRRIP, perceptron reuse prediction, and a
//! short-history CHiRP variant). Writes `results/ext_baselines.csv`.

use chirp_bench::{lineup9, policy_label, HarnessArgs};
use chirp_sim::report::Table;
use chirp_sim::run_suite;
use chirp_sim::runner::group_by_benchmark;
use chirp_tlb::TlbReplacementPolicy;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::Path;

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let policies = lineup9();
    let config = args.runner_config();
    let runs = run_suite(&suite, &policies, &config);
    let grouped = group_by_benchmark(&runs, policies.len());

    let mut sums = vec![0.0f64; policies.len()];
    for group in &grouped {
        for (i, run) in group.iter().enumerate() {
            sums[i] += run.result.mpki();
        }
    }
    let n = grouped.len() as f64;
    let lru = sums[0] / n;

    let mut table = Table::new(["policy", "mean MPKI", "reduction vs LRU", "storage B"]);
    let mut csv = Table::new(["policy", "mean_mpki", "reduction_vs_lru", "storage_bytes"]);
    for (i, kind) in policies.iter().enumerate() {
        let m = sums[i] / n;
        let storage = kind.build_dispatch(config.sim.tlb.l2, 0).storage().total_bytes();
        table.row([
            policy_label(kind),
            format!("{m:.3}"),
            format!("{:+.2}%", (lru - m) / lru * 100.0),
            format!("{storage}"),
        ]);
        csv.row([
            policy_label(kind),
            format!("{m:.6}"),
            format!("{:.6}", (lru - m) / lru),
            format!("{storage}"),
        ]);
    }
    println!("Extension baselines vs the paper lineup ({} benchmarks)\n", grouped.len());
    println!("{}", table.render());
    let path = Path::new("results/ext_baselines.csv");
    chirp_bench::exit_on_err(csv.write_csv(path), format!("cannot write {}", path.display()));
    eprintln!("wrote {}", path.display());
}
