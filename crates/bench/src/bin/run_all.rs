//! Runs every experiment binary's workload in sequence, printing each
//! figure/table — the one-shot reproduction driver.
//!
//! `run_all --benchmarks 870 --instructions 1_000_000` regenerates the
//! committed EXPERIMENTS.md numbers.

use chirp_bench::{exit_on_err, print_scheduler_summary, render_policy_rollup, HarnessArgs};
use chirp_sim::experiments::{
    fig10_penalty, fig11_access_rate, fig1_efficiency, fig2_history, fig3_adaline, fig6_ablation,
    fig7_mpki, fig8_speedup, fig9_table_size,
};
use chirp_sim::SimConfig;
use chirp_telemetry::TelemetryMode;
use chirp_trace::suite::{build_suite, SuiteConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let config = args.runner_config();
    let t0 = std::time::Instant::now();

    println!("==== Table II ====\n{}", SimConfig::default().render_table_ii());

    let section = |name: &str| {
        eprintln!("[{:>6.1}s] running {name}...", t0.elapsed().as_secs_f64());
    };

    // Figures 1, 7, 8 and 11 are different views of the same suite run.
    section("Figures 1/7/8/11 (shared suite run)");
    let policies = chirp_sim::PolicyKind::paper_lineup();
    let telemetry = args.telemetry_spec();
    let runs = if telemetry.mode.is_enabled() {
        // Instrumented runs return results bit-identical to run_suite but
        // always simulate (the ledger has no epoch series to answer with).
        let (runs, series) = chirp_sim::run_suite_telemetry(&suite, &policies, &config, &telemetry);
        if telemetry.mode == TelemetryMode::Epochs {
            let path = args.telemetry_out.join("telemetry_epochs.jsonl");
            exit_on_err(
                chirp_sim::write_series(&path, &series),
                format!("cannot write telemetry series {}", path.display()),
            );
            eprintln!(
                "[telemetry] {} unit series ({} epochs) -> {}",
                series.len(),
                series.iter().map(|u| u.rows.len()).sum::<usize>(),
                path.display()
            );
        }
        println!("==== Telemetry (policy rollup) ====\n{}", render_policy_rollup(&series));
        runs
    } else {
        chirp_sim::run_suite(&suite, &policies, &config)
    };
    println!(
        "==== Figure 7 ====\n{}",
        fig7_mpki::render(&fig7_mpki::from_runs(&runs, policies.len()))
    );
    println!(
        "==== Figure 8 ====\n{}",
        fig8_speedup::render(&fig8_speedup::from_runs(
            &runs,
            policies.len(),
            config.sim.tlb.walk_penalty
        ))
    );
    println!(
        "==== Figure 1 ====\n{}",
        fig1_efficiency::render(&fig1_efficiency::from_runs(&runs, policies.len()))
    );
    println!(
        "==== Figure 11 ====\n{}",
        fig11_access_rate::render(&fig11_access_rate::from_runs(&runs, policies.len()))
    );
    print_scheduler_summary("figures 1/7/8/11");
    drop(runs);
    section("Figure 6");
    println!("==== Figure 6 ====\n{}", fig6_ablation::render(&fig6_ablation::run(&suite, &config)));
    print_scheduler_summary("figure 6");
    section("Figure 9");
    println!(
        "==== Figure 9 ====\n{}",
        fig9_table_size::render(&fig9_table_size::run(&suite, &config))
    );
    print_scheduler_summary("figure 9");

    // The sweeps are the heavy ones: run them on an even ~64-benchmark
    // sample of the suite.
    let small: Vec<_> = suite.iter().step_by((suite.len() / 64).max(1)).cloned().collect();
    section("Figure 2 (subset)");
    println!(
        "==== Figure 2 (subset of {} benchmarks) ====\n{}",
        small.len(),
        fig2_history::render(&fig2_history::run(&small, &config, &fig2_history::PAPER_LENGTHS))
    );
    print_scheduler_summary("figure 2");
    section("Figure 10 (subset)");
    println!(
        "==== Figure 10 (subset of {} benchmarks) ====\n{}",
        small.len(),
        fig10_penalty::render(&fig10_penalty::run(
            &small,
            &config,
            &fig10_penalty::PAPER_PENALTIES
        ))
    );
    print_scheduler_summary("figure 10");
    section("Figure 3 (subset)");
    let tiny: Vec<_> = suite.iter().step_by(8.max(suite.len() / 24)).cloned().collect();
    println!(
        "==== Figure 3 (subset of {} benchmarks) ====\n{}",
        tiny.len(),
        fig3_adaline::render(&fig3_adaline::run(&tiny, &config))
    );
    print_scheduler_summary("figure 3");

    // With a store attached, close with the ledger's own account of what
    // this invocation can now answer without simulating — rendered by the
    // query engine, so the numbers match what `chirp-query --store` says.
    if let Some(root) = &args.store {
        match chirp_query::QueryIndex::from_store_root(root) {
            Ok(index) => {
                println!("==== Ledger ({}) ====", root.display());
                for query in ["count", "argmin mpki where workload=zipfian", "argmax efficiency"] {
                    match chirp_query::run_query(query, &index) {
                        Ok(answer) => print!("$ {query}\n{}", answer.render_table()),
                        Err(e) => eprintln!("[ledger] {query}: {e}"),
                    }
                }
            }
            Err(e) => eprintln!("[ledger] cannot index {}: {e}", root.display()),
        }
    }

    eprintln!("[{:>6.1}s] done", t0.elapsed().as_secs_f64());
}
