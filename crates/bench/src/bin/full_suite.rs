//! Production full-suite driver on the streaming path.
//!
//! Runs the 9-policy extended lineup over the suite through
//! [`chirp_sim::run_suite_streamed`]: every (benchmark × policy) unit
//! streams its trace in bounded batches (peak per-unit residency is
//! O(`--stream-chunk`), not O(trace)), finished units land in the store
//! ledger as they complete, and a rerun resumes from whatever a previous
//! invocation — interrupted or not — already recorded.
//!
//! ```text
//! full_suite --store results/store --benchmarks 8 --instructions 1_000_000
//! full_suite --store results/store --resume       # continue, fail if no progress
//! ```
//!
//! `--store DIR` is required (resumability lives in the ledger).
//! `--resume` additionally asserts the ledger already holds results, so a
//! typo'd store path fails fast instead of silently starting over. The
//! usual harness flags (`--threads`, `--mem-budget`, `--stream-chunk`,
//! `--telemetry*`) apply; results are bit-identical to the materialized
//! runner at any thread count, budget or chunk size.

use chirp_bench::{exit_on_err, lineup9, policy_label, print_scheduler_summary, HarnessArgs};
use chirp_sim::run_suite_streamed;
use chirp_store::Store;
use chirp_trace::suite::{build_suite, SuiteConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let Some(root) = &args.store else {
        eprintln!("full_suite needs --store DIR: incremental progress lives in the ledger");
        std::process::exit(2);
    };

    if args.resume {
        let store = exit_on_err(Store::open(root), format!("cannot open store {}", root.display()));
        let prior = store.ledger.len();
        if prior == 0 {
            eprintln!(
                "--resume: ledger at {} holds no results to resume from \
                 (run once without --resume first)",
                root.display()
            );
            std::process::exit(1);
        }
        eprintln!("[resume] ledger already holds {prior} results");
    }

    let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
    let policies = lineup9();
    let config = args.runner_config();
    let units = suite.len() * policies.len();
    eprintln!(
        "[full-suite] {} benchmarks x {} policies = {units} units at {} instructions \
         (chunk {}, {} threads)",
        suite.len(),
        policies.len(),
        args.instructions,
        config.stream_chunk_records(),
        config.worker_threads(),
    );

    let t0 = std::time::Instant::now();
    let (runs, stats) = exit_on_err(
        run_suite_streamed(&suite, &policies, &config, root),
        "streamed full-suite run failed",
    );
    let elapsed = t0.elapsed().as_secs_f64();

    let simulated_instr = stats.simulated as u64 * args.instructions as u64;
    eprintln!(
        "[full-suite] {} simulated, {} from ledger ({} archive streams, {} generated, \
         {} regenerated) in {elapsed:.1}s ({:.1}M instr/s)",
        stats.simulated,
        stats.ledger_hits,
        stats.trace_hits,
        stats.trace_generated,
        stats.trace_regenerated,
        simulated_instr as f64 / elapsed.max(1e-9) / 1e6,
    );
    print_scheduler_summary("full suite");

    // Per-policy rollup over the whole suite — the same numbers
    // `chirp-query 'mean mpki from runs group by policy'` answers from
    // the ledger this run just wrote.
    println!("{:<12} {:>10} {:>10} {:>12}", "policy", "mean MPKI", "mean IPC", "benchmarks");
    for (pi, policy) in policies.iter().enumerate() {
        let rows: Vec<_> = runs.iter().skip(pi).step_by(policies.len()).collect();
        let n = rows.len().max(1) as f64;
        let mpki = rows.iter().map(|r| r.result.mpki()).sum::<f64>() / n;
        let ipc = rows.iter().map(|r| r.result.ipc()).sum::<f64>() / n;
        println!("{:<12} {:>10.4} {:>10.4} {:>12}", policy_label(policy), mpki, ipc, rows.len());
    }
}
