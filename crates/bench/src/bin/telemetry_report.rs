//! Renders phase summaries from a telemetry epoch series.
//!
//! Two modes:
//!
//! * `telemetry_report --input FILE` reads a JSONL series previously
//!   written by `run_all --telemetry epochs` (or [`chirp_sim::write_series`])
//!   and renders it without simulating anything;
//! * without `--input`, it runs the paper lineup over a fresh suite with
//!   epoch instrumentation (honouring the usual harness flags plus
//!   `--epoch-instructions`) and reports on that run.
//!
//! Output: one per-unit phase-summary table (epoch counts, MPKI phase
//! spread, table access rate, dead-prediction accuracy) and a per-policy
//! rollup — the time-resolved view of the paper's Figure 11 claim that
//! CHiRP touches its prediction tables on roughly 10% of L2 TLB accesses.

use chirp_bench::{
    print_scheduler_summary, render_phase_summary, render_policy_rollup, HarnessArgs,
};
use chirp_sim::telemetry::TelemetrySpec;
use chirp_telemetry::TelemetryMode;
use chirp_trace::suite::{build_suite, SuiteConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let series = match &args.input {
        Some(path) => chirp_sim::read_series(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read telemetry series {}: {e}", path.display());
            std::process::exit(1);
        }),
        None => {
            let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
            let policies = chirp_sim::PolicyKind::paper_lineup();
            // A report needs epochs regardless of the --telemetry flag.
            let spec = TelemetrySpec {
                mode: TelemetryMode::Epochs,
                epoch_instructions: args.epoch_instructions,
            };
            let (_, series) =
                chirp_sim::run_suite_telemetry(&suite, &policies, &args.runner_config(), &spec);
            print_scheduler_summary("telemetry report");
            series
        }
    };

    if series.is_empty() {
        eprintln!("error: no telemetry series to report on");
        std::process::exit(1);
    }
    println!("==== Per-unit phase summary ====\n{}", render_phase_summary(&series));
    println!("==== Per-policy rollup ====\n{}", render_policy_rollup(&series));
}
