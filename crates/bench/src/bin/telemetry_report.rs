//! Renders phase summaries from a telemetry epoch series.
//!
//! Two modes:
//!
//! * `telemetry_report --input FILE` reads a JSONL series previously
//!   written by `run_all --telemetry epochs` (or [`chirp_sim::write_series`])
//!   and renders it without simulating anything;
//! * without `--input`, it runs the paper lineup over a fresh suite with
//!   epoch instrumentation (honouring the usual harness flags plus
//!   `--epoch-instructions`) and reports on that run.
//!
//! Output: one per-unit phase-summary table (epoch counts, MPKI phase
//! spread, table access rate, dead-prediction accuracy) and a per-policy
//! rollup — the time-resolved view of the paper's Figure 11 claim that
//! CHiRP touches its prediction tables on roughly 10% of L2 TLB accesses.

use chirp_bench::{
    print_scheduler_summary, render_phase_summary, render_policy_rollup, HarnessArgs,
};
use chirp_sim::telemetry::TelemetrySpec;
use chirp_telemetry::TelemetryMode;
use chirp_trace::suite::{build_suite, SuiteConfig};
use std::path::PathBuf;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let input = extract_input(&mut raw).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });

    let series = match input {
        Some(path) => chirp_sim::read_series(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read telemetry series {}: {e}", path.display());
            std::process::exit(1);
        }),
        None => {
            let args = HarnessArgs::parse(raw).unwrap_or_else(|msg| {
                eprintln!("{msg} (telemetry_report also accepts --input FILE)");
                std::process::exit(2);
            });
            let suite = build_suite(&SuiteConfig { benchmarks: args.benchmarks });
            let policies = chirp_sim::PolicyKind::paper_lineup();
            // A report needs epochs regardless of the --telemetry flag.
            let spec = TelemetrySpec {
                mode: TelemetryMode::Epochs,
                epoch_instructions: args.epoch_instructions,
            };
            let (_, series) =
                chirp_sim::run_suite_telemetry(&suite, &policies, &args.runner_config(), &spec);
            print_scheduler_summary("telemetry report");
            series
        }
    };

    if series.is_empty() {
        eprintln!("error: no telemetry series to report on");
        std::process::exit(1);
    }
    println!("==== Per-unit phase summary ====\n{}", render_phase_summary(&series));
    println!("==== Per-policy rollup ====\n{}", render_policy_rollup(&series));
}

/// Pulls `--input FILE` out of the raw argument list, leaving the rest for
/// [`HarnessArgs::parse`].
fn extract_input(raw: &mut Vec<String>) -> Result<Option<PathBuf>, String> {
    match raw.iter().position(|a| a == "--input") {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= raw.len() {
                return Err("--input needs a file path".to_string());
            }
            let path = PathBuf::from(raw.remove(i + 1));
            raw.remove(i);
            if raw.iter().any(|a| a == "--input") {
                return Err("--input given more than once".to_string());
            }
            Ok(Some(path))
        }
    }
}
