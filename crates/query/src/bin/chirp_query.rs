//! `chirp-query` — ask questions of the run ledger, telemetry series and
//! bench trajectory from the command line.
//!
//! ```text
//! chirp-query --store results/store "argmin mpki where workload=zipfian"
//! chirp-query --store results/store "diff mpki between policy=lru vs policy=chirp"
//! chirp-query --store results/store "regress mpki threshold 0.1"
//! chirp-query --telemetry results/telemetry/telemetry_epochs.jsonl \
//!     "max mpki from epochs where policy=chirp"
//! chirp-query --jsonl BENCH_runner.json --raw \
//!     "last instr_per_sec_1t from bench where bench=sim_throughput"
//! ```
//!
//! Flags:
//!
//! ```text
//! --store DIR        load DIR's run ledger as the `runs` table
//! --telemetry FILE   load a telemetry epoch series as `epochs`
//! --jsonl [T=]FILE   load a generic JSONL file as table T (default `bench`)
//! --json             print JSONL instead of an aligned table
//! --raw              print only the scalar (for scripts); exits 1 when
//!                    the query has no scalar or matched nothing
//! ```

use chirp_query::{run_query, QueryIndex};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    stores: Vec<PathBuf>,
    telemetry: Vec<PathBuf>,
    jsonl: Vec<(String, PathBuf)>,
    json: bool,
    raw: bool,
    query: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        stores: vec![],
        telemetry: vec![],
        jsonl: vec![],
        json: false,
        raw: false,
        query: String::new(),
    };
    let mut it = std::env::args().skip(1);
    let mut exprs: Vec<String> = vec![];
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => {
                args.stores.push(it.next().ok_or("--store needs a directory")?.into());
            }
            "--telemetry" => {
                args.telemetry.push(it.next().ok_or("--telemetry needs a file")?.into());
            }
            "--jsonl" => {
                let v = it.next().ok_or("--jsonl needs a file (or table=file)")?;
                match v.split_once('=') {
                    Some((table, file)) => args.jsonl.push((table.to_string(), file.into())),
                    None => args.jsonl.push(("bench".to_string(), v.into())),
                }
            }
            "--json" => args.json = true,
            "--raw" => args.raw = true,
            "--help" | "-h" => {
                return Err(
                    "usage: chirp-query [--store DIR] [--telemetry FILE] [--jsonl [T=]FILE] \
                     [--json|--raw] \"<query>\"\n       see `cargo doc -p chirp-query` for the \
                     expression language"
                        .to_string(),
                )
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}")),
            _ => exprs.push(arg),
        }
    }
    if exprs.is_empty() {
        return Err("missing query expression (try --help)".to_string());
    }
    // Allow the query to arrive as several shell words, unquoted.
    args.query = exprs.join(" ");
    if args.stores.is_empty() && args.telemetry.is_empty() && args.jsonl.is_empty() {
        return Err("no data sources: pass --store, --telemetry or --jsonl".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("chirp-query: {message}");
            return ExitCode::from(2);
        }
    };
    let mut index = QueryIndex::new();
    let loaded = (|| {
        for dir in &args.stores {
            index.add_store_root(dir)?;
        }
        for file in &args.telemetry {
            index.add_epochs_file(file)?;
        }
        for (table, file) in &args.jsonl {
            index.add_jsonl_file(table, file)?;
        }
        Ok::<(), chirp_query::QueryError>(())
    })();
    if let Err(e) = loaded {
        eprintln!("chirp-query: {e}");
        return ExitCode::from(2);
    }
    match run_query(&args.query, &index) {
        Ok(answer) => {
            if args.raw {
                match answer.render_raw() {
                    Some(value) => {
                        println!("{value}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("chirp-query: no scalar to print (query matched nothing?)");
                        ExitCode::FAILURE
                    }
                }
            } else if args.json {
                print!("{}", answer.render_json());
                ExitCode::SUCCESS
            } else {
                print!("{}", answer.render_table());
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("chirp-query: {e}");
            ExitCode::from(2)
        }
    }
}
