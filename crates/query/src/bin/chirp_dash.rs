//! `chirp-dash` — render the benchmark trajectory (and optionally the
//! run ledger) into one static HTML dashboard.
//!
//! ```text
//! chirp-dash --trajectory BENCH_runner.json --out results/dashboard.html
//! chirp-dash --trajectory BENCH_runner.json --store results/store --out dash.html
//! ```
//!
//! Every number on the dashboard comes out of the query engine: each
//! panel is one query run through [`chirp_query::run_query`] and embedded
//! as the exact JSONL that `chirp-query --json` prints for that query —
//! byte-identical, because both call [`chirp_query::Answer::render_json`]
//! on the same index. The payload lands in a
//! `<script type="application/json" id="chirp-data">` block; a small
//! inline script renders SVG trajectory charts (throughput, lane-sweep
//! best, serve p50/p99) with regression markers wherever a point drops
//! more than 10% below its predecessor — the same `new < 0.9 * prev`
//! rule `scripts/bench.sh`'s guard applies — plus a per-policy MPKI
//! panel (`mean mpki from runs group by policy`) when a store is given.
//!
//! Flags:
//!
//! ```text
//! --trajectory FILE  bench trajectory JSONL (default BENCH_runner.json)
//! --store DIR        run ledger for the per-policy MPKI panel
//! --out FILE         output HTML file (default results/dashboard.html)
//! ```

use chirp_query::{run_query, QueryIndex};
use chirp_store::JsonObject;
use std::path::PathBuf;
use std::process::ExitCode;

/// The dashboard panels: id, chart title, and the query whose
/// `chirp-query --json` output the panel plots. Trajectory panels read
/// the `bench` table; the MPKI panel reads `runs` and only renders when
/// a store is attached.
const TRAJECTORY_PANELS: [(&str, &str, &str); 6] = [
    (
        "sim_throughput",
        "Simulator throughput (instr/s, sequential baseline)",
        "show instr_per_sec_1t from bench where bench=sim_throughput",
    ),
    (
        "sim_throughput_best",
        "Simulator throughput (instr/s, best over lane sweep)",
        "show best(instr_per_sec_1t,instr_per_sec_1t_dyn,instr_per_sec_1t_lanes2,instr_per_sec_1t_lanes4,instr_per_sec_1t_lanes8) from bench where bench=sim_throughput",
    ),
    (
        "sim_throughput_factored",
        "Factored lineup throughput (instr/s, 1 front end + 9 back-ends)",
        "show instr_per_sec_1t_factored from bench where bench=sim_throughput",
    ),
    (
        "serve_req_per_sec",
        "chirp-serve request throughput (req/s)",
        "show serve_req_per_sec from bench where bench=serve_loadgen",
    ),
    (
        "serve_p50_ms",
        "chirp-serve latency p50 (ms)",
        "show serve_p50_ms from bench where bench=serve_loadgen",
    ),
    (
        "serve_p99_ms",
        "chirp-serve latency p99 (ms)",
        "show serve_p99_ms from bench where bench=serve_loadgen",
    ),
];

const MPKI_PANEL: (&str, &str, &str) =
    ("mpki_by_policy", "Mean MPKI per policy (run ledger)", "mean mpki from runs group by policy");

struct Args {
    trajectory: PathBuf,
    store: Option<PathBuf>,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trajectory: PathBuf::from("BENCH_runner.json"),
        store: None,
        out: PathBuf::from("results/dashboard.html"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trajectory" => {
                args.trajectory = it.next().ok_or("--trajectory needs a file")?.into();
            }
            "--store" => args.store = Some(it.next().ok_or("--store needs a directory")?.into()),
            "--out" => args.out = it.next().ok_or("--out needs a file")?.into(),
            "--help" | "-h" => {
                return Err(
                    "usage: chirp-dash [--trajectory FILE] [--store DIR] [--out FILE]".to_string()
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("chirp-dash: {message}");
            return ExitCode::from(2);
        }
    };

    let mut index = QueryIndex::new();
    if let Err(e) = index.add_jsonl_file("bench", &args.trajectory) {
        eprintln!("chirp-dash: cannot load trajectory {}: {e}", args.trajectory.display());
        return ExitCode::from(2);
    }
    if let Some(store) = &args.store {
        if let Err(e) = index.add_store_root(store) {
            eprintln!("chirp-dash: cannot load store {}: {e}", store.display());
            return ExitCode::from(2);
        }
    }

    // One payload entry per panel: the query text and the byte-exact
    // `chirp-query --json` answer for it.
    let mut panels: Vec<(&str, &str, &str)> = TRAJECTORY_PANELS.to_vec();
    if args.store.is_some() {
        panels.push(MPKI_PANEL);
    }
    let mut payload = JsonObject::new();
    for (id, title, query) in &panels {
        let jsonl = match run_query(query, &index) {
            Ok(answer) => answer.render_json(),
            Err(e) => {
                eprintln!("chirp-dash: query for panel {id} failed: {e}");
                return ExitCode::from(2);
            }
        };
        let mut entry = JsonObject::new();
        entry.set_str("title", title);
        entry.set_str("query", query);
        entry.set_str("jsonl", &jsonl);
        payload.set_str(id, &entry.to_json());
    }

    let html = render_html(&payload);
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("chirp-dash: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, html) {
        eprintln!("chirp-dash: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "chirp-dash: {} panels from {} -> {}",
        panels.len(),
        args.trajectory.display(),
        args.out.display()
    );
    ExitCode::SUCCESS
}

/// The static page: embedded data payload plus an inline renderer. The
/// payload is the only dynamic part; `<\/` escaping keeps the JSON block
/// from terminating the script element early.
fn render_html(payload: &JsonObject) -> String {
    let data = payload.to_json().replace("</", "<\\/");
    format!(
        r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CHiRP benchmark trajectory</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #222; }}
h1 {{ font-size: 1.4rem; }}
h2 {{ font-size: 1.05rem; margin: 1.5rem 0 0.25rem; }}
.query {{ color: #777; font: 12px ui-monospace, monospace; margin: 0 0 0.5rem; }}
svg {{ background: #fafafa; border: 1px solid #ddd; }}
.empty {{ color: #999; font-style: italic; }}
table {{ border-collapse: collapse; }}
td, th {{ padding: 2px 10px; text-align: right; border-bottom: 1px solid #eee; }}
th:first-child, td:first-child {{ text-align: left; }}
.bar {{ fill: #4878b0; }}
.warn {{ color: #b03030; font-weight: 600; }}
</style>
</head>
<body>
<h1>CHiRP benchmark trajectory</h1>
<p>Every number below is a <code>chirp-query --json</code> answer embedded verbatim;
red markers flag points more than 10% below their predecessor — the same rule
<code>scripts/bench.sh</code>'s regression guard applies.</p>
<div id="panels"></div>
<script type="application/json" id="chirp-data">{data}</script>
<script>
"use strict";
const payload = JSON.parse(document.getElementById("chirp-data").textContent);
const root = document.getElementById("panels");

function rowsOf(entry) {{
  return entry.jsonl.split("\n").filter(Boolean).map(JSON.parse)
    .filter(r => !("scalar" in r) || Object.keys(r).length > 1);
}}

function metricOf(rows) {{
  if (!rows.length) return null;
  const skip = new Set(["source", "benchmark", "bench", "policy", "workload", "epoch", "key", "n", "scalar"]);
  for (const k of Object.keys(rows[0])) {{
    if (!skip.has(k) && typeof rows[0][k] === "number") return k;
  }}
  return null;
}}

function fmt(v) {{
  if (v >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return (Math.round(v * 1000) / 1000).toString();
}}

function chart(values, sources) {{
  const W = 640, H = 180, PAD = 42;
  const min = Math.min(...values), max = Math.max(...values);
  const span = (max - min) || 1;
  const x = i => values.length === 1 ? W / 2 :
    PAD + i * (W - 2 * PAD) / (values.length - 1);
  const y = v => H - PAD - (v - min) * (H - 2 * PAD) / span;
  let s = `<svg width="${{W}}" height="${{H}}" role="img">`;
  s += `<text x="4" y="${{y(max) + 4}}" font-size="11" fill="#777">${{fmt(max)}}</text>`;
  s += `<text x="4" y="${{y(min) + 4}}" font-size="11" fill="#777">${{fmt(min)}}</text>`;
  const pts = values.map((v, i) => `${{x(i)}},${{y(v)}}`).join(" ");
  s += `<polyline points="${{pts}}" fill="none" stroke="#4878b0" stroke-width="2"/>`;
  let regressions = 0;
  values.forEach((v, i) => {{
    const regressed = i > 0 && v < 0.9 * values[i - 1];
    if (regressed) regressions++;
    s += `<circle cx="${{x(i)}}" cy="${{y(v)}}" r="${{regressed ? 5 : 3}}"` +
         ` fill="${{regressed ? "#b03030" : "#4878b0"}}">` +
         `<title>${{sources[i]}}: ${{v}}${{regressed ? " (regressed >10%)" : ""}}</title></circle>`;
  }});
  s += `</svg>`;
  return {{ svg: s, regressions }};
}}

function barTable(rows, metric, keyField) {{
  const max = Math.max(...rows.map(r => r[metric])) || 1;
  let s = `<table><tr><th>${{keyField}}</th><th>${{metric}}</th><th></th></tr>`;
  for (const r of rows) {{
    const w = Math.max(1, Math.round(160 * r[metric] / max));
    s += `<tr><td>${{r[keyField]}}</td><td>${{r[metric]}}</td>` +
         `<td><svg width="170" height="12"><rect class="bar" width="${{w}}" height="12"/></svg></td></tr>`;
  }}
  return s + `</table>`;
}}

for (const [id, raw] of Object.entries(payload)) {{
  const entry = JSON.parse(raw);
  const rows = rowsOf(entry);
  const div = document.createElement("div");
  let body;
  const metric = metricOf(rows);
  if (!rows.length || metric === null) {{
    body = `<p class="empty">no data in trajectory</p>`;
  }} else if (id === "mpki_by_policy") {{
    body = barTable(rows, metric, "policy");
  }} else {{
    const values = rows.map(r => r[metric]);
    const sources = rows.map(r => r.source || "");
    const c = chart(values, sources);
    body = c.svg + (c.regressions
      ? `<p class="warn">${{c.regressions}} regression marker(s) &gt;10% below predecessor</p>`
      : "");
  }}
  div.innerHTML = `<h2>${{entry.title}}</h2><p class="query">$ ${{entry.query}}</p>` + body;
  root.appendChild(div);
}}
</script>
</body>
</html>
"##
    )
}
