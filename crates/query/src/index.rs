//! The queryable index: named tables of flat rows loaded from the run
//! ledger, telemetry epoch series and generic JSONL trajectories.
//!
//! Loading is tolerant by design — torn or foreign lines are skipped, not
//! fatal — matching the store's own reading discipline. Ledger rows are
//! lifted to the current record schema ([`migrate_record`]) and enriched
//! with the derived metrics the paper discusses (`mpki`, `ipc`,
//! `hit_rate`) plus a `key` field carrying the run key, so every row a
//! query returns can name the ledger entry it came from.

use crate::QueryError;
use chirp_sim::store_cache::{migrate_record, run_from_record};
use chirp_store::{hex16, parse_hex16, JsonObject, RunLedger};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One indexed row: a flat record plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Append-order position within the table (ledger line number,
    /// epoch-file line number, ...). History-walking queries (`regress`,
    /// `first`/`last`) order by this.
    pub seq: u64,
    /// Human-readable citation: `run <key>` for ledger rows, `run <key>
    /// epoch N` for telemetry rows, `<table>:<line>` otherwise.
    pub source: String,
    /// The ledger run key, when the row has one.
    pub key: Option<u64>,
    /// The record's fields.
    pub fields: JsonObject,
}

/// A set of named row tables.
///
/// Conventional table names: `runs` (the ledger), `epochs` (telemetry
/// series), `bench` (the performance trajectory). Queries default to
/// `runs` when it is loaded, otherwise to the only table present.
#[derive(Debug, Default)]
pub struct QueryIndex {
    tables: BTreeMap<String, Vec<Row>>,
}

impl QueryIndex {
    /// An empty index.
    pub fn new() -> QueryIndex {
        QueryIndex::default()
    }

    /// Loads a store directory's run ledger into the `runs` table,
    /// preserving full append history (rewritten keys keep their older
    /// lines, so `regress` can walk them).
    pub fn from_store_root(root: &Path) -> Result<QueryIndex, QueryError> {
        let mut index = QueryIndex::new();
        index.add_store_root(root)?;
        Ok(index)
    }

    /// Adds a store directory's ledger history as the `runs` table.
    pub fn add_store_root(&mut self, root: &Path) -> Result<(), QueryError> {
        let lines = RunLedger::scan(root).map_err(|e| QueryError::Io(e.to_string()))?;
        let table = self.tables.entry("runs".to_string()).or_default();
        for line in lines {
            table.push(run_row(table.len() as u64, line.key, &line.record));
        }
        Ok(())
    }

    /// Adds an in-memory ledger (latest record per key) as the `runs`
    /// table — the form `chirp-serve` holds at runtime.
    pub fn add_ledger(&mut self, ledger: &RunLedger) {
        let table = self.tables.entry("runs".to_string()).or_default();
        for (key, record) in ledger.iter() {
            table.push(run_row(table.len() as u64, key, record));
        }
    }

    /// Loads a telemetry epoch JSONL file as the `epochs` table.
    pub fn add_epochs_file(&mut self, path: &Path) -> Result<(), QueryError> {
        let text = fs::read_to_string(path)
            .map_err(|e| QueryError::Io(format!("cannot read {}: {e}", path.display())))?;
        let table = self.tables.entry("epochs".to_string()).or_default();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let Ok(fields) = JsonObject::parse(line) else { continue };
            let seq = table.len() as u64;
            let key = fields.str_field("run_key").and_then(parse_hex16).filter(|&k| k != 0);
            let source = match (key, fields.u64_field("epoch")) {
                (Some(k), Some(e)) => format!("run {} epoch {e}", hex16(k)),
                (Some(k), None) => format!("run {}", hex16(k)),
                (None, _) => format!("epochs:{}", seq + 1),
            };
            table.push(Row { seq, source, key, fields });
        }
        Ok(())
    }

    /// Loads a generic flat-or-nested JSONL file (e.g. the
    /// `BENCH_runner.json` trajectory) into `table`. Nested sub-objects
    /// flatten into dotted field names; unparseable lines are skipped.
    pub fn add_jsonl_file(&mut self, table: &str, path: &Path) -> Result<(), QueryError> {
        let text = fs::read_to_string(path)
            .map_err(|e| QueryError::Io(format!("cannot read {}: {e}", path.display())))?;
        let rows = self.tables.entry(table.to_string()).or_default();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let Ok(fields) = JsonObject::parse_flatten(line) else { continue };
            let seq = rows.len() as u64;
            rows.push(Row { seq, source: format!("{table}:{}", seq + 1), key: None, fields });
        }
        Ok(())
    }

    /// The rows of `name`, if loaded.
    pub fn table(&self, name: &str) -> Option<&[Row]> {
        self.tables.get(name).map(Vec::as_slice)
    }

    /// Loaded table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The table a query without a `from` clause addresses: `runs` when
    /// loaded, otherwise the only table present.
    pub fn default_table(&self) -> Option<&str> {
        if self.tables.contains_key("runs") {
            return Some("runs");
        }
        if self.tables.len() == 1 {
            return self.tables.keys().next().map(String::as_str);
        }
        None
    }
}

/// Builds a `runs` row: migrates the record to the current schema, then
/// stamps the run key and the derived per-run metrics.
fn run_row(seq: u64, key: u64, record: &JsonObject) -> Row {
    let mut fields = migrate_record(record);
    fields.set_str("key", &hex16(key));
    if let Some(run) = run_from_record(&fields) {
        let r = &run.result;
        fields.set_f64("mpki", r.mpki());
        fields.set_f64("ipc", r.ipc());
        let probes = r.l2_tlb.hits + r.l2_tlb.misses;
        if probes > 0 {
            fields.set_f64("hit_rate", r.l2_tlb.hits as f64 / probes as f64);
        }
    }
    Row { seq, source: format!("run {}", hex16(key)), key: Some(key), fields }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_store::TempDir;

    fn write(path: &Path, text: &str) {
        fs::write(path, text).unwrap();
    }

    #[test]
    fn store_rows_carry_key_and_derived_metrics() {
        let dir = TempDir::new("chirp-query-index");
        // A v1 line (no schema field) followed by a v2-style rewrite of a
        // different run; both must index, the v1 one via migration.
        write(
            &dir.path().join("runs.jsonl"),
            concat!(
                "{\"key\":\"00000000000000ab\",\"benchmark\":\"db.scanidx.x#s1\",\"category\":\"db\",\"policy\":\"lru\",\"instructions\":1000,\"cycles\":2000,\"hits\":90,\"misses\":10,\"dead_evictions\":2,\"cold_fills\":1,\"l2_accesses\":100,\"prediction_table_accesses\":0,\"l2_accesses_total\":200,\"efficiency\":0.5}\n",
                "not json\n",
                "{\"key\":\"00000000000000cd\",\"schema\":2,\"benchmark\":\"hpc.stream.y#s2\",\"category\":\"hpc\",\"workload\":\"stream\",\"policy\":\"chirp\",\"code_policy\":\"chirp/1\",\"code_gen\":\"gen/1\",\"walk_penalty\":50,\"instructions\":1000,\"cycles\":1500,\"hits\":95,\"misses\":5,\"dead_evictions\":1,\"cold_fills\":1,\"l2_accesses\":100,\"prediction_table_accesses\":10,\"l2_accesses_total\":200,\"efficiency\":0.8}\n",
            ),
        );
        let index = QueryIndex::from_store_root(dir.path()).unwrap();
        let rows = index.table("runs").unwrap();
        assert_eq!(rows.len(), 2);
        let v1 = &rows[0];
        assert_eq!(v1.key, Some(0xab));
        assert_eq!(v1.source, "run 00000000000000ab");
        assert_eq!(v1.fields.str_field("key"), Some("00000000000000ab"));
        // Migration filled schema/workload/code identity.
        assert_eq!(v1.fields.u64_field("schema"), Some(2));
        assert_eq!(v1.fields.str_field("workload"), Some("scanidx"));
        assert_eq!(v1.fields.str_field("code_policy"), Some("pre-v2"));
        // Derived metrics: mpki = 10 misses / 1k instructions * 1000.
        assert_eq!(v1.fields.f64_field("mpki"), Some(10.0));
        assert_eq!(v1.fields.f64_field("ipc"), Some(0.5));
        assert_eq!(v1.fields.f64_field("hit_rate"), Some(0.9));
        assert_eq!(index.default_table(), Some("runs"));
    }

    #[test]
    fn epochs_and_jsonl_tables_load_tolerantly() {
        let dir = TempDir::new("chirp-query-index");
        let epochs = dir.path().join("epochs.jsonl");
        write(
            &epochs,
            concat!(
                "{\"benchmark\":\"a.b.c#s1\",\"policy\":\"lru\",\"run_key\":\"00000000000000ab\",\"epoch\":0,\"mpki\":2.5}\n",
                "{\"benchmark\":\"a.b.c#s1\",\"policy\":\"lru\",\"epoch\":1,\"mpki\":2.0}\n",
            ),
        );
        let bench = dir.path().join("bench.jsonl");
        write(
            &bench,
            concat!(
                "{\"bench\":\"sim_throughput\",\"instr_per_sec_1t\":100}\n",
                "garbage line\n",
                "{\"bench\":\"suite_runner\",\"sched_packed_8t\":{\"median_secs\":0.3}}\n",
            ),
        );
        let mut index = QueryIndex::new();
        index.add_epochs_file(&epochs).unwrap();
        index.add_jsonl_file("bench", &bench).unwrap();
        let ep = index.table("epochs").unwrap();
        assert_eq!(ep.len(), 2);
        assert_eq!(ep[0].source, "run 00000000000000ab epoch 0");
        assert_eq!(ep[0].key, Some(0xab));
        assert_eq!(ep[1].key, None); // pre-run_key line still loads
        let b = index.table("bench").unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].fields.f64_field("sched_packed_8t.median_secs"), Some(0.3));
        assert_eq!(index.default_table(), None); // two tables, no runs
    }
}
