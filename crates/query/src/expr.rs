//! The query expression language: tokenizer, recursive-descent parser and
//! AST.
//!
//! The grammar is small enough to read in one sitting:
//!
//! ```text
//! query    := simple | diff | regress
//! simple   := AGG [metric] [ 'from' WORD ] [ 'where' pred ]
//!             [ 'group' 'by' WORD ]
//! diff     := 'diff' metric 'between' pred 'vs' pred [ 'from' WORD ]
//! regress  := 'regress' metric [ 'threshold' NUMBER ] [ 'from' WORD ]
//!             [ 'where' pred ]
//! AGG      := 'min' | 'max' | 'mean' | 'sum' | 'count' | 'argmin'
//!           | 'argmax' | 'first' | 'last' | 'show'
//! metric   := WORD | 'best' '(' WORD (',' WORD)* ')'
//! pred     := or
//! or       := and ( 'or' and )*
//! and      := unary ( 'and' unary )*
//! unary    := 'not' unary | '(' pred ')' | cmp
//! cmp      := WORD OP value
//! OP       := '=' | '!=' | '<' | '<=' | '>' | '>=' | '~'
//! value    := WORD | QUOTED
//! ```
//!
//! `not` binds tighter than `and`, which binds tighter than `or` — the
//! usual boolean precedence, pinned by the crate's property tests. Bare
//! words cover benchmark names (`db.scanidx.i1024z0.9b64#s1`) and code
//! versions (`chirp/1`) without quoting; anything containing an operator
//! character or whitespace takes double quotes. The metric after `count`
//! is optional (`count where policy=chirp` counts matching rows).
//! `group by FIELD` partitions the matching rows by that field's value
//! and applies the aggregate per partition (`mean mpki from runs group
//! by policy`); `show` is already one row per match, so grouping it is a
//! parse error.

use std::fmt;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// An aggregate over the rows matching a predicate.
    Simple {
        /// The aggregate to apply.
        agg: Agg,
        /// The metric it applies to; `None` only for `count`.
        metric: Option<Metric>,
        /// Table to query (`from runs`), defaulting at eval time.
        table: Option<String>,
        /// Row filter; `None` keeps every row.
        pred: Option<Pred>,
        /// `group by FIELD`: apply the aggregate per distinct value of
        /// this field instead of once over all matching rows.
        group: Option<String>,
    },
    /// A per-benchmark comparison of one metric between two row sets.
    Diff {
        /// The metric compared.
        metric: Metric,
        /// Predicate selecting the left-hand rows.
        left: Pred,
        /// Predicate selecting the right-hand rows.
        right: Pred,
        /// Table to query.
        table: Option<String>,
    },
    /// A walk over append-order history flagging metric shifts.
    Regress {
        /// The metric walked.
        metric: Metric,
        /// Relative-change threshold (default 0.1 = 10%).
        threshold: f64,
        /// Table to query.
        table: Option<String>,
        /// Row filter applied before grouping.
        pred: Option<Pred>,
    },
}

/// Aggregates available in `simple` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Smallest metric value.
    Min,
    /// Largest metric value.
    Max,
    /// Arithmetic mean of the metric.
    Mean,
    /// Sum of the metric.
    Sum,
    /// Number of matching rows (with the metric, when one is given).
    Count,
    /// The row holding the smallest metric value.
    ArgMin,
    /// The row holding the largest metric value.
    ArgMax,
    /// Metric of the first matching row in append order.
    First,
    /// Metric of the last matching row in append order.
    Last,
    /// Every matching row, unaggregated.
    Show,
}

impl Agg {
    fn from_word(w: &str) -> Option<Agg> {
        Some(match w {
            "min" => Agg::Min,
            "max" => Agg::Max,
            "mean" => Agg::Mean,
            "sum" => Agg::Sum,
            "count" => Agg::Count,
            "argmin" => Agg::ArgMin,
            "argmax" => Agg::ArgMax,
            "first" => Agg::First,
            "last" => Agg::Last,
            "show" => Agg::Show,
            _ => return None,
        })
    }
}

/// What a query measures: one field, or the row-wise best of several.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A single field by name.
    Field(String),
    /// `best(f1,f2,...)` — per row, the largest of the listed fields
    /// (fields absent from a row are skipped).
    Best(Vec<String>),
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Field(name) => f.write_str(name),
            Metric::Best(names) => write!(f, "best({})", names.join(",")),
        }
    }
}

/// A row predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `field OP value`.
    Cmp {
        /// Field name on the row.
        field: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// Both sides must hold.
    And(Box<Pred>, Box<Pred>),
    /// Either side must hold.
    Or(Box<Pred>, Box<Pred>),
    /// The inner predicate must not hold.
    Not(Box<Pred>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `~` — substring match on the string form.
    Contains,
}

/// A literal: the raw text plus its numeric reading when it has one, so
/// the evaluator can compare numerically against numeric fields and
/// textually against string fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    /// The literal as written (quotes removed).
    pub text: String,
    /// `text` parsed as a number, when it parses.
    pub num: Option<f64>,
}

impl Literal {
    fn new(text: String) -> Literal {
        let num = text.parse::<f64>().ok().filter(|n| n.is_finite());
        Literal { text, num }
    }
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the query text.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses a query expression. Never panics: any input, including
/// arbitrary bytes, yields `Ok` or a positioned [`ParseError`].
pub fn parse(text: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(text)?;
    let mut p = TokenParser { tokens: &tokens, pos: 0, end: text.len() };
    let query = p.query()?;
    match p.peek() {
        None => Ok(query),
        Some(t) => Err(ParseError {
            message: format!("unexpected trailing input starting with {}", t.describe()),
            at: t.at,
        }),
    }
}

// ---------------------------------------------------------------- tokens

#[derive(Debug, Clone, PartialEq)]
enum TokenKind {
    Word(String),
    Quoted(String),
    Op(CmpOp),
    LParen,
    RParen,
    Comma,
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    kind: TokenKind,
    at: usize,
}

impl Token {
    fn describe(&self) -> String {
        match &self.kind {
            TokenKind::Word(w) => format!("`{w}`"),
            TokenKind::Quoted(_) => "a quoted string".to_string(),
            TokenKind::Op(_) => "a comparison operator".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
        }
    }
}

/// Characters that terminate a bare word. Everything else — including
/// `.`, `#`, `/`, `-` — is word material, so benchmark names and code
/// versions need no quoting.
fn is_word_break(c: char) -> bool {
    c.is_whitespace() || matches!(c, '(' | ')' | ',' | '=' | '!' | '<' | '>' | '~' | '"')
}

fn tokenize(text: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token { kind: TokenKind::LParen, at });
            }
            ')' => {
                chars.next();
                out.push(Token { kind: TokenKind::RParen, at });
            }
            ',' => {
                chars.next();
                out.push(Token { kind: TokenKind::Comma, at });
            }
            '=' => {
                chars.next();
                out.push(Token { kind: TokenKind::Op(CmpOp::Eq), at });
            }
            '~' => {
                chars.next();
                out.push(Token { kind: TokenKind::Op(CmpOp::Contains), at });
            }
            '!' => {
                chars.next();
                match chars.peek() {
                    Some(&(_, '=')) => {
                        chars.next();
                        out.push(Token { kind: TokenKind::Op(CmpOp::Ne), at });
                    }
                    _ => {
                        return Err(ParseError {
                            message: "`!` must be followed by `=`".to_string(),
                            at,
                        })
                    }
                }
            }
            '<' | '>' => {
                chars.next();
                let eq = matches!(chars.peek(), Some(&(_, '=')));
                if eq {
                    chars.next();
                }
                let op = match (c, eq) {
                    ('<', false) => CmpOp::Lt,
                    ('<', true) => CmpOp::Le,
                    ('>', false) => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                out.push(Token { kind: TokenKind::Op(op), at });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, c)) => s.push(c),
                        None => {
                            return Err(ParseError {
                                message: "unterminated quoted string".to_string(),
                                at,
                            })
                        }
                    }
                }
                out.push(Token { kind: TokenKind::Quoted(s), at });
            }
            _ => {
                let mut word = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_word_break(c) {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                out.push(Token { kind: TokenKind::Word(word), at });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------- parser

struct TokenParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    /// Byte length of the source, for errors at end of input.
    end: usize,
}

impl TokenParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at(&self) -> usize {
        self.peek().map_or(self.end, |t| t.at)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), at: self.at() })
    }

    /// Consumes the next token if it is the keyword `word`.
    fn eat_keyword(&mut self, word: &str) -> bool {
        if let Some(Token { kind: TokenKind::Word(w), .. }) = self.peek() {
            if w == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token { kind: TokenKind::Word(w), .. }) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            Some(t) => self.err(format!("expected {what}, found {}", t.describe())),
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        if self.eat_keyword("diff") {
            return self.diff();
        }
        if self.eat_keyword("regress") {
            return self.regress();
        }
        let word = self.expect_word("an aggregate (min/max/mean/sum/count/argmin/argmax/first/last/show), `diff` or `regress`")?;
        let Some(agg) = Agg::from_word(&word) else {
            self.pos -= 1; // point the error at the bad word
            return self.err(format!(
                "unknown aggregate `{word}` (expected min/max/mean/sum/count/argmin/argmax/first/last/show, diff or regress)"
            ));
        };
        // `count` may omit the metric; everything else requires one. A
        // `group by` clause head is not a metric either — `count group by
        // policy` groups, it does not count a metric named `group`.
        let metric = match self.peek() {
            None => None,
            Some(Token { kind: TokenKind::Word(w), .. }) if w == "from" || w == "where" => None,
            Some(Token { kind: TokenKind::Word(w), .. })
                if w == "group"
                    && matches!(
                        self.tokens.get(self.pos + 1),
                        Some(Token { kind: TokenKind::Word(by), .. }) if by == "by"
                    ) =>
            {
                None
            }
            _ => Some(self.metric()?),
        };
        if metric.is_none() && agg != Agg::Count {
            return self.err(format!("`{word}` needs a metric (only `count` may omit it)"));
        }
        let table = self.table_clause()?;
        let pred = self.where_clause()?;
        let group = self.group_clause()?;
        if group.is_some() && agg == Agg::Show {
            return self.err("`show` is already one row per match and cannot be grouped");
        }
        Ok(Query::Simple { agg, metric, table, pred, group })
    }

    fn diff(&mut self) -> Result<Query, ParseError> {
        let metric = self.metric()?;
        if !self.eat_keyword("between") {
            return self.err("`diff` expects `between <pred> vs <pred>`");
        }
        let left = self.pred()?;
        if !self.eat_keyword("vs") {
            return self.err("`diff ... between` expects `vs` separating the two predicates");
        }
        let right = self.pred()?;
        let table = self.table_clause()?;
        Ok(Query::Diff { metric, left, right, table })
    }

    fn regress(&mut self) -> Result<Query, ParseError> {
        let metric = self.metric()?;
        let mut threshold = 0.1;
        if self.eat_keyword("threshold") {
            let word = self.expect_word("a threshold number")?;
            threshold = match word.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => t,
                _ => {
                    self.pos -= 1;
                    return self.err(format!("invalid threshold `{word}`"));
                }
            };
        }
        let table = self.table_clause()?;
        let pred = self.where_clause()?;
        Ok(Query::Regress { metric, threshold, table, pred })
    }

    fn metric(&mut self) -> Result<Metric, ParseError> {
        let word = self.expect_word("a metric name")?;
        if word == "best" && matches!(self.peek(), Some(Token { kind: TokenKind::LParen, .. })) {
            self.pos += 1; // (
            let mut fields = vec![self.expect_word("a field name inside best(...)")?];
            loop {
                match self.peek() {
                    Some(Token { kind: TokenKind::Comma, .. }) => {
                        self.pos += 1;
                        fields.push(self.expect_word("a field name after `,`")?);
                    }
                    Some(Token { kind: TokenKind::RParen, .. }) => {
                        self.pos += 1;
                        return Ok(Metric::Best(fields));
                    }
                    _ => return self.err("expected `,` or `)` in best(...)"),
                }
            }
        }
        Ok(Metric::Field(word))
    }

    fn table_clause(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword("from") {
            Ok(Some(self.expect_word("a table name after `from`")?))
        } else {
            Ok(None)
        }
    }

    fn where_clause(&mut self) -> Result<Option<Pred>, ParseError> {
        if self.eat_keyword("where") {
            Ok(Some(self.pred()?))
        } else {
            Ok(None)
        }
    }

    fn group_clause(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword("group") {
            if !self.eat_keyword("by") {
                return self.err("`group` must be followed by `by FIELD`");
            }
            Ok(Some(self.expect_word("a field name after `group by`")?))
        } else {
            Ok(None)
        }
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_and()?;
        while self.eat_keyword("or") {
            let right = self.pred_and()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.pred_unary()?;
        while self.eat_keyword("and") {
            let right = self.pred_unary()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_unary(&mut self) -> Result<Pred, ParseError> {
        if self.eat_keyword("not") {
            return Ok(Pred::Not(Box::new(self.pred_unary()?)));
        }
        if let Some(Token { kind: TokenKind::LParen, .. }) = self.peek() {
            self.pos += 1;
            let inner = self.pred()?;
            match self.peek() {
                Some(Token { kind: TokenKind::RParen, .. }) => {
                    self.pos += 1;
                    Ok(inner)
                }
                _ => self.err("expected `)` closing the group"),
            }
        } else {
            self.cmp()
        }
    }

    fn cmp(&mut self) -> Result<Pred, ParseError> {
        let field = self.expect_word("a field name")?;
        let op = match self.peek() {
            Some(Token { kind: TokenKind::Op(op), .. }) => {
                let op = *op;
                self.pos += 1;
                op
            }
            Some(t) => {
                return self.err(format!("expected a comparison operator, found {}", t.describe()))
            }
            None => return self.err("expected a comparison operator, found end of input"),
        };
        let value = match self.peek() {
            Some(Token { kind: TokenKind::Word(w), .. }) => {
                let lit = Literal::new(w.clone());
                self.pos += 1;
                lit
            }
            Some(Token { kind: TokenKind::Quoted(s), .. }) => {
                let lit = Literal::new(s.clone());
                self.pos += 1;
                lit
            }
            Some(t) => return self.err(format!("expected a value, found {}", t.describe())),
            None => return self.err("expected a value, found end of input"),
        };
        Ok(Pred::Cmp { field, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_headline_query() {
        let q = parse("argmin mpki where workload=zipfian").unwrap();
        assert_eq!(
            q,
            Query::Simple {
                agg: Agg::ArgMin,
                metric: Some(Metric::Field("mpki".to_string())),
                table: None,
                pred: Some(Pred::Cmp {
                    field: "workload".to_string(),
                    op: CmpOp::Eq,
                    value: Literal::new("zipfian".to_string()),
                }),
                group: None,
            }
        );
    }

    #[test]
    fn group_by_parses_after_where() {
        let q = parse("mean mpki from runs group by policy").unwrap();
        let Query::Simple { agg, group, .. } = &q else { panic!("not simple") };
        assert_eq!(*agg, Agg::Mean);
        assert_eq!(group.as_deref(), Some("policy"));

        let q = parse("count where policy=chirp group by workload").unwrap();
        let Query::Simple { group, pred, .. } = &q else { panic!("not simple") };
        assert_eq!(group.as_deref(), Some("workload"));
        assert!(pred.is_some());

        // Metric-less `count` directly followed by the clause: `group` is
        // the clause head here, not a metric named "group". A metric
        // really named `group` stays reachable when not followed by `by`.
        let q = parse("count group by policy").unwrap();
        let Query::Simple { metric, group, .. } = &q else { panic!("not simple") };
        assert!(metric.is_none());
        assert_eq!(group.as_deref(), Some("policy"));
        let q = parse("mean group from runs").unwrap();
        let Query::Simple { metric, group, .. } = &q else { panic!("not simple") };
        assert!(group.is_none());
        assert!(matches!(metric, Some(Metric::Field(f)) if f == "group"));
    }

    #[test]
    fn group_by_rejects_show_and_malformed_clauses() {
        assert!(parse("show mpki group by policy").is_err(), "show cannot be grouped");
        assert!(parse("mean mpki group policy").is_err(), "missing `by`");
        assert!(parse("mean mpki group by").is_err(), "missing field");
        assert!(parse("mean mpki group by policy trailing").is_err(), "trailing input");
    }

    #[test]
    fn and_binds_tighter_than_or_and_not_tightest() {
        let q = parse("count where a=1 or b=2 and not c=3").unwrap();
        let Query::Simple { pred: Some(p), .. } = q else { panic!("not simple") };
        // a=1 or (b=2 and (not c=3))
        let Pred::Or(l, r) = p else { panic!("top is not or: {p:?}") };
        assert!(matches!(*l, Pred::Cmp { .. }));
        let Pred::And(al, ar) = *r else { panic!("rhs is not and") };
        assert!(matches!(*al, Pred::Cmp { .. }));
        assert!(matches!(*ar, Pred::Not(_)));
    }

    #[test]
    fn parens_override_precedence() {
        let q = parse("count where (a=1 or b=2) and c=3").unwrap();
        let Query::Simple { pred: Some(Pred::And(l, _)), .. } = q else { panic!("shape") };
        assert!(matches!(*l, Pred::Or(_, _)));
    }

    #[test]
    fn benchmark_names_need_no_quotes() {
        let q = parse("last mpki where benchmark=db.scanidx.i1024z0.9b64#s1").unwrap();
        let Query::Simple { pred: Some(Pred::Cmp { value, .. }), .. } = q else { panic!() };
        assert_eq!(value.text, "db.scanidx.i1024z0.9b64#s1");
    }

    #[test]
    fn diff_and_regress_parse() {
        let q = parse("diff mpki between policy=chirp vs policy=lru from runs").unwrap();
        assert!(matches!(q, Query::Diff { .. }));
        let q = parse("regress mpki threshold 0.25 from runs where policy=chirp").unwrap();
        let Query::Regress { threshold, .. } = q else { panic!() };
        assert!((threshold - 0.25).abs() < 1e-12);
    }

    #[test]
    fn best_metric_parses() {
        let q = parse("last best(a,b,c) from bench").unwrap();
        let Query::Simple { metric: Some(Metric::Best(fields)), .. } = q else { panic!() };
        assert_eq!(fields, ["a", "b", "c"]);
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in [
            "",
            "argmin",
            "bogus mpki",
            "min mpki where",
            "min mpki where a",
            "min mpki where a=",
            "diff mpki",
            "diff mpki between a=1",
            "diff mpki between a=1 vs",
            "count where (a=1",
            "count where a ! 1",
            "regress mpki threshold x",
            "min mpki where a=1 trailing",
            "count where \"unterminated",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.at <= bad.len(), "error position out of range for {bad:?}");
        }
    }
}
